"""Plain-data serialisation of QRN artefacts.

A safety case is a configuration-managed document set: norms, incident
types, allocations and goals must round-trip through plain data (JSON,
YAML, a database) without loss, so that a design revision can be diffed
and an auditor can reconstruct exactly what was claimed.

Everything here is dict-in/dict-out with only JSON-safe values; the norm
itself already round-trips via
:meth:`~repro.core.risk_norm.QuantitativeRiskNorm.to_dict`.  Goal sets
serialise their completeness evidence as a *record* (the certificate's
findings), not as a live certificate — reloading a safety case does not
re-run the MECE check, it documents the one that ran, which is how audit
trails work.

Every ``*_from_dict`` loader is routed through the :mod:`repro.io`
artifact boundary (DESIGN §10): the payload's structure is validated
field-by-field before any object is constructed, and *every* failure —
missing keys, wrong types, non-finite numbers, unknown margin kinds,
dangling goal references — surfaces as a typed
:class:`~repro.errors.ArtifactError` subclass (still a ``ValueError``),
never a bare ``KeyError``/``TypeError``.  Documents written before the
boundary existed carry no ``schema`` tag or digest and keep loading
unchanged; :func:`save_goal_set` / :func:`load_goal_set` add the tagged,
digest-signed, atomically-written file form.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping

from ..errors import ArtifactValidationError
from ..io.artifact import ARTIFACTS, ArtifactSchema, register_artifact
from ..io.validate import (Bool, Int, Json, ListOf, MapOf, NullOr, Number,
                           Record, Str, TaggedUnion)
from .allocation import Allocation
from .incident import (ContributionSplit, IncidentType, ProximityMargin,
                       SpeedBand)
from .quantities import Frequency
from .risk_norm import QuantitativeRiskNorm
from .safety_goals import SafetyGoal, SafetyGoalSet
from .taxonomy import ActorClass, MeceCertificate, MeceViolation

__all__ = [
    "incident_type_to_dict",
    "incident_type_from_dict",
    "allocation_to_dict",
    "allocation_from_dict",
    "certificate_to_dict",
    "certificate_from_dict",
    "goal_set_to_dict",
    "goal_set_from_dict",
    "load_goal_set",
    "save_goal_set",
    "INCIDENT_TYPE_SCHEMA_NAME",
    "ALLOCATION_SCHEMA_NAME",
    "CERTIFICATE_SCHEMA_NAME",
    "GOAL_SET_SCHEMA_NAME",
]

INCIDENT_TYPE_SCHEMA_NAME = "repro.incident-type"
ALLOCATION_SCHEMA_NAME = "repro.allocation"
CERTIFICATE_SCHEMA_NAME = "repro.mece-certificate"
GOAL_SET_SCHEMA_NAME = "repro.goal-set"


def incident_type_to_dict(itype: IncidentType) -> Dict[str, Any]:
    """One incident type as plain data."""
    if isinstance(itype.margin, SpeedBand):
        margin: Dict[str, Any] = {
            "kind": "speed_band",
            "low_kmh": itype.margin.low_kmh,
            "high_kmh": itype.margin.high_kmh,
        }
    else:
        margin = {
            "kind": "proximity",
            "max_distance_m": itype.margin.max_distance_m,
            "min_approach_speed_kmh": itype.margin.min_approach_speed_kmh,
        }
    return {
        "type_id": itype.type_id,
        "ego": itype.ego.value,
        "counterpart": itype.counterpart.value,
        "margin": margin,
        "split": {class_id: fraction
                  for class_id, fraction in itype.split.items()},
        "description": itype.description,
        "taxonomy_leaf": itype.taxonomy_leaf,
        "induced": itype.induced,
    }


def _build_incident_type(data: Mapping[str, Any]) -> IncidentType:
    margin_data = data["margin"]
    kind = margin_data["kind"]
    if kind == "speed_band":
        margin: "SpeedBand | ProximityMargin" = SpeedBand(
            float(margin_data["low_kmh"]), float(margin_data["high_kmh"]))
    elif kind == "proximity":
        margin = ProximityMargin(
            float(margin_data["max_distance_m"]),
            float(margin_data["min_approach_speed_kmh"]))
    else:  # pragma: no cover - the spec rejects unknown kinds first
        raise ValueError(f"unknown tolerance-margin kind {kind!r}")
    return IncidentType(
        type_id=str(data["type_id"]),
        ego=ActorClass(str(data["ego"])),
        counterpart=ActorClass(str(data["counterpart"])),
        margin=margin,
        split=ContributionSplit({str(k): float(v)
                                 for k, v in data["split"].items()}),
        description=str(data.get("description", "")),
        taxonomy_leaf=(str(data["taxonomy_leaf"])
                       if data.get("taxonomy_leaf") is not None else None),
        induced=bool(data.get("induced", False)),
    )


def incident_type_from_dict(data: Mapping[str, Any]) -> IncidentType:
    """Rebuild an incident type; unknown margin kinds fail loudly."""
    itype = ARTIFACTS.load_dict(data, INCIDENT_TYPE_SCHEMA_NAME,
                                require_tag=False)
    assert isinstance(itype, IncidentType)
    return itype


def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    """A full allocation: norm + types + budgets + strategy provenance."""
    return {
        "norm": allocation.norm.to_dict(),
        "types": [incident_type_to_dict(t) for t in allocation.types],
        "budgets": {type_id: budget.rate
                    for type_id, budget in allocation.budgets().items()},
        "strategy": allocation.strategy,
    }


def _build_allocation(data: Mapping[str, Any]) -> Allocation:
    norm = QuantitativeRiskNorm.from_dict(data["norm"])
    types = [_build_incident_type(entry) for entry in data["types"]]
    budgets = {str(type_id): Frequency(float(rate), norm.unit)
               for type_id, rate in data["budgets"].items()}
    return Allocation(norm, types, budgets,
                      strategy=str(data.get("strategy", "deserialised")))


def allocation_from_dict(data: Mapping[str, Any]) -> Allocation:
    """Rebuild an allocation (norm + types + budgets) from plain data."""
    allocation = ARTIFACTS.load_dict(data, ALLOCATION_SCHEMA_NAME,
                                     require_tag=False)
    assert isinstance(allocation, Allocation)
    return allocation


def certificate_to_dict(certificate: MeceCertificate) -> Dict[str, Any]:
    """A MECE certificate as an audit record (findings, counts, name)."""
    return {
        "taxonomy_name": certificate.taxonomy_name,
        "leaf_names": list(certificate.leaf_names),
        "structural_checks": certificate.structural_checks,
        "points_checked": certificate.points_checked,
        "violations": [
            {"kind": v.kind, "detail": v.detail,
             "point": dict(v.point) if v.point is not None else None}
            for v in certificate.violations
        ],
    }


def _build_certificate(data: Mapping[str, Any]) -> MeceCertificate:
    return MeceCertificate(
        taxonomy_name=str(data["taxonomy_name"]),
        leaf_names=tuple(str(n) for n in data["leaf_names"]),
        structural_checks=int(data["structural_checks"]),
        points_checked=int(data["points_checked"]),
        violations=tuple(
            MeceViolation(kind=str(v["kind"]), detail=str(v["detail"]),
                          point=v.get("point"))
            for v in data["violations"]
        ),
    )


def certificate_from_dict(data: Mapping[str, Any]) -> MeceCertificate:
    """Rebuild a stored MECE certificate record (no re-checking occurs)."""
    certificate = ARTIFACTS.load_dict(data, CERTIFICATE_SCHEMA_NAME,
                                      require_tag=False)
    assert isinstance(certificate, MeceCertificate)
    return certificate


def goal_set_to_dict(goals: SafetyGoalSet) -> Dict[str, Any]:
    """A complete goal set including its allocation and evidence record."""
    return {
        "allocation": allocation_to_dict(goals.allocation),
        "goals": [
            {"goal_id": goal.goal_id, "type_id": goal.type_id,
             "max_frequency_rate": goal.max_frequency.rate}
            for goal in goals
        ],
        "certificate": (certificate_to_dict(goals.certificate)
                        if goals.certificate is not None else None),
    }


def _build_goal_set(data: Mapping[str, Any]) -> SafetyGoalSet:
    allocation = _build_allocation(data["allocation"])
    by_type = {t.type_id: t for t in allocation.types}
    goals: List[SafetyGoal] = []
    for entry in data["goals"]:
        type_id = str(entry["type_id"])
        if type_id not in by_type:
            raise ValueError(
                f"goal {entry['goal_id']!r} references unknown incident "
                f"type {type_id!r}")
        goals.append(SafetyGoal(
            goal_id=str(entry["goal_id"]),
            incident_type=by_type[type_id],
            max_frequency=Frequency(float(entry["max_frequency_rate"]),
                                    allocation.norm.unit),
        ))
    certificate = (_build_certificate(data["certificate"])
                   if data.get("certificate") is not None else None)
    return SafetyGoalSet(goals, allocation.norm, allocation, certificate)


def goal_set_from_dict(data: Mapping[str, Any]) -> SafetyGoalSet:
    """Rebuild a goal set; goals must reference types in the allocation."""
    goals = ARTIFACTS.load_dict(data, GOAL_SET_SCHEMA_NAME,
                                require_tag=False)
    assert isinstance(goals, SafetyGoalSet)
    return goals


def load_goal_set(path: "Path | str") -> SafetyGoalSet:
    """Load a stored goal-set file through the artifact boundary.

    Accepts both the legacy tagless form (``repro goals --json`` output
    from before the boundary existed — no digest, validated leniently)
    and the current tagged, digest-signed form.  Every failure is a
    typed :class:`~repro.errors.ArtifactError`.
    """
    goals = ARTIFACTS.load(Path(path), GOAL_SET_SCHEMA_NAME,
                           require_tag=False)
    assert isinstance(goals, SafetyGoalSet)
    return goals


def save_goal_set(path: "Path | str", goals: SafetyGoalSet) -> Path:
    """Atomically write a tagged, digest-signed goal-set file."""
    return ARTIFACTS.save(Path(path), GOAL_SET_SCHEMA_NAME, goals)


# -- artifact schema registration ----------------------------------------

_MARGIN_SPEC = TaggedUnion("kind", {
    "speed_band": Record(required={
        "kind": Str(), "low_kmh": Number(), "high_kmh": Number()}),
    "proximity": Record(required={
        "kind": Str(), "max_distance_m": Number(),
        "min_approach_speed_kmh": Number()}),
})

_INCIDENT_TYPE_SPEC = Record(
    required={
        "type_id": Str(),
        "ego": Str(),
        "counterpart": Str(),
        "margin": _MARGIN_SPEC,
        "split": MapOf(Number()),
    },
    optional={
        "description": Str(),
        "taxonomy_leaf": NullOr(Str()),
        "induced": Bool(),
    })

_NORM_SPEC = Record(
    required={
        "name": Str(),
        "unit": Str(),
        "classes": ListOf(Record(
            required={"class_id": Str(), "severity": Str(),
                      "budget_rate": Number()},
            optional={"description": Str()})),
    },
    optional={"rationale": Str()})

_ALLOCATION_SPEC = Record(
    required={
        "norm": _NORM_SPEC,
        "types": ListOf(_INCIDENT_TYPE_SPEC),
        "budgets": MapOf(Number()),
    },
    optional={"strategy": Str()})

_CERTIFICATE_SPEC = Record(required={
    "taxonomy_name": Str(),
    "leaf_names": ListOf(Str()),
    "structural_checks": Int(),
    "points_checked": Int(),
    "violations": ListOf(Record(
        required={"kind": Str(), "detail": Str()},
        optional={"point": NullOr(MapOf(Json()))})),
})

_GOAL_SET_SPEC = Record(required={
    "allocation": _ALLOCATION_SPEC,
    "goals": ListOf(Record(required={
        "goal_id": Str(), "type_id": Str(),
        "max_frequency_rate": Number()})),
    "certificate": NullOr(_CERTIFICATE_SPEC),
})


def _example_incident_type() -> IncidentType:
    return IncidentType(
        type_id="I1", ego=ActorClass.EGO, counterpart=ActorClass.VRU,
        margin=ProximityMargin(1.0, 10.0),
        split=ContributionSplit({"vQ1": 0.9, "vS1": 0.1}),
        description="ego close to a VRU above 10 km/h",
        taxonomy_leaf="vru_proximity", induced=False)


def _example_norm() -> QuantitativeRiskNorm:
    from .consequence import ConsequenceClass, ConsequenceScale
    from .quantities import ExposureBase, FrequencyUnit
    from .severity import UnifiedSeverity

    unit = FrequencyUnit(ExposureBase.OPERATING_HOUR)
    scale = ConsequenceScale([
        ConsequenceClass("vQ1", UnifiedSeverity.EMERGENCY_MANOEUVRE,
                         Frequency(1e-4, unit), "emergency manoeuvre"),
        ConsequenceClass("vS1", UnifiedSeverity.LIGHT_INJURY,
                         Frequency(1e-6, unit), "light injury"),
    ])
    return QuantitativeRiskNorm("example-io-norm", scale,
                                rationale="deterministic fuzz example")


def _example_allocation() -> Allocation:
    norm = _example_norm()
    itype = _example_incident_type()
    return Allocation(norm, [itype],
                      {"I1": Frequency(1e-6, norm.unit)},
                      strategy="manual")


def _example_certificate() -> MeceCertificate:
    return MeceCertificate(
        taxonomy_name="fig4-example",
        leaf_names=("vru_proximity", "low_speed_collision"),
        structural_checks=2, points_checked=100,
        violations=(MeceViolation(kind="gap",
                                  detail="uncovered corner case",
                                  point={"delta_v_kmh": 71.0}),))


def _example_goal_set() -> SafetyGoalSet:
    allocation = _example_allocation()
    itype = allocation.types[0]
    goal = SafetyGoal(goal_id="SG-I1", incident_type=itype,
                      max_frequency=allocation.budget("I1"))
    return SafetyGoalSet([goal], allocation.norm, allocation,
                         _example_certificate())


def _dicts_equal(to_dict):
    """Structural equality via the dumper (for classes without ``__eq__``)."""
    def equal(a: object, b: object) -> bool:
        return to_dict(a) == to_dict(b)
    return equal


register_artifact(ArtifactSchema(
    name=INCIDENT_TYPE_SCHEMA_NAME, version=1,
    spec=_INCIDENT_TYPE_SPEC, load=_build_incident_type,
    dump=incident_type_to_dict, label="incident type",
    example=_example_incident_type))

register_artifact(ArtifactSchema(
    name=ALLOCATION_SCHEMA_NAME, version=1,
    spec=_ALLOCATION_SPEC, load=_build_allocation,
    dump=allocation_to_dict, label="allocation",
    example=_example_allocation,
    equal=_dicts_equal(allocation_to_dict)))

register_artifact(ArtifactSchema(
    name=CERTIFICATE_SCHEMA_NAME, version=1,
    spec=_CERTIFICATE_SPEC, load=_build_certificate,
    dump=certificate_to_dict, label="MECE certificate",
    example=_example_certificate))

register_artifact(ArtifactSchema(
    name=GOAL_SET_SCHEMA_NAME, version=1,
    spec=_GOAL_SET_SPEC, load=_build_goal_set,
    dump=goal_set_to_dict, label="goal set",
    example=_example_goal_set,
    equal=_dicts_equal(goal_set_to_dict)))


# Re-exported for introspection/tests: the boundary error the loaders
# raise on structural failure (kept here so ``from repro.core.serialize
# import ArtifactValidationError`` works at the point of use).
_ = ArtifactValidationError
