"""Incident types, tolerance margins, and contribution splits.

Implements Sec. III-B / Fig. 5.  An *incident type* ``I`` is the unit to
which the QRN allocates a frequency budget and from which one safety goal
is generated.  The paper suggests most types take the shape

    interaction between ego vehicle and <object_type>
    within <tolerance_margin>

where the tolerance margin is an impact-speed band for accidents, or a
distance + relative-speed limit for quality-related incidents.  Each type
carries a :class:`ContributionSplit`: the fractions of its occurrences
that land in each consequence class (e.g. 70 % of I₂ collisions cause
light injuries, 30 % moderate).

:func:`figure5_incident_types` reconstructs the paper's I₁/I₂/I₃ Ego↔VRU
elaboration exactly as drawn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .consequence import ConsequenceScale
from .taxonomy import ActorClass

__all__ = [
    "SpeedBand",
    "ProximityMargin",
    "ToleranceMargin",
    "ContributionSplit",
    "IncidentType",
    "IncidentRecord",
    "figure5_incident_types",
    "induced_follower_type",
]


@dataclass(frozen=True)
class SpeedBand:
    """A collision impact-speed band ``low < Δv ≤ high`` in km/h.

    The paper writes I₂ as ``0 < Δv_collision ≤ 10 km/h`` and I₃ as
    ``10 < Δv_collision ≤ 70 km/h`` — open below, closed above — so bands
    here follow that convention and adjacent bands tile without overlap.
    """

    low_kmh: float
    high_kmh: float

    def __post_init__(self) -> None:
        if self.low_kmh < 0:
            raise ValueError("speed band lower bound must be >= 0")
        if self.high_kmh <= self.low_kmh:
            raise ValueError(
                f"empty speed band ({self.low_kmh}, {self.high_kmh}]"
            )

    def contains(self, delta_v_kmh: float) -> bool:
        return self.low_kmh < delta_v_kmh <= self.high_kmh

    def overlaps(self, other: "SpeedBand") -> bool:
        return self.low_kmh < other.high_kmh and other.low_kmh < self.high_kmh

    def describe(self) -> str:
        return f"{self.low_kmh:g} < Δv ≤ {self.high_kmh:g} km/h"


@dataclass(frozen=True)
class ProximityMargin:
    """A quality-incident margin: closer than a distance at/above a speed.

    The paper's I₁ is "Ego approaches the VRU with > 10 km/h when closer
    than 1 m (i.e. not a collision)".
    """

    max_distance_m: float
    min_approach_speed_kmh: float

    def __post_init__(self) -> None:
        if self.max_distance_m <= 0:
            raise ValueError("proximity distance must be positive")
        if self.min_approach_speed_kmh < 0:
            raise ValueError("approach speed threshold must be >= 0")

    def contains(self, distance_m: float, approach_speed_kmh: float) -> bool:
        return (0.0 < distance_m < self.max_distance_m
                and approach_speed_kmh > self.min_approach_speed_kmh)

    def describe(self) -> str:
        return (f"0 < d < {self.max_distance_m:g} m "
                f"& Δv > {self.min_approach_speed_kmh:g} km/h")


ToleranceMargin = "SpeedBand | ProximityMargin"


class ContributionSplit:
    """Fractions of an incident type's occurrences per consequence class.

    ``f_{v_j, I_k} = split[v_j] * f_{I_k}`` — the per-term quantity in
    Eq. 1.  Fractions must be in (0, 1] each and sum to at most 1; a sum
    below 1 means some occurrences of the type have consequences below the
    least severe modelled class (e.g. a near-miss nobody noticed).
    """

    def __init__(self, fractions: Mapping[str, float]):
        cleaned: Dict[str, float] = {}
        for class_id, fraction in fractions.items():
            if not (isinstance(fraction, (int, float)) and math.isfinite(fraction)):
                raise ValueError(f"fraction for {class_id!r} must be finite")
            if fraction <= 0.0 or fraction > 1.0:
                raise ValueError(
                    f"fraction for {class_id!r} must be in (0, 1], got {fraction}"
                )
            cleaned[class_id] = float(fraction)
        if not cleaned:
            raise ValueError("a contribution split must touch at least one class")
        total = sum(cleaned.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"contribution fractions sum to {total} > 1")
        self._fractions = cleaned

    @property
    def class_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._fractions))

    def fraction(self, class_id: str) -> float:
        """Fraction contributed to ``class_id`` (0 if untouched)."""
        return self._fractions.get(class_id, 0.0)

    def items(self) -> Iterable[Tuple[str, float]]:
        return sorted(self._fractions.items())

    def total(self) -> float:
        return sum(self._fractions.values())

    def validate_against(self, scale: ConsequenceScale) -> None:
        """Check every referenced class exists in the norm's scale."""
        unknown = set(self._fractions) - set(scale.class_ids)
        if unknown:
            raise ValueError(
                f"contribution split references unknown classes {sorted(unknown)}; "
                f"scale has {list(scale.class_ids)}"
            )

    def rebalanced(self, class_id: str, fraction: float) -> "ContributionSplit":
        """A copy with one class's fraction replaced (others untouched)."""
        updated = dict(self._fractions)
        if fraction <= 0:
            updated.pop(class_id, None)
        else:
            updated[class_id] = fraction
        return ContributionSplit(updated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContributionSplit):
            return NotImplemented
        return self._fractions == other._fractions

    def __repr__(self) -> str:
        inner = ", ".join(f"{cid}: {frac:.2f}" for cid, frac in self.items())
        return f"ContributionSplit({{{inner}}})"


@dataclass(frozen=True)
class IncidentType:
    """One incident type ``I`` of the QRN (Sec. III-B).

    The two definitional criteria from the paper are represented directly:

    * "show the contribution to each consequence class" → ``split``;
    * "provide meaningful input to refined safety requirements" → the
      structured ``actor_pair`` + ``margin`` shape, which downstream
      perception/prediction requirements can be phrased against.

    The frequency *budget* is not stored here — budgets are the output of
    the allocation process (:mod:`repro.core.allocation`) and live in an
    :class:`~repro.core.allocation.Allocation`.
    """

    type_id: str
    ego: ActorClass
    counterpart: ActorClass
    margin: "SpeedBand | ProximityMargin"
    split: ContributionSplit
    description: str = ""
    taxonomy_leaf: Optional[str] = None
    """Name of the taxonomy leaf this type refines, if tied to a tree."""
    induced: bool = False
    """Fig. 4's lower half: the ego is a *causing factor* in an incident
    among other road users rather than a party to it.  For induced types
    ``counterpart`` names the affected actor and the ``ego`` field keeps
    the causal attribution.  Induced and direct records never cross-match."""

    def __post_init__(self) -> None:
        if not self.type_id or not self.type_id.strip():
            raise ValueError("type_id must be non-empty")
        if not isinstance(self.margin, (SpeedBand, ProximityMargin)):
            raise TypeError(
                "margin must be a SpeedBand (accident) or ProximityMargin "
                f"(quality incident), got {type(self.margin).__name__}"
            )

    @property
    def is_collision_type(self) -> bool:
        return isinstance(self.margin, SpeedBand)

    def actor_pair_label(self) -> str:
        return f"{self.ego.value.capitalize()}<->{self.counterpart.value.upper() if self.counterpart is ActorClass.VRU else self.counterpart.value.capitalize()}"

    def describe(self) -> str:
        return f"[{self.type_id}] {self.actor_pair_label()} | {self.margin.describe()}"

    def matches(self, record: "IncidentRecord") -> bool:
        """Whether an observed incident instance belongs to this type."""
        if record.induced != self.induced:
            return False
        if record.counterpart is not self.counterpart:
            return False
        if isinstance(self.margin, SpeedBand):
            return record.is_collision and self.margin.contains(record.delta_v_kmh)
        return (not record.is_collision
                and self.margin.contains(record.min_distance_m,
                                         record.approach_speed_kmh))


@dataclass(frozen=True)
class IncidentRecord:
    """One observed incident instance, e.g. from the traffic simulator.

    ``delta_v_kmh`` is the collision impact speed (0 for non-collisions);
    ``min_distance_m`` the closest separation (0 for collisions);
    ``approach_speed_kmh`` the relative speed at closest approach.
    """

    counterpart: ActorClass
    is_collision: bool
    delta_v_kmh: float = 0.0
    min_distance_m: float = 0.0
    approach_speed_kmh: float = 0.0
    time_h: float = 0.0
    context: str = ""
    induced: bool = False
    """True when the ego merely *caused* this incident between third
    parties (Fig. 4's lower half) — e.g. a hard ego stop forcing the
    follower into an emergency manoeuvre."""

    def __post_init__(self) -> None:
        if self.is_collision and self.delta_v_kmh <= 0.0:
            raise ValueError("a collision record needs a positive delta_v")
        if not self.is_collision and self.min_distance_m <= 0.0:
            raise ValueError("a non-collision record needs a positive distance")


def classify_records(records: Iterable[IncidentRecord],
                     types: Sequence[IncidentType]) -> Dict[str, list]:
    """Bucket observed incidents by incident type.

    Returns a mapping ``type_id -> [records]``; records matching no type go
    under the pseudo-id ``"<unclassified>"``.  If the types were derived
    from a MECE taxonomy over the record space, that bucket stays empty —
    tests assert exactly this.  A record matching multiple types indicates
    the types are not mutually exclusive and raises ``ValueError``.
    """
    buckets: Dict[str, list] = {t.type_id: [] for t in types}
    buckets["<unclassified>"] = []
    for record in records:
        owners = [t.type_id for t in types if t.matches(record)]
        if len(owners) > 1:
            raise ValueError(
                f"record {record} matches multiple incident types {owners}; "
                "types must be mutually exclusive"
            )
        buckets[owners[0] if owners else "<unclassified>"].append(record)
    return buckets


def induced_follower_type(*, split: Optional[ContributionSplit] = None,
                          ) -> IncidentType:
    """The canonical induced incident type: ego forces a follower reaction.

    The paper's Fig. 2 places "causing evasive manoeuvre for other RU"
    on the quality axis, and Fig. 4's lower half owns such incidents;
    this type is their refinement: the ego's hard stop compels the
    following car into an emergency manoeuvre (or worse).  Default split:
    mostly induced emergency manoeuvres (vQ2), a sliver of material
    damage (vQ3) for the rear-end taps.
    """
    return IncidentType(
        type_id="IND1",
        ego=ActorClass.EGO,
        counterpart=ActorClass.CAR,
        margin=ProximityMargin(max_distance_m=5.0,
                               min_approach_speed_kmh=5.0),
        split=split if split is not None else
        ContributionSplit({"vQ2": 0.85, "vQ3": 0.05}),
        description="Ego hard stop forces follower emergency manoeuvre",
        taxonomy_leaf="Induced:Car<->Car",
        induced=True,
    )


def figure5_incident_types() -> Tuple[IncidentType, IncidentType, IncidentType]:
    """The paper's Fig. 5 Ego↔VRU elaboration, verbatim.

    * I₁ — near-miss: ego approaches the VRU at > 10 km/h within 1 m;
      contributes to quality classes (scared VRU ``vQ1``, induced
      emergency action ``vQ2``).
    * I₂ — collision with 0 < Δv ≤ 10 km/h; light (``vS1``) or moderate
      (counted as ``vS2`` here) injuries, with the 70/30 split the paper
      uses in its reallocation discussion.
    * I₃ — collision with 10 < Δv ≤ 70 km/h; severe injuries and
      fatalities (``vS1``/``vS2``/``vS3``).

    The split numbers are the paper's illustrative ones where given, and
    synthetic where the paper leaves them unstated (its own footnote 3
    marks all such numbers as made up).
    """
    i1 = IncidentType(
        type_id="I1",
        ego=ActorClass.EGO,
        counterpart=ActorClass.VRU,
        margin=ProximityMargin(max_distance_m=1.0, min_approach_speed_kmh=10.0),
        split=ContributionSplit({"vQ1": 0.8, "vQ2": 0.2}),
        description="Ego approaches VRU at >10 km/h closer than 1 m (no collision)",
        taxonomy_leaf="Ego<->VRU",
    )
    i2 = IncidentType(
        type_id="I2",
        ego=ActorClass.EGO,
        counterpart=ActorClass.VRU,
        margin=SpeedBand(0.0, 10.0),
        split=ContributionSplit({"vS1": 0.7, "vS2": 0.3}),
        description="Collision Ego<->VRU with 0 < Δv ≤ 10 km/h",
        taxonomy_leaf="Ego<->VRU",
    )
    i3 = IncidentType(
        type_id="I3",
        ego=ActorClass.EGO,
        counterpart=ActorClass.VRU,
        margin=SpeedBand(10.0, 70.0),
        split=ContributionSplit({"vS1": 0.15, "vS2": 0.45, "vS3": 0.40}),
        description="Collision Ego<->VRU with 10 < Δv ≤ 70 km/h",
        taxonomy_leaf="Ego<->VRU",
    )
    return i1, i2, i3
