"""Frequency quantities with explicit units.

The quantitative risk norm (QRN) of Warg et al. (DSN-W 2020) is "a budget
of acceptable frequencies of incidents" (Sec. I).  Everything downstream —
consequence-class budgets, incident-type budgets, safety-goal integrity
attributes, verification against measured rates — is arithmetic over
frequencies.  Mixing up "per hour" and "per kilometre" budgets would
silently corrupt a safety case, so frequencies here are value objects with
explicit units and the arithmetic refuses to combine incompatible ones.

Units are kept deliberately simple: a :class:`FrequencyUnit` is "events per
one unit of exposure", where the exposure base is operating hours,
kilometres driven, or missions (trips).  Conversion between bases requires
an explicit :class:`ExposureProfile` (e.g. an average speed links hours and
kilometres); there is no implicit conversion.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Union

__all__ = [
    "ExposureBase",
    "FrequencyUnit",
    "Frequency",
    "FrequencyBand",
    "ExposureProfile",
    "PER_HOUR",
    "PER_KM",
    "PER_MISSION",
    "UnitMismatchError",
]


class UnitMismatchError(ValueError):
    """Raised when arithmetic would combine frequencies of different units."""


class ExposureBase(Enum):
    """The denominator of a frequency: what one unit of exposure is."""

    OPERATING_HOUR = "h"
    KILOMETRE = "km"
    MISSION = "mission"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=False)
class FrequencyUnit:
    """Events per ``scale`` units of ``base`` exposure.

    ``FrequencyUnit(ExposureBase.OPERATING_HOUR)`` is "per operating hour".
    The ``scale`` field allows "per 10^9 hours" style units without losing
    precision in the magnitude; two units are compatible iff their bases
    match (scales are normalised away in :class:`Frequency`).
    """

    base: ExposureBase
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not (self.scale > 0 and math.isfinite(self.scale)):
            raise ValueError(f"unit scale must be a positive finite number, got {self.scale}")

    def __str__(self) -> str:
        if self.scale == 1.0:
            return f"/{self.base.value}"
        return f"/{self.scale:g} {self.base.value}"

    def compatible_with(self, other: "FrequencyUnit") -> bool:
        """Whether frequencies in the two units may be combined."""
        return self.base is other.base


PER_HOUR = FrequencyUnit(ExposureBase.OPERATING_HOUR)
PER_KM = FrequencyUnit(ExposureBase.KILOMETRE)
PER_MISSION = FrequencyUnit(ExposureBase.MISSION)

_FREQ_RE = re.compile(
    r"^\s*(?P<value>[0-9.eE+-]+)\s*/\s*(?:(?P<scale>[0-9.eE+-]+)\s*)?(?P<base>h|km|mission)\s*$"
)


@dataclass(frozen=True)
class Frequency:
    """An event rate: ``rate`` events per one unit of exposure.

    Internally the rate is normalised to scale 1 (events per single hour /
    kilometre / mission) regardless of the unit's display scale, so two
    frequencies with the same exposure base always compare correctly.

    Frequencies form a partial algebra: addition, subtraction and scalar
    multiplication are defined between compatible units; comparison across
    incompatible units raises :class:`UnitMismatchError`.  A frequency may
    be zero (an incident type whose budget has been fully revoked) but never
    negative — negative budgets have no safety-case meaning.
    """

    rate: float
    unit: FrequencyUnit = PER_HOUR

    def __post_init__(self) -> None:
        if isinstance(self.rate, bool) or not isinstance(self.rate, (int, float)):
            raise TypeError(f"rate must be a real number, got {type(self.rate).__name__}")
        if not math.isfinite(self.rate):
            raise ValueError(f"rate must be finite, got {self.rate}")
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")
        # Normalise display scale into the rate so the invariant
        # "rate == events per 1 exposure unit" always holds.
        if self.unit.scale != 1.0:
            object.__setattr__(self, "rate", self.rate / self.unit.scale)
            object.__setattr__(self, "unit", FrequencyUnit(self.unit.base))

    # -- constructors ------------------------------------------------------

    @classmethod
    def per_hour(cls, rate: float) -> "Frequency":
        """Events per operating hour."""
        return cls(rate, PER_HOUR)

    @classmethod
    def per_km(cls, rate: float) -> "Frequency":
        """Events per kilometre driven."""
        return cls(rate, PER_KM)

    @classmethod
    def per_mission(cls, rate: float) -> "Frequency":
        """Events per mission (trip)."""
        return cls(rate, PER_MISSION)

    @classmethod
    def parse(cls, text: str) -> "Frequency":
        """Parse ``"1e-7 /h"``, ``"3/1e9 km"``, ``"0.2 /mission"`` forms."""
        match = _FREQ_RE.match(text)
        if match is None:
            raise ValueError(f"cannot parse frequency from {text!r}")
        value = float(match.group("value"))
        scale = float(match.group("scale")) if match.group("scale") else 1.0
        base = {"h": ExposureBase.OPERATING_HOUR,
                "km": ExposureBase.KILOMETRE,
                "mission": ExposureBase.MISSION}[match.group("base")]
        return cls(value, FrequencyUnit(base, scale))

    @classmethod
    def zero(cls, unit: FrequencyUnit = PER_HOUR) -> "Frequency":
        """The zero rate in the given unit (identity of addition)."""
        return cls(0.0, unit)

    # -- algebra -----------------------------------------------------------

    def _check(self, other: "Frequency") -> None:
        if not isinstance(other, Frequency):
            raise TypeError(f"expected Frequency, got {type(other).__name__}")
        if not self.unit.compatible_with(other.unit):
            raise UnitMismatchError(
                f"cannot combine {self.unit} with {other.unit}; "
                "convert explicitly via ExposureProfile first"
            )

    def __add__(self, other: "Frequency") -> "Frequency":
        self._check(other)
        return Frequency(self.rate + other.rate, self.unit)

    def __sub__(self, other: "Frequency") -> "Frequency":
        self._check(other)
        diff = self.rate - other.rate
        if diff < 0 and diff > -1e-15 * max(self.rate, 1.0):
            diff = 0.0  # absorb float fuzz at the budget boundary
        return Frequency(diff, self.unit)

    def __mul__(self, factor: float) -> "Frequency":
        if isinstance(factor, Frequency):
            raise TypeError("cannot multiply two frequencies")
        return Frequency(self.rate * factor, self.unit)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Union[float, "Frequency"]) -> Union[float, "Frequency"]:
        if isinstance(divisor, Frequency):
            self._check(divisor)
            if divisor.rate == 0:
                raise ZeroDivisionError("division by zero frequency")
            return self.rate / divisor.rate
        return Frequency(self.rate / divisor, self.unit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frequency):
            return NotImplemented
        return self.unit.base is other.unit.base and self.rate == other.rate

    def __hash__(self) -> int:
        return hash((self.rate, self.unit.base))

    def __lt__(self, other: "Frequency") -> bool:
        self._check(other)
        return self.rate < other.rate

    def __le__(self, other: "Frequency") -> bool:
        self._check(other)
        return self.rate <= other.rate

    def __gt__(self, other: "Frequency") -> bool:
        self._check(other)
        return self.rate > other.rate

    def __ge__(self, other: "Frequency") -> bool:
        self._check(other)
        return self.rate >= other.rate

    def is_zero(self) -> bool:
        return self.rate == 0.0

    def within(self, budget: "Frequency", *, rel_tol: float = 1e-9) -> bool:
        """Whether this rate fits inside ``budget`` (Eq. 1 per-term check).

        A relative tolerance absorbs floating-point fuzz from summing many
        contribution terms; the safety-relevant direction (exceeding the
        budget) is never masked beyond that tolerance.
        """
        self._check(budget)
        return self.rate <= budget.rate * (1.0 + rel_tol) + 1e-300

    def expected_events(self, exposure: float) -> float:
        """Expected event count over ``exposure`` units (hours/km/missions)."""
        if exposure < 0:
            raise ValueError("exposure must be non-negative")
        return self.rate * exposure

    def __str__(self) -> str:
        return f"{self.rate:.3g} {self.unit}"

    def __repr__(self) -> str:
        return f"Frequency({self.rate!r}, {self.unit.base.value!r})"


def sum_frequencies(frequencies: Iterable[Frequency], unit: FrequencyUnit = PER_HOUR) -> Frequency:
    """Sum frequencies, all of which must share ``unit``'s exposure base.

    Returns the zero frequency in ``unit`` for an empty iterable — the sum
    over no incident types contributes nothing to a consequence class.
    """
    total = Frequency.zero(unit)
    for freq in frequencies:
        total = total + freq
    return total


@dataclass(frozen=True)
class FrequencyBand:
    """A half-open frequency interval ``[low, high)`` in one unit.

    Used to express acceptance corridors in a norm: the political upper
    acceptance limit and the state-of-the-art lower claim limit discussed in
    Sec. III-A span such a band.
    """

    low: Frequency
    high: Frequency

    def __post_init__(self) -> None:
        if not self.low.unit.compatible_with(self.high.unit):
            raise UnitMismatchError("band bounds must share an exposure base")
        if self.low > self.high:
            raise ValueError(f"band low {self.low} exceeds high {self.high}")

    def __contains__(self, freq: Frequency) -> bool:
        return self.low <= freq < self.high

    def midpoint_log(self) -> Frequency:
        """Geometric midpoint — natural for order-of-magnitude budgets."""
        if self.low.is_zero():
            return Frequency(self.high.rate / 2.0, self.high.unit)
        return Frequency(math.sqrt(self.low.rate * self.high.rate), self.low.unit)

    def width_decades(self) -> float:
        """Band width in decades (log10 high/low); ``inf`` if low is zero."""
        if self.low.is_zero():
            return math.inf
        return math.log10(self.high.rate / self.low.rate)


@dataclass(frozen=True)
class ExposureProfile:
    """Explicit link between exposure bases for one feature/ODD.

    The paper keeps frequencies abstract; in practice a norm stated per
    operating hour must be compared against field data collected per
    kilometre or per mission.  A profile declares the average conversion
    factors for a specific feature (they are ODD-dependent, which is
    exactly why conversion must never be implicit).
    """

    mean_speed_km_per_h: float
    mean_mission_hours: float

    def __post_init__(self) -> None:
        if self.mean_speed_km_per_h <= 0:
            raise ValueError("mean speed must be positive")
        if self.mean_mission_hours <= 0:
            raise ValueError("mean mission duration must be positive")

    def convert(self, freq: Frequency, target: FrequencyUnit) -> Frequency:
        """Convert ``freq`` to ``target``'s exposure base via this profile."""
        if freq.unit.compatible_with(target):
            return Frequency(freq.rate, target)
        per_hour = self._to_per_hour(freq)
        if target.base is ExposureBase.OPERATING_HOUR:
            return Frequency(per_hour, PER_HOUR)
        if target.base is ExposureBase.KILOMETRE:
            return Frequency(per_hour / self.mean_speed_km_per_h, PER_KM)
        if target.base is ExposureBase.MISSION:
            return Frequency(per_hour * self.mean_mission_hours, PER_MISSION)
        raise ValueError(f"unknown target base {target.base}")  # pragma: no cover

    def _to_per_hour(self, freq: Frequency) -> float:
        base = freq.unit.base
        if base is ExposureBase.OPERATING_HOUR:
            return freq.rate
        if base is ExposureBase.KILOMETRE:
            return freq.rate * self.mean_speed_km_per_h
        if base is ExposureBase.MISSION:
            return freq.rate / self.mean_mission_hours
        raise ValueError(f"unknown base {base}")  # pragma: no cover


def geometric_ladder(top: Frequency, decades_per_step: float, steps: int) -> Iterator[Frequency]:
    """Yield ``steps`` frequencies descending from ``top`` by fixed decades.

    Risk norms are naturally expressed as order-of-magnitude ladders (cf.
    Fig. 3, where each more severe class gets a visibly smaller budget);
    this helper builds such ladders for norm construction and sweeps.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if decades_per_step <= 0:
        raise ValueError("decades_per_step must be positive")
    factor = 10.0 ** (-decades_per_step)
    rate = top.rate
    for _ in range(steps):
        yield Frequency(rate, top.unit)
        rate *= factor
