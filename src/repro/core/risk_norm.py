"""The quantitative risk norm object.

Implements Sec. III-A.  A :class:`QuantitativeRiskNorm` is "essentially a
budget of acceptable frequencies of incidents (including accidents)
assigned to a number of consequence classes with different severity, where
the frequency budget for each consequence class has a strict limit".

The norm is the *problem-domain* artefact: it defines 'sufficiently safe'
for the design-time safety-case top claim, is valid across the entire ODD
("we use the same risk norm for the entire safety case"), and is shared
across product variants (Sec. VII).  What the norm's numbers should be is
a political/societal question the paper deliberately leaves open; the
module therefore provides construction *helpers* — notably calibration
against a human-driver baseline with an improvement factor — but no
hard-coded acceptance criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .consequence import ConsequenceClass, ConsequenceScale, example_scale
from .quantities import Frequency, FrequencyBand, FrequencyUnit, PER_HOUR
from .severity import SeverityDomain, UnifiedSeverity

__all__ = [
    "QuantitativeRiskNorm",
    "AcceptanceCorridor",
    "human_driver_baseline",
    "norm_from_human_baseline",
    "example_norm",
    "societal_impact",
]


@dataclass(frozen=True)
class AcceptanceCorridor:
    """The societal acceptance corridor for one consequence class.

    Sec. III-A: what is safe enough "will be a political upper limit of
    acceptance from the society and customers; and on the other hand, it
    should not contradict the lower claim limits understood as the state of
    the art".  A corridor records both; a valid norm budget must lie within
    it.
    """

    class_id: str
    political_upper: Frequency
    state_of_art_lower: Frequency

    def __post_init__(self) -> None:
        if self.state_of_art_lower > self.political_upper:
            raise ValueError(
                f"corridor for {self.class_id}: state-of-art lower claim "
                f"{self.state_of_art_lower} exceeds political upper limit "
                f"{self.political_upper} — no admissible norm exists"
            )

    @property
    def band(self) -> FrequencyBand:
        return FrequencyBand(self.state_of_art_lower, self.political_upper)

    def admits(self, budget: Frequency) -> bool:
        return self.state_of_art_lower <= budget <= self.political_upper


class QuantitativeRiskNorm:
    """A complete QRN: named, documented, validated consequence budgets.

    The norm wraps a :class:`ConsequenceScale` and adds identity, rationale
    and (optionally) the acceptance corridors justifying each budget.  It
    is immutable; tightening or re-deriving produces a new norm, keeping
    safety-case versions distinct.
    """

    def __init__(self, name: str, scale: ConsequenceScale, *,
                 rationale: str = "",
                 corridors: Optional[Mapping[str, AcceptanceCorridor]] = None):
        if not name or not name.strip():
            raise ValueError("a risk norm must be named")
        self.name = name
        self.scale = scale
        self.rationale = rationale
        self._corridors: Dict[str, AcceptanceCorridor] = dict(corridors or {})
        for class_id, corridor in self._corridors.items():
            if class_id not in scale:
                raise KeyError(f"corridor for unknown class {class_id!r}")
            if corridor.class_id != class_id:
                raise ValueError(
                    f"corridor keyed {class_id!r} but labelled {corridor.class_id!r}"
                )
            budget = scale.budget(class_id)
            if not corridor.admits(budget):
                raise ValueError(
                    f"budget {budget} for {class_id} lies outside its acceptance "
                    f"corridor [{corridor.state_of_art_lower}, {corridor.political_upper}]"
                )

    # -- queries -----------------------------------------------------------

    @property
    def unit(self) -> FrequencyUnit:
        return self.scale.unit

    @property
    def class_ids(self) -> Tuple[str, ...]:
        return self.scale.class_ids

    def budget(self, class_id: str) -> Frequency:
        """``f_v^(acceptable)`` for a class — the Eq. 1 right-hand side."""
        return self.scale.budget(class_id)

    def budgets(self) -> Dict[str, Frequency]:
        return self.scale.budgets()

    def corridor(self, class_id: str) -> Optional[AcceptanceCorridor]:
        return self._corridors.get(class_id)

    def classes(self) -> Tuple[ConsequenceClass, ...]:
        return tuple(self.scale)

    def safety_budget_total(self) -> Frequency:
        """Combined budget over the safety (injury) classes."""
        total = Frequency.zero(self.unit)
        for cls in self.scale.safety_classes():
            total = total + cls.budget
        return total

    def quality_budget_total(self) -> Frequency:
        """Combined budget over the quality classes."""
        total = Frequency.zero(self.unit)
        for cls in self.scale.quality_classes():
            total = total + cls.budget
        return total

    # -- derivation ----------------------------------------------------------

    def tightened(self, factor: float, *, name: Optional[str] = None) -> "QuantitativeRiskNorm":
        """A uniformly stricter norm (``factor`` < 1 shrinks every budget).

        Corridors are dropped: a rescaled budget needs re-justification.
        """
        if not (0 < factor):
            raise ValueError("factor must be positive")
        new_name = name if name is not None else f"{self.name} ×{factor:g}"
        return QuantitativeRiskNorm(new_name, self.scale.scaled(factor),
                                    rationale=self.rationale)

    def with_budgets(self, budgets: Mapping[str, Frequency], *,
                     name: Optional[str] = None) -> "QuantitativeRiskNorm":
        """A copy with selected class budgets replaced."""
        new_name = name if name is not None else self.name
        return QuantitativeRiskNorm(new_name, self.scale.with_budgets(budgets),
                                    rationale=self.rationale)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for storage in a safety-case repository."""
        return {
            "name": self.name,
            "rationale": self.rationale,
            "unit": self.unit.base.value,
            "classes": [
                {
                    "class_id": cls.class_id,
                    "severity": cls.severity.name,
                    "budget_rate": cls.budget.rate,
                    "description": cls.description,
                }
                for cls in self.scale
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QuantitativeRiskNorm":
        from .quantities import ExposureBase

        unit = FrequencyUnit(ExposureBase(str(data["unit"])))
        classes = [
            ConsequenceClass(
                class_id=str(entry["class_id"]),
                severity=UnifiedSeverity[str(entry["severity"])],
                budget=Frequency(float(entry["budget_rate"]), unit),
                description=str(entry.get("description", "")),
            )
            for entry in data["classes"]  # type: ignore[union-attr]
        ]
        return cls(str(data["name"]), ConsequenceScale(classes),
                   rationale=str(data.get("rationale", "")))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantitativeRiskNorm):
            return NotImplemented
        return self.name == other.name and self.scale == other.scale

    def __repr__(self) -> str:
        return f"QuantitativeRiskNorm({self.name!r}, {len(self.scale)} classes)"


def human_driver_baseline(unit: FrequencyUnit = PER_HOUR) -> Dict[UnifiedSeverity, Frequency]:
    """Synthetic per-severity incident rates for human-driven traffic.

    Used to anchor norm calibration the way a real programme would use
    national statistics (the paper cites the Swedish Trafikanalys annual
    report).  The *shape* is realistic — orders of magnitude apart per
    severity step, fatalities around 1e-6/h — but the numbers are
    synthetic, consistent with the paper's footnote 3.
    """
    rates = {
        UnifiedSeverity.PERCEIVED_SAFETY: 5e-2,
        UnifiedSeverity.EMERGENCY_MANOEUVRE: 1e-2,
        UnifiedSeverity.MATERIAL_DAMAGE: 1e-3,
        UnifiedSeverity.LIGHT_INJURY: 1e-4,
        UnifiedSeverity.SEVERE_INJURY: 5e-6,
        UnifiedSeverity.LIFE_THREATENING: 1e-6,
    }
    return {sev: Frequency(rate, unit) for sev, rate in rates.items()}


def norm_from_human_baseline(name: str,
                             improvement_factor: float,
                             *,
                             baseline: Optional[Mapping[UnifiedSeverity, Frequency]] = None,
                             unit: FrequencyUnit = PER_HOUR,
                             safety_extra_factor: float = 1.0,
                             rationale: str = "") -> QuantitativeRiskNorm:
    """Calibrate a norm as "``improvement_factor``× safer than human driving".

    A common societal-acceptance position for ADS is a required improvement
    over the human-driver status quo (e.g. 10×).  ``safety_extra_factor``
    optionally tightens only the injury classes further, reflecting that
    society weighs harm to humans above quality nuisances.

    Corridors are attached: political upper = the baseline itself (an ADS
    must at minimum not be worse than humans), state-of-art lower = 100×
    below the chosen budget.
    """
    if improvement_factor < 1.0:
        raise ValueError("improvement factor must be >= 1 (not worse than humans)")
    if safety_extra_factor < 1.0:
        raise ValueError("safety_extra_factor must be >= 1")
    base = dict(baseline) if baseline is not None else human_driver_baseline(unit)
    ordered = sorted(base, key=int)
    classes = []
    corridors: Dict[str, AcceptanceCorridor] = {}
    for index, severity in enumerate(ordered, start=1):
        domain_tag = "Q" if severity.domain is SeverityDomain.QUALITY else "S"
        rank = sum(1 for s in ordered[:ordered.index(severity) + 1]
                   if s.domain is severity.domain)
        class_id = f"v{domain_tag}{rank}"
        divisor = improvement_factor
        if severity.domain is SeverityDomain.SAFETY:
            divisor *= safety_extra_factor
        budget = base[severity] * (1.0 / divisor)
        classes.append(ConsequenceClass(class_id, severity, budget,
                                        description=severity.example))
        corridors[class_id] = AcceptanceCorridor(
            class_id=class_id,
            political_upper=base[severity],
            state_of_art_lower=budget * 1e-2,
        )
    return QuantitativeRiskNorm(name, ConsequenceScale(classes),
                                rationale=rationale or (
                                    f"{improvement_factor:g}x improvement over "
                                    "human-driver baseline"),
                                corridors=corridors)


def example_norm(name: str = "Example QRN (Fig. 3)") -> QuantitativeRiskNorm:
    """The Fig. 3 example norm: 3 quality + 3 safety classes."""
    return QuantitativeRiskNorm(
        name,
        example_scale(),
        rationale="Illustrative norm mirroring Fig. 3 of the paper; "
                  "synthetic budgets (paper footnote 3).",
    )


def societal_impact(norm: QuantitativeRiskNorm, fleet_size: int,
                    hours_per_vehicle_year: float) -> Dict[str, float]:
    """Expected incidents per year, per consequence class, fleet-wide.

    The paper's conclusions face the controversy head-on: a QRN
    "explicitly set[s] goals on the frequencies of accidents of different
    severity (essentially saying we're allowed to kill and injure these
    many persons per operational hour)".  This helper computes exactly
    that number for a deployment, because the honest form of the debate
    is over *these* figures, not over the per-hour abstractions:
    ``budget × fleet × hours/vehicle/year`` events per year per class.

    Requires a per-operating-hour norm — per-km or per-mission norms need
    an explicit :class:`~repro.core.quantities.ExposureProfile` conversion
    first (fleet exposure is stated in hours here).
    """
    from .quantities import ExposureBase

    if fleet_size < 1:
        raise ValueError("fleet size must be >= 1")
    if hours_per_vehicle_year <= 0:
        raise ValueError("hours per vehicle-year must be positive")
    if norm.unit.base is not ExposureBase.OPERATING_HOUR:
        raise ValueError(
            f"societal impact needs a per-hour norm, got {norm.unit}; "
            "convert via ExposureProfile first")
    fleet_hours = fleet_size * hours_per_vehicle_year
    return {class_id: budget.rate * fleet_hours
            for class_id, budget in norm.budgets().items()}
