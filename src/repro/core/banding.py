"""Choosing tolerance margins: how fine should incident types be?

Sec. III-B discusses both directions of the granularity question:

* too fine — "separating a collision between ego vehicle and VRU with
  collision speed at 17 km/h from a similar collision at 19 km/h might
  be too fine grained";
* about right — "having two incident types for collision speeds below or
  above 10 km/h may be appropriate **if the likelihood of severe injuries
  rises quickly above this limit**";
* and the second definitional criterion: a distinction is only useful if
  the refined requirements (and the budget attribution) can exploit it.

This module turns that judgement into algorithms over an injury-risk
model:

* :func:`band_dispersion` — how much the severity outcome varies *within*
  a candidate band (a good band is internally homogeneous);
* :func:`propose_bands` — optimal ``k``-band tilings of a Δv range by
  dynamic programming over the within-band dispersion;
* :func:`distinguishability` — how different adjacent bands' severity
  profiles are (the 17-vs-19 test: near-zero distinguishability means the
  split buys nothing);
* :func:`granularity_tradeoff` — the end-to-end effect of band count on
  the allocation: sharper attribution buys total tolerated frequency, at
  the price of more safety goals to verify.

All computations use exact severity distributions from
:class:`~repro.injury.risk_curves.InjuryRiskModel`; no sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..injury.risk_curves import InjuryRiskModel
from .consequence import ConsequenceScale
from .incident import IncidentType, SpeedBand
from .severity import UnifiedSeverity
from .taxonomy import ActorClass

__all__ = [
    "BandingResult",
    "band_dispersion",
    "propose_bands",
    "distinguishability",
    "bands_to_incident_types",
    "granularity_tradeoff",
    "GranularityPoint",
]

_LEVELS = (UnifiedSeverity.MATERIAL_DAMAGE, UnifiedSeverity.LIGHT_INJURY,
           UnifiedSeverity.SEVERE_INJURY, UnifiedSeverity.LIFE_THREATENING)


def _profile_grid(model: InjuryRiskModel, counterpart: ActorClass,
                  max_dv: float, resolution: int) -> Tuple[np.ndarray, np.ndarray]:
    """Grid of Δv points and their exact severity distributions.

    Returns ``(speeds, P)`` with ``P[i]`` the probability vector over
    ``_LEVELS`` at ``speeds[i]``.  The grid starts just above 0 (Δv = 0
    is not a collision).
    """
    if max_dv <= 0:
        raise ValueError("max_dv must be positive")
    if resolution < 4:
        raise ValueError("resolution must be >= 4")
    speeds = np.linspace(0.0, max_dv, resolution + 1)[1:]
    profiles = np.empty((resolution, len(_LEVELS)))
    for i, dv in enumerate(speeds):
        distribution = model.severity_probabilities(counterpart, float(dv))
        profiles[i] = [distribution[level] for level in _LEVELS]
    return speeds, profiles


def _tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two severity distributions."""
    return 0.5 * float(np.abs(p - q).sum())


def band_dispersion(model: InjuryRiskModel, counterpart: ActorClass,
                    band: SpeedBand, *, resolution: int = 32) -> float:
    """Mean TV distance of in-band severity profiles to the band average.

    Zero means every collision in the band has the same consequence
    distribution — the ideal incident type, whose contribution split
    loses nothing to aggregation.
    """
    speeds = np.linspace(band.low_kmh, band.high_kmh, resolution + 1)[1:]
    profiles = np.array([
        [model.severity_probabilities(counterpart, float(dv))[level]
         for level in _LEVELS]
        for dv in speeds
    ])
    centre = profiles.mean(axis=0)
    return float(np.mean([_tv_distance(p, centre) for p in profiles]))


@dataclass(frozen=True)
class BandingResult:
    """An optimal k-band tiling with its quality scores."""

    bands: Tuple[SpeedBand, ...]
    total_dispersion: float
    min_adjacent_distinguishability: float

    @property
    def k(self) -> int:
        return len(self.bands)


def propose_bands(model: InjuryRiskModel, counterpart: ActorClass,
                  max_dv: float, k: int, *,
                  resolution: int = 48) -> BandingResult:
    """Optimal ``k``-band tiling of ``(0, max_dv]`` by dynamic programming.

    Minimises the summed within-band dispersion (each grid point's TV
    distance to its band's mean profile).  Edges land on grid points, so
    ``resolution`` bounds the answer's precision — deliberately coarse,
    because "17 vs 19 km/h" precision is exactly what the paper calls too
    fine.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    speeds, profiles = _profile_grid(model, counterpart, max_dv, resolution)
    m = len(speeds)
    if k > m:
        raise ValueError(f"cannot cut {m}-point grid into {k} bands")

    # cost[i][j]: dispersion of a band covering grid points i..j-1.
    prefix = np.cumsum(profiles, axis=0)

    def segment_cost(i: int, j: int) -> float:
        segment = profiles[i:j]
        centre = (prefix[j - 1] - (prefix[i - 1] if i > 0 else 0)) / (j - i)
        return float(np.abs(segment - centre).sum()) * 0.5

    cost = np.full((m + 1, m + 1), np.inf)
    for i in range(m):
        for j in range(i + 1, m + 1):
            cost[i][j] = segment_cost(i, j)

    best = np.full((k + 1, m + 1), np.inf)
    parent = np.zeros((k + 1, m + 1), dtype=int)
    best[0][0] = 0.0
    for bands_used in range(1, k + 1):
        for j in range(bands_used, m + 1):
            for i in range(bands_used - 1, j):
                candidate = best[bands_used - 1][i] + cost[i][j]
                if candidate < best[bands_used][j]:
                    best[bands_used][j] = candidate
                    parent[bands_used][j] = i

    # Recover edges.
    edges = [m]
    j = m
    for bands_used in range(k, 0, -1):
        j = int(parent[bands_used][j])
        edges.append(j)
    edges.reverse()
    cut_speeds = [0.0] + [float(speeds[e - 1]) for e in edges[1:-1]] + [max_dv]
    bands = tuple(SpeedBand(lo, hi)
                  for lo, hi in zip(cut_speeds, cut_speeds[1:]))
    return BandingResult(
        bands=bands,
        total_dispersion=float(best[k][m]),
        min_adjacent_distinguishability=distinguishability(
            model, counterpart, bands),
    )


def distinguishability(model: InjuryRiskModel, counterpart: ActorClass,
                       bands: Sequence[SpeedBand], *,
                       resolution: int = 32) -> float:
    """Minimum TV distance between adjacent bands' mean severity profiles.

    The quantitative form of the paper's usefulness criterion: if two
    adjacent bands have nearly identical consequence distributions
    (17 vs 19 km/h), the split provides no "meaningful input to refined
    safety requirements" and scores ≈ 0.
    """
    if len(bands) < 2:
        return math.inf
    means = []
    for band in bands:
        speeds = np.linspace(band.low_kmh, band.high_kmh, resolution + 1)[1:]
        profiles = np.array([
            [model.severity_probabilities(counterpart, float(dv))[level]
             for level in _LEVELS]
            for dv in speeds
        ])
        means.append(profiles.mean(axis=0))
    return min(_tv_distance(a, b) for a, b in zip(means, means[1:]))


def bands_to_incident_types(bands: Sequence[SpeedBand],
                            model: InjuryRiskModel,
                            counterpart: ActorClass,
                            scale: ConsequenceScale,
                            *, prefix: str = "B",
                            samples: int = 40) -> List[IncidentType]:
    """One incident type per band, with a model-derived contribution split."""
    from ..injury.classifier import split_for_speed_band

    types = []
    for index, band in enumerate(bands, start=1):
        split = split_for_speed_band(model, counterpart, band, scale,
                                     samples=samples)
        types.append(IncidentType(
            type_id=f"{prefix}{index}",
            ego=ActorClass.EGO,
            counterpart=counterpart,
            margin=band,
            split=split,
            description=f"collision {counterpart.value} {band.describe()}",
        ))
    return types


@dataclass(frozen=True)
class GranularityPoint:
    """One point of the band-count trade study."""

    k: int
    total_budget_rate: float
    """Total tolerated collision frequency under the optimal allocation."""
    n_safety_goals: int
    min_distinguishability: float
    total_dispersion: float


def granularity_tradeoff(norm, model: InjuryRiskModel,
                         counterpart: ActorClass, max_dv: float,
                         ks: Sequence[int], *,
                         resolution: int = 48) -> List[GranularityPoint]:
    """The end-to-end effect of tolerance-margin granularity.

    For each band count ``k``: propose optimal bands, derive splits,
    allocate (LP max-total) and record the total tolerated collision
    frequency.  Coarser bands smear severe and mild collisions into one
    split, so the severe classes throttle everything (conservative);
    finer bands attribute sharply and buy budget — with diminishing
    returns once bands are internally homogeneous, which is where
    distinguishability collapses and the paper's "too fine" verdict
    kicks in.
    """
    from .allocation import allocate_lp

    points = []
    for k in ks:
        banding = propose_bands(model, counterpart, max_dv, k,
                                resolution=resolution)
        types = bands_to_incident_types(banding.bands, model, counterpart,
                                        norm.scale)
        allocation = allocate_lp(norm, types)
        points.append(GranularityPoint(
            k=k,
            total_budget_rate=allocation.total_budget().rate,
            n_safety_goals=len(types),
            min_distinguishability=banding.min_adjacent_distinguishability,
            total_dispersion=banding.total_dispersion,
        ))
    return points
