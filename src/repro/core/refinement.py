"""Quantitative refinement of safety-goal budgets into an architecture.

Implements Sec. V, "A Quantitative Assurance Framework".  A QRN safety goal
carries a numeric maximum violation frequency; refining it onto an
architecture is then ordinary probability arithmetic instead of the ASIL
decomposition/inheritance rules:

* **ANY_VIOLATES** (series / OR): the parent requirement is violated when
  any child is — frequencies add (union bound; exact for disjoint causes).
* **ALL_VIOLATE** (redundancy / AND): the parent is violated only while
  *all* children are simultaneously in violation.  With per-child
  violation rates ``λ_i`` and a common exposure window ``τ`` (how long a
  violation persists before detection/recovery), the coincidence rate for
  ``n`` independent children is approximately::

      f ≈ n · τ^(n-1) · Π λ_i        (valid for λ_i τ ≪ 1)

  derived as Σ_i λ_i · Π_{j≠i} (λ_j τ): any child fails last while the
  others are already failed.
* **K_OF_N voted**: violated when at least ``n − k + 1`` of ``n`` children
  are simultaneously violated; computed by summing the AND formula over
  all minimal failing subsets.

This module is exactly the paper's drivable-area argument made executable:
"when decomposing this in several redundant sensing and prediction blocks,
these can each get frequency attributes of a value that in traditionally
ISO 26262 only would be in the QM range", yet the composed vehicle-level
rate meets a tough budget (:func:`drivable_area_example`).
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .quantities import Frequency

__all__ = [
    "Combination",
    "ElementRequirement",
    "RefinementNode",
    "RefinementError",
    "combine_and",
    "combine_or",
    "combine_k_of_n",
    "apportion_or",
    "required_leaf_rate_and",
    "drivable_area_example",
]


class RefinementError(ValueError):
    """Raised for ill-formed refinement structures or invalid regimes."""


class Combination(enum.Enum):
    """How child violations compose into a parent violation."""

    ANY_VIOLATES = "any"
    ALL_VIOLATE = "all"
    K_OF_N = "k-of-n"


_RARE_EVENT_LIMIT = 0.1
"""Validity bound for the coincidence approximation: require λ·τ below this."""


def combine_or(rates: Sequence[Frequency]) -> Frequency:
    """Series composition: any child violation violates the parent."""
    if not rates:
        raise RefinementError("OR combination needs at least one child")
    unit = rates[0].unit
    total = Frequency.zero(unit)
    for rate in rates:
        total = total + rate
    return total


def combine_and(rates: Sequence[Frequency], exposure_window: float) -> Frequency:
    """Redundancy composition: all children must be violated simultaneously.

    ``exposure_window`` (τ) is in the unit of exposure matching the rates
    (hours for per-hour rates): how long one child's violation persists
    undetected.  Raises when any ``λ_i·τ`` is large enough (> 0.1) that the
    rare-event approximation would be misleading — at that point the
    'redundancy' is not earning its keep and a proper Markov model is
    needed.
    """
    if len(rates) < 2:
        raise RefinementError("AND combination needs at least two children")
    if exposure_window <= 0 or not math.isfinite(exposure_window):
        raise RefinementError(
            f"exposure window must be positive and finite, got {exposure_window}")
    unit = rates[0].unit
    product = 1.0
    for rate in rates:
        if not rate.unit.compatible_with(unit):
            raise RefinementError("AND children must share an exposure base")
        occupancy = rate.rate * exposure_window
        if occupancy > _RARE_EVENT_LIMIT:
            raise RefinementError(
                f"child occupancy λ·τ = {occupancy:.3g} exceeds "
                f"{_RARE_EVENT_LIMIT}; coincidence approximation invalid")
        product *= rate.rate
    n = len(rates)
    return Frequency(n * (exposure_window ** (n - 1)) * product, unit)


def combine_k_of_n(rates: Sequence[Frequency], k: int,
                   exposure_window: float) -> Frequency:
    """Voted composition: the parent needs ``k`` of ``n`` children healthy.

    Violated when any ``n − k + 1`` children are simultaneously violated.
    Computed as the union bound over all minimal failing subsets, each via
    :func:`combine_and` — conservative (upper bound), which is the safe
    direction for a violation-frequency claim.
    """
    n = len(rates)
    if not (1 <= k <= n):
        raise RefinementError(f"k must be in [1, {n}], got {k}")
    m = n - k + 1
    if m == 1:
        return combine_or(rates)
    unit = rates[0].unit
    total = Frequency.zero(unit)
    for subset in itertools.combinations(range(n), m):
        total = total + combine_and([rates[i] for i in subset], exposure_window)
    return total


def apportion_or(budget: Frequency, weights: Sequence[float]) -> List[Frequency]:
    """Split a parent budget across OR-composed children by weight.

    The children's rates add, so any weights summing to 1 produce a valid
    apportionment; this is the quantitative analogue of requirement
    decomposition without ASIL bookkeeping.
    """
    if not weights:
        raise RefinementError("apportionment needs at least one weight")
    if any(w <= 0 or not math.isfinite(w) for w in weights):
        raise RefinementError("weights must be positive and finite")
    total = sum(weights)
    return [budget * (w / total) for w in weights]


def required_leaf_rate_and(budget: Frequency, n: int,
                           exposure_window: float) -> Frequency:
    """Max identical per-child rate so ``n``-redundant AND meets ``budget``.

    Inverts the coincidence formula: ``λ = (f / (n·τ^{n-1}))^{1/n}``.  This
    is the headline arithmetic of Sec. V: a 1e-7/h vehicle budget over
    three redundant blocks with a 1-second window allows each block a rate
    that "in traditionally ISO 26262 only would be in the QM range".
    """
    if n < 2:
        raise RefinementError("redundancy needs n >= 2")
    if exposure_window <= 0:
        raise RefinementError("exposure window must be positive")
    if budget.rate <= 0:
        raise RefinementError("budget must be positive to invert")
    lam = (budget.rate / (n * exposure_window ** (n - 1))) ** (1.0 / n)
    if lam * exposure_window > _RARE_EVENT_LIMIT:
        raise RefinementError(
            "inverted rate leaves the rare-event regime; "
            "use a shorter exposure window or more redundancy")
    return Frequency(lam, budget.unit)


@dataclass(frozen=True)
class ElementRequirement:
    """A leaf of the refinement tree: one element's violation-rate claim.

    ``claimed_rate`` is what the element's own evidence (testing, process
    arguments, field data) supports.  The paper's point is that this claim
    is *cause-agnostic*: "one budget to be met by all contributing causes,
    regardless whether they could be described as systematic faults ...
    random hardware faults; or as performance limitations" (Sec. V).
    """

    name: str
    claimed_rate: Frequency
    evidence: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise RefinementError("element requirement must be named")


@dataclass(frozen=True)
class RefinementNode:
    """An internal node of the refinement tree.

    ``exposure_window`` is required for AND / K_OF_N nodes and must be
    absent for OR nodes (it has no meaning there).
    """

    name: str
    combination: Combination
    children: Tuple["RefinementNode | ElementRequirement", ...]
    exposure_window: Optional[float] = None
    k: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.children:
            raise RefinementError(f"node {self.name!r} has no children")
        if self.combination is Combination.ANY_VIOLATES:
            if self.exposure_window is not None:
                raise RefinementError(
                    f"node {self.name!r}: OR nodes take no exposure window")
            if self.k is not None:
                raise RefinementError(f"node {self.name!r}: k is only for K_OF_N")
        else:
            if self.exposure_window is None:
                raise RefinementError(
                    f"node {self.name!r}: AND/K_OF_N nodes need an exposure window")
            if self.combination is Combination.K_OF_N and self.k is None:
                raise RefinementError(f"node {self.name!r}: K_OF_N needs k")
            if self.combination is Combination.ALL_VIOLATE and self.k is not None:
                raise RefinementError(f"node {self.name!r}: k is only for K_OF_N")

    def composed_rate(self) -> Frequency:
        """The violation frequency this subtree's claims compose to."""
        child_rates = [
            child.composed_rate() if isinstance(child, RefinementNode)
            else child.claimed_rate
            for child in self.children
        ]
        if self.combination is Combination.ANY_VIOLATES:
            return combine_or(child_rates)
        if self.combination is Combination.ALL_VIOLATE:
            return combine_and(child_rates, self.exposure_window)  # type: ignore[arg-type]
        return combine_k_of_n(child_rates, self.k, self.exposure_window)  # type: ignore[arg-type]

    def meets(self, budget: Frequency, *, rel_tol: float = 1e-9) -> bool:
        """Whether the composed rate fits the safety-goal budget."""
        return self.composed_rate().within(budget, rel_tol=rel_tol)

    def leaves(self) -> Iterator[ElementRequirement]:
        for child in self.children:
            if isinstance(child, ElementRequirement):
                yield child
            else:
                yield from child.leaves()

    def leaf_count(self) -> int:
        return sum(1 for _ in self.leaves())

    def render(self, budget: Optional[Frequency] = None) -> str:
        """Human-readable tree with composed rates at every node."""
        lines: List[str] = []
        self._render_into(lines, prefix="", budget=budget)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], prefix: str,
                     budget: Optional[Frequency]) -> None:
        rate = self.composed_rate()
        head = f"{prefix}{self.name} [{self.combination.value}] → {rate}"
        if budget is not None:
            head += f"  (budget {budget}: {'OK' if self.meets(budget) else 'EXCEEDED'})"
        lines.append(head)
        for child in self.children:
            if isinstance(child, ElementRequirement):
                lines.append(f"{prefix}  - {child.name}: {child.claimed_rate}")
            else:
                child._render_into(lines, prefix + "  ", budget=None)


def drivable_area_example(*, vehicle_budget: Optional[Frequency] = None,
                          redundancy: int = 3,
                          exposure_window_h: float = 1.0 / 3600.0,
                          ) -> Tuple[RefinementNode, Frequency]:
    """The Sec. V worked example: drivable area free from VRUs.

    A safety requirement on the aggregated sensing+prediction block is "not
    to overestimate such an area, with a very tough integrity attribute".
    The function builds ``redundancy`` independent perception channels,
    each claimed at the *maximum* rate allowed by the inverted coincidence
    formula, and returns the tree plus the per-channel claim.  With the
    defaults — 1e-7/h vehicle budget, 3 channels, 1 s window — each channel
    may violate about 0.03 times per hour: far into what ISO 26262 would
    call the QM range, which is the paper's headline observation.
    """
    if vehicle_budget is None:
        vehicle_budget = Frequency.per_hour(1e-7)
    per_channel = required_leaf_rate_and(vehicle_budget, redundancy,
                                         exposure_window_h)
    channels = tuple(
        ElementRequirement(
            name=f"perception-channel-{i + 1}",
            claimed_rate=per_channel,
            evidence="channel-level testing; cause-agnostic rate claim",
        )
        for i in range(redundancy)
    )
    tree = RefinementNode(
        name="do-not-overestimate-drivable-area",
        combination=Combination.ALL_VIOLATE,
        children=channels,
        exposure_window=exposure_window_h,
    )
    return tree, per_channel
