"""Severity scales for the unified quality + safety axis.

Implements the x-axis of Figs. 1 and 2 of the paper.  ISO 26262 grades only
injury outcomes (S0–S3).  The QRN proposal widens the axis to the left with
*quality* consequences — perceived safety, induced emergency manoeuvres,
material damage — so that "light rear-end collisions resulting in bodywork
damage, or careless driving causing other road users to perform emergency
manoeuvres" live in the same risk framework as injuries (Sec. III-A,
Fig. 2).

Two scales are provided:

* :class:`IsoSeverity` — the standard's S0–S3 classes, used by the HARA
  baseline in :mod:`repro.hara`.
* :class:`UnifiedSeverity` — the paper's widened ordering, used by the QRN.

plus explicit, documented mappings between them.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

__all__ = [
    "SeverityDomain",
    "IsoSeverity",
    "UnifiedSeverity",
    "unified_to_iso",
    "iso_to_unified",
]


import enum


class SeverityDomain(enum.Enum):
    """Which half of Fig. 2 a severity level belongs to.

    Quality consequences are "economic harm / harm to brand"; safety
    consequences are "harm of injury to humans".
    """

    QUALITY = "quality"
    SAFETY = "safety"


class IsoSeverity(IntEnum):
    """ISO 26262 severity classes (S-factor).

    The integer value is the standard's ordinal; ordering is meaningful
    (``S3 > S1``).
    """

    S0 = 0  #: no injuries
    S1 = 1  #: light to moderate injuries
    S2 = 2  #: severe injuries (survival probable)
    S3 = 3  #: life-threatening or fatal injuries

    @property
    def description(self) -> str:
        return _ISO_DESCRIPTIONS[self]


_ISO_DESCRIPTIONS = {
    IsoSeverity.S0: "no injuries",
    IsoSeverity.S1: "light to moderate injuries",
    IsoSeverity.S2: "severe injuries, survival probable",
    IsoSeverity.S3: "life-threatening or fatal injuries",
}


class UnifiedSeverity(IntEnum):
    """The widened severity axis of Fig. 2, least to most severe.

    The three left-most levels are quality consequences, the three
    right-most are safety consequences.  The integer value orders the axis;
    crossing from ``MATERIAL_DAMAGE`` to ``LIGHT_INJURY`` is the
    quality→safety boundary (the blue/red split in Fig. 2).
    """

    PERCEIVED_SAFETY = 0
    """E.g. causing a scared pedestrian or passenger."""

    EMERGENCY_MANOEUVRE = 1
    """E.g. causing an evasive manoeuvre for another road user."""

    MATERIAL_DAMAGE = 2
    """E.g. collision resulting in bodywork damage, no injuries."""

    LIGHT_INJURY = 3
    """Light to moderate injuries, e.g. low-speed car collision."""

    SEVERE_INJURY = 4
    """Severe injuries, e.g. medium-speed car collision."""

    LIFE_THREATENING = 5
    """Life-threatening/fatal, e.g. high-speed or pedestrian collision."""

    @property
    def domain(self) -> SeverityDomain:
        """Quality for the three low levels, safety for the three high."""
        if self <= UnifiedSeverity.MATERIAL_DAMAGE:
            return SeverityDomain.QUALITY
        return SeverityDomain.SAFETY

    @property
    def description(self) -> str:
        return _UNIFIED_DESCRIPTIONS[self]

    @property
    def example(self) -> str:
        """The illustrative incident the paper's Fig. 2 places at this level."""
        return _UNIFIED_EXAMPLES[self]


_UNIFIED_DESCRIPTIONS = {
    UnifiedSeverity.PERCEIVED_SAFETY: "perceived safety degradation",
    UnifiedSeverity.EMERGENCY_MANOEUVRE: "induced emergency manoeuvre",
    UnifiedSeverity.MATERIAL_DAMAGE: "material damage only",
    UnifiedSeverity.LIGHT_INJURY: "light to moderate injuries",
    UnifiedSeverity.SEVERE_INJURY: "severe injuries",
    UnifiedSeverity.LIFE_THREATENING: "life-threatening or fatal injuries",
}

_UNIFIED_EXAMPLES = {
    UnifiedSeverity.PERCEIVED_SAFETY: "causing scared pedestrian or passenger",
    UnifiedSeverity.EMERGENCY_MANOEUVRE: "causing evasive manoeuvre for other road user",
    UnifiedSeverity.MATERIAL_DAMAGE: "collision resulting in bodywork damage",
    UnifiedSeverity.LIGHT_INJURY: "collision with other car at low speed",
    UnifiedSeverity.SEVERE_INJURY: "collision with other car at medium speed",
    UnifiedSeverity.LIFE_THREATENING: "collision with car at high speed or with pedestrian",
}


def unified_to_iso(severity: UnifiedSeverity) -> IsoSeverity:
    """Project the unified axis onto ISO S0–S3.

    All quality levels collapse onto S0 — ISO 26262 is scoped to injuries
    only (Fig. 1: "Scope of ISO 26262"), which is precisely the gap the
    unified axis fills.
    """
    mapping = {
        UnifiedSeverity.PERCEIVED_SAFETY: IsoSeverity.S0,
        UnifiedSeverity.EMERGENCY_MANOEUVRE: IsoSeverity.S0,
        UnifiedSeverity.MATERIAL_DAMAGE: IsoSeverity.S0,
        UnifiedSeverity.LIGHT_INJURY: IsoSeverity.S1,
        UnifiedSeverity.SEVERE_INJURY: IsoSeverity.S2,
        UnifiedSeverity.LIFE_THREATENING: IsoSeverity.S3,
    }
    return mapping[severity]


def iso_to_unified(severity: IsoSeverity, *,
                   quality_detail: Optional[UnifiedSeverity] = None) -> UnifiedSeverity:
    """Lift an ISO severity onto the unified axis.

    ``S0`` is ambiguous on the wider axis (it could be any quality level);
    the caller must disambiguate via ``quality_detail`` when lifting S0, and
    must not pass it otherwise.
    """
    if severity is IsoSeverity.S0:
        if quality_detail is None:
            raise ValueError(
                "ISO S0 spans all quality levels; pass quality_detail to disambiguate"
            )
        if quality_detail.domain is not SeverityDomain.QUALITY:
            raise ValueError(f"{quality_detail.name} is not a quality level")
        return quality_detail
    if quality_detail is not None:
        raise ValueError("quality_detail is only meaningful for S0")
    mapping = {
        IsoSeverity.S1: UnifiedSeverity.LIGHT_INJURY,
        IsoSeverity.S2: UnifiedSeverity.SEVERE_INJURY,
        IsoSeverity.S3: UnifiedSeverity.LIFE_THREATENING,
    }
    return mapping[severity]
