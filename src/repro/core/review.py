"""Automated confirmation review.

ISO 26262 demands "a work product arguing for the completeness and
consistency of the SGs ... subject of a confirmation review with the
standard's highest defined degree of independence" (paper Sec. II-A).
Under the QRN, most of what that reviewer checks is mechanical — and a
mechanical check should be a function, not a meeting.

:func:`confirmation_review` runs every machine check the library offers
over a safety-goal set and its companion artefacts, and returns a ranked
findings list:

* BLOCKER — the safety case is wrong as it stands (Eq. 1 violated,
  missing/failed MECE certificate, measured violations, ethical
  constraint breaches);
* OPEN — work outstanding but nothing contradicted (inconclusive
  verification, unallocated goals in the ledger, undeveloped case
  branches);
* NOTE — observations a human reviewer would raise (a goal with zero
  budget, a class with no contributors, heavy budget concentration).

An empty findings list is not "safe" — it is "nothing mechanical left to
object to", which is exactly the state a human review should start from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .ethics import EthicalConstraint, audit_allocation
from .safety_goals import SafetyGoalSet
from .verification import Verdict, VerificationReport

__all__ = ["Severity", "Finding", "confirmation_review"]


class Severity(enum.Enum):
    """Finding severity: BLOCKER (case wrong), OPEN (work left), NOTE."""

    BLOCKER = "blocker"
    OPEN = "open"
    NOTE = "note"


@dataclass(frozen=True)
class Finding:
    """One review finding."""

    severity: Severity
    check: str
    detail: str

    def render(self) -> str:
        return f"[{self.severity.value.upper():7s}] {self.check}: {self.detail}"


def confirmation_review(goals: SafetyGoalSet,
                        report: Optional[VerificationReport] = None,
                        *, constraints: Sequence[EthicalConstraint] = (),
                        ledger=None,
                        concentration_note_share: float = 0.9,
                        ) -> List[Finding]:
    """Run every mechanical completeness/consistency check.

    ``ledger`` may be an :class:`repro.assurance.architecture.
    AllocationLedger` for the refinement-coverage checks; ``constraints``
    are re-audited directly (independent of whatever optimiser produced
    the allocation).  Findings are returned most severe first.
    """
    findings: List[Finding] = []
    allocation = goals.allocation
    norm = goals.norm

    # -- completeness -----------------------------------------------------
    if goals.certificate is None:
        findings.append(Finding(
            Severity.BLOCKER, "mece-certificate",
            "no MECE certificate attached — collective exhaustiveness of "
            "the incident classification is unestablished"))
    elif not goals.certificate.is_mece:
        findings.append(Finding(
            Severity.BLOCKER, "mece-certificate",
            f"certificate records {len(goals.certificate.violations)} "
            "violation(s) — the classification is not MECE"))

    # -- Eq. 1 -------------------------------------------------------------
    for class_id, excess in allocation.violations().items():
        findings.append(Finding(
            Severity.BLOCKER, "eq1-feasibility",
            f"class {class_id} overcommitted by {excess} — the allocated "
            "budgets do not respect the norm"))

    # -- ethics --------------------------------------------------------------
    for violation in audit_allocation(allocation.budgets(),
                                      list(allocation.types),
                                      constraints, norm.budgets()):
        findings.append(Finding(
            Severity.BLOCKER, "ethical-constraints",
            f"{violation.constraint}: {violation.detail}"))

    # -- verification -----------------------------------------------------------
    if report is None:
        findings.append(Finding(
            Severity.OPEN, "verification",
            "no verification report — every safety goal is an open claim"))
    else:
        for verdict in report.goal_verdicts:
            if verdict.verdict is Verdict.VIOLATED:
                findings.append(Finding(
                    Severity.BLOCKER, "verification",
                    f"{verdict.goal_id} measured above its budget "
                    f"(rate {verdict.point_rate:.3g} vs {verdict.budget})"))
            elif verdict.verdict is Verdict.INCONCLUSIVE:
                findings.append(Finding(
                    Severity.OPEN, "verification",
                    f"{verdict.goal_id} inconclusive; needs "
                    f"~{verdict.additional_exposure_needed():.3g} more "
                    "clean exposure"))
        for verdict in report.class_verdicts:
            if verdict.verdict is Verdict.VIOLATED:
                findings.append(Finding(
                    Severity.BLOCKER, "verification",
                    f"class {verdict.class_id} measured above its budget"))

    # -- refinement coverage -------------------------------------------------------
    if ledger is not None:
        for goal_id in ledger.unallocated_goals():
            findings.append(Finding(
                Severity.OPEN, "refinement",
                f"{goal_id} has no allocated requirements in the ledger"))
        for goal_id in ledger.uncovered_goals():
            findings.append(Finding(
                Severity.OPEN, "refinement",
                f"{goal_id} allocated but its composition misses (or lacks) "
                "a budget-meeting argument"))

    # -- notes ------------------------------------------------------------------
    for itype in allocation.types:
        if allocation.budget(itype.type_id).is_zero():
            findings.append(Finding(
                Severity.NOTE, "zero-budget",
                f"{itype.type_id} is budgeted at zero — its safety goal is "
                "unfulfillable by any real implementation; add a floor or "
                "re-weight the allocation"))
    for class_id in norm.class_ids:
        contributors = [
            itype.type_id for itype in allocation.types
            if itype.split.fraction(class_id) > 0]
        if not contributors:
            findings.append(Finding(
                Severity.NOTE, "uncovered-class",
                f"no incident type contributes to {class_id} — either the "
                "taxonomy genuinely excludes such consequences or a split "
                "is missing"))
            continue
        load = allocation.class_load(class_id)
        if load.is_zero():
            continue
        for itype in allocation.types:
            share = allocation.contribution(class_id, itype.type_id) / load
            if share > concentration_note_share:
                findings.append(Finding(
                    Severity.NOTE, "budget-concentration",
                    f"{itype.type_id} carries {share:.0%} of {class_id} — "
                    "check the ethical acceptability of the concentration "
                    "(cf. the paper's Ego<->Child discussion)"))

    order = {Severity.BLOCKER: 0, Severity.OPEN: 1, Severity.NOTE: 2}
    findings.sort(key=lambda finding: (order[finding.severity],
                                       finding.check, finding.detail))
    return findings
