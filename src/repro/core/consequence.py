"""Consequence classes — the building blocks of a risk norm.

Implements Sec. III-A / Fig. 3: "the severity/criticality dimension is
divided into a manageable number of discrete levels, or consequence
classes, where each class receives a total norm frequency telling how
often, at most, this kind of consequence is allowed to occur."

A :class:`ConsequenceClass` pairs a severity level with an acceptable
frequency budget.  A :class:`ConsequenceScale` is the ordered, validated
collection of classes forming the x-axis of Fig. 3 (``v_Q1 … v_S3`` in the
paper's notation).  The paper does not fix the number of classes ("it can
be defined as deemed appropriate"), so the scale is fully caller-defined;
:func:`example_scale` reconstructs the 3 quality + 3 safety example of
Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .quantities import Frequency, FrequencyUnit, PER_HOUR
from .severity import SeverityDomain, UnifiedSeverity

__all__ = [
    "ConsequenceClass",
    "ConsequenceScale",
    "example_scale",
    "QUALITY_CLASS_IDS",
    "SAFETY_CLASS_IDS",
]

QUALITY_CLASS_IDS: Tuple[str, ...] = ("vQ1", "vQ2", "vQ3")
SAFETY_CLASS_IDS: Tuple[str, ...] = ("vS1", "vS2", "vS3")


@dataclass(frozen=True)
class ConsequenceClass:
    """One discrete consequence level ``v`` with its acceptable budget.

    Attributes
    ----------
    class_id:
        Short stable identifier, e.g. ``"vS2"``.  Used as the key in
        allocations and verification reports.
    severity:
        Position on the unified severity axis (Fig. 2).
    budget:
        ``f_v^(acceptable)`` — the strict upper limit on the total
        frequency of consequences of this class (Eq. 1 right-hand side).
    description:
        Human-readable elaboration for safety-case documents.
    """

    class_id: str
    severity: UnifiedSeverity
    budget: Frequency
    description: str = ""

    def __post_init__(self) -> None:
        if not self.class_id or not self.class_id.strip():
            raise ValueError("class_id must be non-empty")

    @property
    def domain(self) -> SeverityDomain:
        """Quality or safety — inherited from the severity level."""
        return self.severity.domain

    def with_budget(self, budget: Frequency) -> "ConsequenceClass":
        """A copy of this class with a different acceptable frequency."""
        return ConsequenceClass(self.class_id, self.severity, budget, self.description)

    def __str__(self) -> str:
        return f"{self.class_id}[{self.severity.name}] ≤ {self.budget}"


class ConsequenceScale:
    """An ordered set of consequence classes — the x-axis of Fig. 3.

    Invariants enforced at construction:

    * class ids are unique;
    * classes are ordered by strictly non-decreasing severity;
    * budgets are *monotonically non-increasing* with severity — a norm
      that tolerated fatal outcomes more often than scratches would be
      incoherent (Fig. 2: acceptable frequency falls as severity rises);
    * all budgets share one exposure base.
    """

    def __init__(self, classes: Sequence[ConsequenceClass]):
        if not classes:
            raise ValueError("a consequence scale needs at least one class")
        ids = [c.class_id for c in classes]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate consequence class ids: {dupes}")
        ordered = sorted(classes, key=lambda c: (c.severity, c.class_id))
        unit = ordered[0].budget.unit
        for cls in ordered[1:]:
            if not cls.budget.unit.compatible_with(unit):
                raise ValueError(
                    f"class {cls.class_id} budget unit {cls.budget.unit} differs "
                    f"from scale unit {unit}"
                )
        for lower, higher in zip(ordered, ordered[1:]):
            if higher.severity > lower.severity and higher.budget > lower.budget:
                raise ValueError(
                    "budgets must not increase with severity: "
                    f"{higher.class_id} ({higher.budget}) exceeds "
                    f"{lower.class_id} ({lower.budget})"
                )
        self._classes: Tuple[ConsequenceClass, ...] = tuple(ordered)
        self._by_id: Dict[str, ConsequenceClass] = {c.class_id: c for c in ordered}
        self._unit = FrequencyUnit(unit.base)

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[ConsequenceClass]:
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, class_id: object) -> bool:
        return class_id in self._by_id

    def __getitem__(self, class_id: str) -> ConsequenceClass:
        try:
            return self._by_id[class_id]
        except KeyError:
            raise KeyError(
                f"unknown consequence class {class_id!r}; "
                f"known: {sorted(self._by_id)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsequenceScale):
            return NotImplemented
        return self._classes == other._classes

    def __repr__(self) -> str:
        return f"ConsequenceScale({list(self._classes)!r})"

    # -- queries -------------------------------------------------------------

    @property
    def unit(self) -> FrequencyUnit:
        """The shared exposure unit of all budgets."""
        return self._unit

    @property
    def class_ids(self) -> Tuple[str, ...]:
        return tuple(c.class_id for c in self._classes)

    def budget(self, class_id: str) -> Frequency:
        """``f_v^(acceptable)`` for the named class."""
        return self[class_id].budget

    def budgets(self) -> Dict[str, Frequency]:
        """All budgets keyed by class id."""
        return {c.class_id: c.budget for c in self._classes}

    def quality_classes(self) -> Tuple[ConsequenceClass, ...]:
        """The quality (left) half of the axis."""
        return tuple(c for c in self._classes if c.domain is SeverityDomain.QUALITY)

    def safety_classes(self) -> Tuple[ConsequenceClass, ...]:
        """The safety (right) half of the axis."""
        return tuple(c for c in self._classes if c.domain is SeverityDomain.SAFETY)

    def by_severity(self, severity: UnifiedSeverity) -> Tuple[ConsequenceClass, ...]:
        """All classes at exactly the given severity level."""
        return tuple(c for c in self._classes if c.severity is severity)

    def most_severe(self) -> ConsequenceClass:
        return self._classes[-1]

    def least_severe(self) -> ConsequenceClass:
        return self._classes[0]

    # -- derivation ----------------------------------------------------------

    def scaled(self, factor: float) -> "ConsequenceScale":
        """A uniformly tightened (factor < 1) or relaxed (> 1) scale.

        Used for sensitivity sweeps: "what if society demands 10× stricter
        norms" is ``scale.scaled(0.1)``.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ConsequenceScale([c.with_budget(c.budget * factor) for c in self._classes])

    def with_budgets(self, budgets: Mapping[str, Frequency]) -> "ConsequenceScale":
        """A copy with the given classes' budgets replaced."""
        unknown = set(budgets) - set(self._by_id)
        if unknown:
            raise KeyError(f"unknown consequence class ids: {sorted(unknown)}")
        return ConsequenceScale([
            c.with_budget(budgets[c.class_id]) if c.class_id in budgets else c
            for c in self._classes
        ])


def example_scale(unit: Optional[FrequencyUnit] = None,
                  anchor: Optional[Frequency] = None,
                  decades_per_class: float = 1.0) -> ConsequenceScale:
    """The 3-quality + 3-safety example scale of Fig. 3.

    Budgets descend geometrically from ``anchor`` (the most tolerable,
    quality-only class ``vQ1``) by ``decades_per_class`` per step.  All
    numbers are synthetic — the paper's footnote 3 insists its examples
    "should not be used in a real safety case", and so do we.

    Parameters
    ----------
    unit:
        Exposure base of the budgets (default: per operating hour).
    anchor:
        Budget of ``vQ1``.  Default: 1e-2 per hour — a mildly scary moment
        roughly once per hundred operating hours.
    decades_per_class:
        Order-of-magnitude drop per severity step.
    """
    if unit is None:
        unit = PER_HOUR
    if anchor is None:
        anchor = Frequency(1e-2, unit)
    severities = [
        UnifiedSeverity.PERCEIVED_SAFETY,
        UnifiedSeverity.EMERGENCY_MANOEUVRE,
        UnifiedSeverity.MATERIAL_DAMAGE,
        UnifiedSeverity.LIGHT_INJURY,
        UnifiedSeverity.SEVERE_INJURY,
        UnifiedSeverity.LIFE_THREATENING,
    ]
    ids = list(QUALITY_CLASS_IDS + SAFETY_CLASS_IDS)
    classes: List[ConsequenceClass] = []
    rate = anchor.rate
    for class_id, severity in zip(ids, severities):
        classes.append(ConsequenceClass(
            class_id=class_id,
            severity=severity,
            budget=Frequency(rate, unit),
            description=severity.example,
        ))
        rate *= 10.0 ** (-decades_per_class)
    return ConsequenceScale(classes)
