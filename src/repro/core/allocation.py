"""Budget allocation: distributing class budgets over incident types.

Implements the allocation process of Sec. III-B: "we can regard
determination of the incident types and their integrity attributes (the
limit frequencies) as an allocation process, where we must make sure that
the budget we set on each I must be such that the total allowed frequency
is fulfilled for all v" — i.e. find per-type budgets ``f_I`` such that
Eq. 1 holds for every consequence class ``j``::

    Σ_k  split_k[j] · f_{I_k}  ≤  f_{v_j}^(acceptable)

Three strategies are provided, from simplest to most capable:

* :func:`allocate_uniform_scaling` — scale a reference budget vector by
  the largest feasible ``t`` (closed form, no optimiser);
* :func:`allocate_proportional` — split each class budget among the types
  touching it in proportion to weights, then take each type's tightest
  implied budget (feasible by construction);
* :func:`allocate_lp` — linear programming (``scipy.optimize.linprog``),
  maximising total weighted budget or the minimum budget, under Eq. 1 and
  arbitrary :class:`~repro.core.ethics.EthicalConstraint` rows.

The result is an immutable :class:`Allocation` carrying budgets, per-class
loads and slacks (the stacked bars of Figs. 3 and 5), and reallocation
helpers for the paper's "improve f_I2 ⇒ freed budget elsewhere ⇒ tougher
SG for I2" experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from .ethics import EthicalConstraint
from .incident import IncidentType
from .quantities import Frequency, sum_frequencies
from .risk_norm import QuantitativeRiskNorm

__all__ = [
    "Allocation",
    "AllocationError",
    "InfeasibleAllocationError",
    "allocate_uniform_scaling",
    "allocate_proportional",
    "allocate_lp",
    "LpObjective",
]


class AllocationError(ValueError):
    """Raised for malformed allocation problems."""


class InfeasibleAllocationError(AllocationError):
    """Raised when no budget vector can satisfy Eq. 1 and the constraints.

    ``diagnosis`` describes the conflict — which class budgets are
    overcommitted by constraint floors, or which constraints clash.
    """

    def __init__(self, message: str, diagnosis: Sequence[str] = ()):  # noqa: D107
        super().__init__(message)
        self.diagnosis: Tuple[str, ...] = tuple(diagnosis)


def _validate_problem(norm: QuantitativeRiskNorm,
                      types: Sequence[IncidentType]) -> None:
    if not types:
        raise AllocationError("allocation needs at least one incident type")
    ids = [t.type_id for t in types]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise AllocationError(f"duplicate incident type ids: {dupes}")
    for itype in types:
        itype.split.validate_against(norm.scale)


def _split_matrix(norm: QuantitativeRiskNorm,
                  types: Sequence[IncidentType]) -> np.ndarray:
    """Matrix ``S`` with ``S[j, k] = split_k[class_j]`` (classes × types)."""
    matrix = np.zeros((len(norm.class_ids), len(types)))
    for j, class_id in enumerate(norm.class_ids):
        for k, itype in enumerate(types):
            matrix[j, k] = itype.split.fraction(class_id)
    return matrix


class Allocation:
    """An immutable assignment of frequency budgets to incident types.

    The central data artefact between the norm and the safety goals: Fig. 5
    is exactly the :meth:`contribution_matrix` of such an allocation, and
    each safety goal's integrity attribute is one of its budgets.
    """

    def __init__(self, norm: QuantitativeRiskNorm,
                 types: Sequence[IncidentType],
                 budgets: Mapping[str, Frequency],
                 *, strategy: str = "manual"):
        _validate_problem(norm, types)
        missing = {t.type_id for t in types} - set(budgets)
        if missing:
            raise AllocationError(f"budgets missing for incident types: {sorted(missing)}")
        extra = set(budgets) - {t.type_id for t in types}
        if extra:
            raise AllocationError(f"budgets given for unknown types: {sorted(extra)}")
        for type_id, budget in budgets.items():
            if not budget.unit.compatible_with(norm.unit):
                raise AllocationError(
                    f"budget for {type_id} is {budget.unit} but norm is {norm.unit}")
        self.norm = norm
        self.types: Tuple[IncidentType, ...] = tuple(types)
        self._budgets: Dict[str, Frequency] = {
            t.type_id: budgets[t.type_id] for t in self.types}
        self.strategy = strategy

    # -- basic queries -------------------------------------------------------

    @property
    def type_ids(self) -> Tuple[str, ...]:
        return tuple(t.type_id for t in self.types)

    def budget(self, type_id: str) -> Frequency:
        """The allocated ``f_I`` for one incident type."""
        try:
            return self._budgets[type_id]
        except KeyError:
            raise KeyError(
                f"unknown incident type {type_id!r}; known: {sorted(self._budgets)}"
            ) from None

    def budgets(self) -> Dict[str, Frequency]:
        return dict(self._budgets)

    def type_by_id(self, type_id: str) -> IncidentType:
        for itype in self.types:
            if itype.type_id == type_id:
                return itype
        raise KeyError(f"unknown incident type {type_id!r}")

    # -- Eq. 1 arithmetic ------------------------------------------------------

    def contribution(self, class_id: str, type_id: str) -> Frequency:
        """``f_{v_j, I_k}`` — one term of Eq. 1's left-hand side."""
        itype = self.type_by_id(type_id)
        return self.budget(type_id) * itype.split.fraction(class_id)

    def class_load(self, class_id: str) -> Frequency:
        """Total committed frequency for one consequence class."""
        if class_id not in self.norm.scale:
            raise KeyError(f"unknown consequence class {class_id!r}")
        return sum_frequencies(
            (self.contribution(class_id, t.type_id) for t in self.types),
            self.norm.unit,
        )

    def class_loads(self) -> Dict[str, Frequency]:
        return {cid: self.class_load(cid) for cid in self.norm.class_ids}

    def slack(self, class_id: str) -> Frequency:
        """Unused budget of a class: ``f_v^(acceptable) − load``.

        Negative slack is clamped by ``Frequency`` non-negativity; use
        :meth:`violations` to see overcommitted classes.
        """
        budget = self.norm.budget(class_id)
        load = self.class_load(class_id)
        if load > budget:
            return Frequency.zero(self.norm.unit)
        return budget - load

    def utilisation(self, class_id: str) -> float:
        """Load / budget for a class (may exceed 1 when infeasible)."""
        budget = self.norm.budget(class_id)
        if budget.is_zero():
            return math.inf if self.class_load(class_id).rate > 0 else 0.0
        return self.class_load(class_id) / budget

    def violations(self, *, rel_tol: float = 1e-9) -> Dict[str, Frequency]:
        """Classes whose load exceeds budget, with the excess frequency."""
        out: Dict[str, Frequency] = {}
        for class_id in self.norm.class_ids:
            load = self.class_load(class_id)
            budget = self.norm.budget(class_id)
            if not load.within(budget, rel_tol=rel_tol):
                out[class_id] = load - budget
        return out

    def is_feasible(self, *, rel_tol: float = 1e-9) -> bool:
        """Whether Eq. 1 holds for every consequence class."""
        return not self.violations(rel_tol=rel_tol)

    def contribution_matrix(self) -> Tuple[np.ndarray, Tuple[str, ...], Tuple[str, ...]]:
        """``(M, class_ids, type_ids)`` with ``M[j, k] = f_{v_j, I_k}``.

        This is the content of Fig. 5's right-hand diagram — each column a
        consequence class's stacked incident contributions.
        """
        class_ids = self.norm.class_ids
        type_ids = self.type_ids
        matrix = np.zeros((len(class_ids), len(type_ids)))
        for j, class_id in enumerate(class_ids):
            for k, type_id in enumerate(type_ids):
                matrix[j, k] = self.contribution(class_id, type_id).rate
        return matrix, class_ids, type_ids

    def total_budget(self) -> Frequency:
        """Sum of all incident-type budgets (total tolerated incident rate)."""
        return sum_frequencies(self._budgets.values(), self.norm.unit)

    # -- derivation ------------------------------------------------------------

    def with_budget(self, type_id: str, budget: Frequency) -> "Allocation":
        """A copy with one type's budget replaced (e.g. after improvement)."""
        self.type_by_id(type_id)
        updated = dict(self._budgets)
        updated[type_id] = budget
        return Allocation(self.norm, self.types, updated,
                          strategy=f"{self.strategy}+manual({type_id})")

    def with_improved_type(self, type_id: str, achieved: Frequency,
                           *, redistribute: bool = True,
                           constraints: Sequence[EthicalConstraint] = (),
                           ) -> "Allocation":
        """The Fig. 5 reallocation experiment.

        The implementation has improved incident type ``type_id`` so its
        frequency is now at most ``achieved`` (below its old budget).  The
        type's budget is tightened to ``achieved`` — "an SG ... which will
        be more challenging for the implementation" — and, when
        ``redistribute`` is true, the freed class budget is re-offered to
        the remaining types by re-running the LP with this type pinned.
        """
        old = self.budget(type_id)
        if achieved > old:
            raise AllocationError(
                f"improved frequency {achieved} exceeds current budget {old}; "
                "improvement must tighten, not relax")
        pinned = self.with_budget(type_id, achieved)
        if not redistribute:
            return pinned
        from .ethics import BudgetCeiling, BudgetFloor
        pin = [BudgetFloor(type_id, achieved), BudgetCeiling(type_id, achieved)]
        return allocate_lp(self.norm, self.types,
                           objective=LpObjective.MAX_TOTAL,
                           constraints=list(constraints) + pin)

    def describe(self) -> str:
        """Multi-line human-readable summary (budgets, loads, slacks)."""
        lines = [f"Allocation[{self.strategy}] under norm {self.norm.name!r}"]
        for itype in self.types:
            lines.append(f"  {itype.describe()}  f = {self.budget(itype.type_id)}")
        for class_id in self.norm.class_ids:
            lines.append(
                f"  {class_id}: load {self.class_load(class_id)} / "
                f"budget {self.norm.budget(class_id)} "
                f"(util {self.utilisation(class_id):.1%})")
        return "\n".join(lines)


# -- strategies ------------------------------------------------------------------


def _reference_weights(types: Sequence[IncidentType],
                       weights: Optional[Mapping[str, float]]) -> np.ndarray:
    if weights is None:
        return np.ones(len(types))
    vector = np.empty(len(types))
    for k, itype in enumerate(types):
        try:
            weight = float(weights[itype.type_id])
        except KeyError:
            raise AllocationError(
                f"weight missing for incident type {itype.type_id!r}") from None
        if weight <= 0 or not math.isfinite(weight):
            raise AllocationError(
                f"weight for {itype.type_id!r} must be positive and finite")
        vector[k] = weight
    return vector


def allocate_uniform_scaling(norm: QuantitativeRiskNorm,
                             types: Sequence[IncidentType],
                             *, weights: Optional[Mapping[str, float]] = None,
                             ) -> Allocation:
    """Scale a reference budget shape to the largest feasible size.

    With reference weights ``w`` (default: uniform), set ``f_k = t·w_k``
    with the maximal ``t`` keeping Eq. 1: ``t = min_j budget_j / (S w)_j``
    over classes with nonzero induced load.  Exactly one class ends up
    saturated (the binding class); this is the simplest defensible
    allocation and the baseline for the LP strategies.
    """
    _validate_problem(norm, types)
    w = _reference_weights(types, weights)
    S = _split_matrix(norm, types)
    induced = S @ w
    budgets = np.array([norm.budget(cid).rate for cid in norm.class_ids])
    with np.errstate(divide="ignore"):
        ratios = np.where(induced > 0, budgets / np.where(induced > 0, induced, 1.0),
                          np.inf)
    t = float(np.min(ratios))
    if not math.isfinite(t):
        raise AllocationError(
            "no incident type contributes to any consequence class; "
            "allocation is unconstrained and meaningless")
    final = {itype.type_id: Frequency(t * w[k], norm.unit)
             for k, itype in enumerate(types)}
    return Allocation(norm, types, final, strategy="uniform-scaling")


def allocate_proportional(norm: QuantitativeRiskNorm,
                          types: Sequence[IncidentType],
                          *, weights: Optional[Mapping[str, float]] = None,
                          ) -> Allocation:
    """Per-class proportional shares, then each type's tightest implication.

    Each class budget is divided among the types touching that class in
    proportion to their weights; a type touching several classes gets the
    minimum budget its shares imply.  Feasible by construction, and unlike
    uniform scaling it lets unrelated parts of the norm saturate
    independently (quality types are not throttled by the fatality class).
    """
    _validate_problem(norm, types)
    w = _reference_weights(types, weights)
    class_ids = norm.class_ids
    shares_total = {
        cid: sum(w[k] for k, itype in enumerate(types)
                 if itype.split.fraction(cid) > 0)
        for cid in class_ids
    }
    final: Dict[str, Frequency] = {}
    for k, itype in enumerate(types):
        implied: List[float] = []
        for cid in class_ids:
            fraction = itype.split.fraction(cid)
            if fraction <= 0:
                continue
            share = w[k] / shares_total[cid]
            implied.append(share * norm.budget(cid).rate / fraction)
        if not implied:
            raise AllocationError(
                f"incident type {itype.type_id!r} contributes to no class")
        final[itype.type_id] = Frequency(min(implied), norm.unit)
    return Allocation(norm, types, final, strategy="proportional")


class LpObjective:
    """Objectives for :func:`allocate_lp`."""

    MAX_TOTAL = "max-total"
    """Maximise Σ w_k f_k — the most permissive feasible allocation."""

    MAX_MIN = "max-min"
    """Maximise min_k f_k / w_k — egalitarian across types."""


def allocate_lp(norm: QuantitativeRiskNorm,
                types: Sequence[IncidentType],
                *, objective: str = LpObjective.MAX_TOTAL,
                weights: Optional[Mapping[str, float]] = None,
                constraints: Sequence[EthicalConstraint] = (),
                ) -> Allocation:
    """Optimal allocation by linear programming.

    Decision variables are the per-type budgets ``f_k ≥ 0`` (plus an
    auxiliary ``t`` for the max-min objective).  Constraints are Eq. 1 per
    consequence class plus every ethical constraint's LP rows.  Raises
    :class:`InfeasibleAllocationError` with a diagnosis when the polytope
    is empty (e.g. floors that overcommit a class).

    Numerical note: safety budgets span many decades (1e-2 … 1e-8/h),
    far below solver feasibility tolerances.  Each variable is therefore
    rescaled by its stand-alone maximum budget (``min_j budget_j /
    split_kj``) so the solve happens over O(1) quantities, and every row
    is normalised to an O(1) right-hand side.
    """
    _validate_problem(norm, types)
    w = _reference_weights(types, weights)
    type_ids = [t.type_id for t in types]
    S = _split_matrix(norm, types)
    class_budgets = {cid: norm.budget(cid).rate for cid in norm.class_ids}
    budget_vec = np.array([class_budgets[cid] for cid in norm.class_ids])
    splits = {t.type_id: {cid: t.split.fraction(cid) for cid in norm.class_ids}
              for t in types}

    n = len(types)
    # Per-variable scale: the largest budget type k could hold alone.
    scale = np.empty(n)
    for k, itype in enumerate(types):
        implied = [class_budgets[cid] / fraction
                   for cid, fraction in splits[itype.type_id].items()
                   if fraction > 0 and class_budgets[cid] > 0]
        if not implied:
            zero_touch = [cid for cid, fraction in splits[itype.type_id].items()
                          if fraction > 0]
            if zero_touch:
                # Touches only zero-budget classes: the budget must be 0.
                scale[k] = 1.0
            else:
                raise AllocationError(
                    f"incident type {itype.type_id!r} contributes to no class")
        else:
            scale[k] = min(implied)

    rows: List[np.ndarray] = []
    bounds_ub: List[float] = []
    for j in range(S.shape[0]):
        row = S[j] * scale
        bound = budget_vec[j]
        magnitude = max(bound, float(np.max(np.abs(row))), 1e-300)
        rows.append(row / magnitude)
        bounds_ub.append(bound / magnitude)
    for constraint in constraints:
        extra_rows, extra_b = constraint.lp_rows(type_ids, class_budgets, splits)
        for raw_row, raw_bound in zip(extra_rows, extra_b):
            row = np.asarray(raw_row, dtype=float) * scale
            magnitude = max(abs(raw_bound), float(np.max(np.abs(row))), 1e-300)
            rows.append(row / magnitude)
            bounds_ub.append(raw_bound / magnitude)

    if objective == LpObjective.MAX_TOTAL:
        cost_raw = -(w * scale)
        cost = cost_raw / max(float(np.max(np.abs(cost_raw))), 1e-300)
        A_ub = np.vstack(rows)
        b_ub = np.array(bounds_ub)
        var_bounds = [(0.0, None)] * n
    elif objective == LpObjective.MAX_MIN:
        # Variables [x_1..x_n, t]; maximise t with f_k = scale_k x_k >= w_k t.
        cost = np.zeros(n + 1)
        cost[-1] = -1.0
        padded = [np.concatenate([row, [0.0]]) for row in rows]
        reference = float(np.min(scale / w))
        for k in range(n):
            row = np.zeros(n + 1)
            row[k] = -scale[k] / (w[k] * reference)
            row[-1] = 1.0
            padded.append(row)
            bounds_ub.append(0.0)
        A_ub = np.vstack(padded)
        b_ub = np.array(bounds_ub)
        var_bounds = [(0.0, None)] * n + [(0.0, None)]
    else:
        raise AllocationError(f"unknown LP objective {objective!r}")

    result = linprog(cost, A_ub=A_ub, b_ub=b_ub, bounds=var_bounds,
                     method="highs")
    if not result.success:
        diagnosis = _diagnose_infeasibility(norm, types, constraints,
                                            class_budgets, splits)
        raise InfeasibleAllocationError(
            f"LP allocation failed: {result.message}", diagnosis)
    values = result.x[:n] * scale
    final = {type_ids[k]: Frequency(max(float(values[k]), 0.0), norm.unit)
             for k in range(n)}
    allocation = Allocation(norm, types, final, strategy=f"lp:{objective}")
    # Solver tolerances can leave loads a hair over a budget after
    # unscaling; shave uniformly rather than return an infeasible result.
    worst = max((allocation.utilisation(cid) for cid in norm.class_ids),
                default=0.0)
    if worst > 1.0:
        shrink = 1.0 / worst
        final = {tid: budget * shrink for tid, budget in final.items()}
        allocation = Allocation(norm, types, final,
                                strategy=f"lp:{objective}")
    return allocation


def _diagnose_infeasibility(norm: QuantitativeRiskNorm,
                            types: Sequence[IncidentType],
                            constraints: Sequence[EthicalConstraint],
                            class_budgets: Mapping[str, float],
                            splits: Mapping[str, Mapping[str, float]],
                            ) -> List[str]:
    """Explain why no feasible budget vector exists.

    The only way Eq. 1 alone can be infeasible is via constraint floors
    (budgets are otherwise free to shrink to zero), so the diagnosis
    computes each class's minimum induced load under the floors and
    reports the overcommitted classes.
    """
    from .ethics import BudgetFloor

    floors: Dict[str, float] = {}
    for constraint in constraints:
        if isinstance(constraint, BudgetFloor):
            floors[constraint.type_id] = max(
                floors.get(constraint.type_id, 0.0), constraint.minimum.rate)
    notes: List[str] = []
    for class_id, budget in class_budgets.items():
        floor_load = sum(
            floors.get(type_id, 0.0) * splits[type_id].get(class_id, 0.0)
            for type_id in splits)
        if floor_load > budget * (1 + 1e-9):
            notes.append(
                f"class {class_id}: constraint floors force load "
                f"{floor_load:.3g} > budget {budget:.3g}")
    if not notes:
        notes.append(
            "Eq. 1 alone is satisfiable (zero budgets); the ethical "
            "constraints are jointly contradictory")
    return notes
