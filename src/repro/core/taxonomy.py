"""MECE incident classification trees.

Implements Sec. III-B / Fig. 4.  The QRN approach replaces the HARA's open
list of hazards×situations with a *classification* of incidents, and gains
its completeness argument from the classification being **MECE** — mutually
exclusive and collectively exhaustive — "so that any possible conceivable
incident falls into one of the classes".

Completeness must be *checkable*, not asserted, so the tree here is built
from machine-verifiable splits over a declared attribute universe:

* a :class:`Universe` names the attributes an incident description has
  (categorical sets and continuous ranges);
* every internal :class:`ClassificationNode` splits on exactly one
  attribute, and the split is validated to partition that attribute's
  remaining domain (pairwise disjoint, jointly covering);
* hence every leaf corresponds to a product region, and the leaf regions
  partition the universe — MECE *by construction*, with
  :meth:`IncidentTaxonomy.mece_certificate` producing the audit trail and a
  randomised cross-check that classifies sampled incidents.

The Fig. 4 example tree (Ego↔road-user / Ego↔non-human / induced incidents
among third parties) is reconstructed by :func:`figure4_taxonomy`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from enum import Enum
from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

import numpy as np

__all__ = [
    "ActorClass",
    "CategoricalAttribute",
    "ContinuousAttribute",
    "Universe",
    "Region",
    "CategoryBranch",
    "IntervalBranch",
    "ClassificationNode",
    "Leaf",
    "IncidentTaxonomy",
    "MeceCertificate",
    "MeceViolation",
    "TaxonomyError",
    "figure4_taxonomy",
    "ego_vru_universe",
]


class TaxonomyError(ValueError):
    """Raised when a tree fails structural or MECE validation."""


class ActorClass(Enum):
    """Traffic actor categories used in the Fig. 4 example classification."""

    EGO = "ego"
    CAR = "car"
    TRUCK = "truck"
    VRU = "vru"              #: vulnerable road user (pedestrian, cyclist, ...)
    ANIMAL = "animal"        #: the paper's elk
    STATIC_OBJECT = "static_object"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CategoricalAttribute:
    """A finite-domain attribute of an incident description."""

    name: str
    domain: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.domain:
            raise TaxonomyError(f"attribute {self.name!r} has an empty domain")


@dataclass(frozen=True)
class ContinuousAttribute:
    """A bounded real-valued attribute, domain ``[low, high)``.

    Tolerance margins (impact speed, distance) are intervals over these.
    The upper bound is the edge of what the classification claims to cover;
    exhaustiveness is proven relative to it, so it should be chosen
    generously (e.g. max credible Δv inside the ODD).
    """

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise TaxonomyError(f"attribute {self.name!r} bounds must be finite")
        if self.low >= self.high:
            raise TaxonomyError(
                f"attribute {self.name!r} has empty domain [{self.low}, {self.high})"
            )


Attribute = Union[CategoricalAttribute, ContinuousAttribute]


class Universe:
    """The declared space of all conceivable incidents.

    The exhaustiveness half of MECE is only meaningful relative to a stated
    universe; this object is that statement.  An incident description is a
    mapping from attribute name to a category label or a float.
    """

    def __init__(self, attributes: Sequence[Attribute]):
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise TaxonomyError("duplicate attribute names in universe")
        self._attributes: Dict[str, Attribute] = {a.name: a for a in attributes}

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._attributes)

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError:
            raise KeyError(
                f"unknown attribute {name!r}; known: {sorted(self._attributes)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def validate_point(self, point: Mapping[str, object]) -> None:
        """Check a point lies inside the universe; raise ``ValueError`` if not."""
        missing = set(self._attributes) - set(point)
        if missing:
            raise ValueError(f"point missing attributes: {sorted(missing)}")
        for name, attr in self._attributes.items():
            value = point[name]
            if isinstance(attr, CategoricalAttribute):
                if value not in attr.domain:
                    raise ValueError(
                        f"{name}={value!r} outside domain {sorted(attr.domain)}"
                    )
            else:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{name} must be numeric, got {value!r}")
                if not (attr.low <= float(value) < attr.high):
                    raise ValueError(
                        f"{name}={value} outside [{attr.low}, {attr.high})"
                    )

    def sample(self, rng: np.random.Generator, n: int) -> List[Dict[str, object]]:
        """Draw ``n`` uniform points — used for randomised MECE cross-checks."""
        points: List[Dict[str, object]] = []
        for _ in range(n):
            point: Dict[str, object] = {}
            for name, attr in self._attributes.items():
                if isinstance(attr, CategoricalAttribute):
                    point[name] = str(rng.choice(sorted(attr.domain)))
                else:
                    point[name] = float(rng.uniform(attr.low, attr.high))
            points.append(point)
        return points

    def boundary_points(self) -> List[Dict[str, object]]:
        """A deterministic grid hitting every category and interval edge.

        Random sampling almost never lands exactly on a split boundary,
        which is exactly where off-by-one (``<`` vs ``<=``) exclusivity
        bugs live; this grid does.
        """
        axes: List[List[object]] = []
        names: List[str] = []
        for name, attr in self._attributes.items():
            names.append(name)
            if isinstance(attr, CategoricalAttribute):
                axes.append(sorted(attr.domain))
            else:
                span = attr.high - attr.low
                candidates = {attr.low, attr.low + span / 3.0,
                              attr.low + 2.0 * span / 3.0,
                              math.nextafter(attr.high, attr.low)}
                axes.append(sorted(candidates))
        return [dict(zip(names, combo)) for combo in itertools.product(*axes)]


# -- branch matchers ---------------------------------------------------------


@dataclass(frozen=True)
class CategoryBranch:
    """A branch of a categorical split: matches a subset of categories."""

    categories: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.categories:
            raise TaxonomyError("a category branch must match at least one category")

    def matches(self, value: object) -> bool:
        return value in self.categories

    def label(self) -> str:
        return "|".join(sorted(self.categories))


@dataclass(frozen=True)
class IntervalBranch:
    """A branch of a continuous split: matches ``[low, high)``.

    Half-open intervals make exclusivity at shared boundaries exact — the
    paper's "below or above 10 km/h" bands are ``[0, 10)`` and ``[10, 70)``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise TaxonomyError(f"empty interval [{self.low}, {self.high})")

    def matches(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= float(value) < self.high

    def label(self) -> str:
        return f"[{self.low:g},{self.high:g})"


Branch = Union[CategoryBranch, IntervalBranch]


# -- tree nodes ---------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    """A terminal class of the taxonomy — one incident type candidate.

    ``region`` is the product of constraints accumulated from the root;
    ``name`` is the human identifier (e.g. ``"Ego<->VRU"``).
    """

    name: str
    region: "Region"
    description: str = ""


@dataclass(frozen=True)
class Region:
    """A product region of the universe: per-attribute constraints.

    Attributes not mentioned are unconstrained.  Regions are how leaves
    state, checkably, which incidents they own.
    """

    constraints: Tuple[Tuple[str, Branch], ...] = ()

    def constrain(self, attribute: str, branch: Branch) -> "Region":
        """This region further restricted on ``attribute`` by ``branch``."""
        existing = dict(self.constraints)
        if attribute in existing:
            prior = existing[attribute]
            merged = _intersect_branches(prior, branch)
            if merged is None:
                raise TaxonomyError(
                    f"re-splitting {attribute!r} with disjoint constraint "
                    f"{branch.label()} under {prior.label()}"
                )
            existing[attribute] = merged
        else:
            existing[attribute] = branch
        return Region(tuple(sorted(existing.items())))

    def contains(self, point: Mapping[str, object]) -> bool:
        return all(branch.matches(point[name]) for name, branch in self.constraints)

    def constraint_on(self, attribute: str) -> Optional[Branch]:
        return dict(self.constraints).get(attribute)

    def label(self) -> str:
        if not self.constraints:
            return "⊤"
        return " & ".join(f"{name}∈{branch.label()}" for name, branch in self.constraints)


def _intersect_branches(a: Branch, b: Branch) -> Optional[Branch]:
    """Intersection of two branches on the same attribute, or ``None`` if empty."""
    if isinstance(a, CategoryBranch) and isinstance(b, CategoryBranch):
        common = a.categories & b.categories
        return CategoryBranch(common) if common else None
    if isinstance(a, IntervalBranch) and isinstance(b, IntervalBranch):
        low, high = max(a.low, b.low), min(a.high, b.high)
        return IntervalBranch(low, high) if low < high else None
    raise TaxonomyError("cannot mix categorical and interval constraints on one attribute")


class ClassificationNode:
    """An internal node: a validated partition of one attribute.

    The constructor checks the *local* MECE property of the split —
    branches are pairwise disjoint and jointly cover the attribute's
    remaining domain under this node — so a fully built tree is MECE by
    induction.  Invalid splits fail fast at construction, not at audit.
    """

    def __init__(self, attribute: str,
                 branches: Sequence[Tuple[Branch, "ClassificationNode | Leaf | str"]],
                 *, universe: Universe, region: Optional[Region] = None):
        if len(branches) < 2:
            raise TaxonomyError(f"split on {attribute!r} needs at least two branches")
        self.attribute = attribute
        self.region = region if region is not None else Region()
        attr = universe[attribute]
        branch_objs = [b for b, _ in branches]
        _validate_partition(attr, self.region.constraint_on(attribute), branch_objs)
        self.children: List[Tuple[Branch, Union["ClassificationNode", Leaf]]] = []
        for branch, child in branches:
            child_region = self.region.constrain(attribute, branch)
            if isinstance(child, str):
                resolved: Union[ClassificationNode, Leaf] = Leaf(child, child_region)
            elif isinstance(child, Leaf):
                resolved = Leaf(child.name, child_region, child.description)
            else:
                child._rebase(child_region, universe)
                resolved = child
            self.children.append((branch, resolved))

    def _rebase(self, region: Region, universe: Universe) -> None:
        """Push an updated ancestor region down through this subtree."""
        rebuilt: List[Tuple[Branch, Union[ClassificationNode, Leaf]]] = []
        attr = universe[self.attribute]
        _validate_partition(attr, region.constraint_on(self.attribute),
                            [b for b, _ in self.children])
        for branch, child in self.children:
            child_region = region.constrain(self.attribute, branch)
            if isinstance(child, Leaf):
                rebuilt.append((branch, Leaf(child.name, child_region, child.description)))
            else:
                child._rebase(child_region, universe)
                rebuilt.append((branch, child))
        self.region = region
        self.children = rebuilt

    def classify(self, point: Mapping[str, object]) -> Leaf:
        value = point[self.attribute]
        for branch, child in self.children:
            if branch.matches(value):
                if isinstance(child, Leaf):
                    return child
                return child.classify(point)
        raise TaxonomyError(
            f"point escaped validated split on {self.attribute!r} "
            f"(value {value!r}) — universe/point mismatch"
        )

    def leaves(self) -> Iterator[Leaf]:
        for _, child in self.children:
            if isinstance(child, Leaf):
                yield child
            else:
                yield from child.leaves()


def _validate_partition(attr: Attribute, scope: Optional[Branch],
                        branches: Sequence[Branch]) -> None:
    """Check branches partition the attribute's domain restricted to ``scope``."""
    if isinstance(attr, CategoricalAttribute):
        domain = attr.domain if scope is None else attr.domain & scope.categories  # type: ignore[union-attr]
        cat_branches: List[CategoryBranch] = []
        for branch in branches:
            if not isinstance(branch, CategoryBranch):
                raise TaxonomyError(
                    f"attribute {attr.name!r} is categorical but got interval branch"
                )
            stray = branch.categories - domain
            if stray:
                raise TaxonomyError(
                    f"branch on {attr.name!r} references categories outside its "
                    f"scope: {sorted(stray)}"
                )
            cat_branches.append(branch)
        seen: set = set()
        for branch in cat_branches:
            overlap = seen & branch.categories
            if overlap:
                raise TaxonomyError(
                    f"branches on {attr.name!r} overlap on {sorted(overlap)} "
                    "(mutual exclusivity violated)"
                )
            seen |= branch.categories
        uncovered = domain - seen
        if uncovered:
            raise TaxonomyError(
                f"branches on {attr.name!r} do not cover {sorted(uncovered)} "
                "(collective exhaustiveness violated)"
            )
    else:
        low = attr.low if scope is None else max(attr.low, scope.low)  # type: ignore[union-attr]
        high = attr.high if scope is None else min(attr.high, scope.high)  # type: ignore[union-attr]
        intervals: List[IntervalBranch] = []
        for branch in branches:
            if not isinstance(branch, IntervalBranch):
                raise TaxonomyError(
                    f"attribute {attr.name!r} is continuous but got category branch"
                )
            if branch.low < low - 1e-12 or branch.high > high + 1e-12:
                raise TaxonomyError(
                    f"interval {branch.label()} on {attr.name!r} escapes scope "
                    f"[{low:g},{high:g})"
                )
            intervals.append(branch)
        intervals.sort(key=lambda b: b.low)
        for first, second in zip(intervals, intervals[1:]):
            if second.low < first.high - 1e-12:
                raise TaxonomyError(
                    f"intervals {first.label()} and {second.label()} on "
                    f"{attr.name!r} overlap (mutual exclusivity violated)"
                )
            if second.low > first.high + 1e-12:
                raise TaxonomyError(
                    f"gap ({first.high:g},{second.low:g}) on {attr.name!r} "
                    "uncovered (collective exhaustiveness violated)"
                )
        if abs(intervals[0].low - low) > 1e-12 or abs(intervals[-1].high - high) > 1e-12:
            raise TaxonomyError(
                f"intervals on {attr.name!r} cover [{intervals[0].low:g},"
                f"{intervals[-1].high:g}) but scope is [{low:g},{high:g}) "
                "(collective exhaustiveness violated)"
            )


# -- certificate ---------------------------------------------------------------


@dataclass(frozen=True)
class MeceViolation:
    """One detected violation of mutual exclusivity or exhaustiveness."""

    kind: str            #: "overlap" | "gap"
    detail: str
    point: Optional[Mapping[str, object]] = None


@dataclass(frozen=True)
class MeceCertificate:
    """The completeness evidence attached to a set of safety goals.

    ``structural_checks`` counts the per-split partition validations (which
    hold by construction); ``points_checked`` counts the boundary-grid and
    random cross-check points, each of which must land in exactly one leaf.
    An empty ``violations`` list is the certificate of Sec. III-B's
    "complete by definition" claim, now machine-checked.
    """

    taxonomy_name: str
    leaf_names: Tuple[str, ...]
    structural_checks: int
    points_checked: int
    violations: Tuple[MeceViolation, ...]

    @property
    def is_mece(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "MECE" if self.is_mece else f"{len(self.violations)} VIOLATION(S)"
        return (f"{self.taxonomy_name}: {len(self.leaf_names)} leaves, "
                f"{self.structural_checks} split validations, "
                f"{self.points_checked} points cross-checked → {status}")


class IncidentTaxonomy:
    """A complete classification tree over a declared universe (Fig. 4)."""

    def __init__(self, name: str, universe: Universe, root: ClassificationNode):
        self.name = name
        self.universe = universe
        self.root = root
        leaves = list(root.leaves())
        names = [leaf.name for leaf in leaves]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TaxonomyError(f"duplicate leaf names: {dupes}")
        self._leaves: Dict[str, Leaf] = {leaf.name: leaf for leaf in leaves}
        self._splits = _count_splits(root)

    @property
    def leaves(self) -> Tuple[Leaf, ...]:
        return tuple(self._leaves.values())

    @property
    def leaf_names(self) -> Tuple[str, ...]:
        return tuple(self._leaves)

    def leaf(self, name: str) -> Leaf:
        try:
            return self._leaves[name]
        except KeyError:
            raise KeyError(
                f"unknown leaf {name!r}; known: {sorted(self._leaves)}"
            ) from None

    def classify(self, point: Mapping[str, object]) -> Leaf:
        """Assign an incident description to its unique leaf."""
        self.universe.validate_point(point)
        return self.root.classify(point)

    def mece_certificate(self, *, rng: Optional[np.random.Generator] = None,
                         random_points: int = 2000) -> MeceCertificate:
        """Produce the completeness certificate.

        Structural partition checks already ran at construction; this
        re-verifies them empirically by classifying a deterministic
        boundary grid plus ``random_points`` uniform samples and checking
        each lands in exactly one leaf (via region membership, independent
        of the classify path).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        violations: List[MeceViolation] = []
        points = self.universe.boundary_points()
        points.extend(self.universe.sample(rng, random_points))
        for point in points:
            owners = [leaf.name for leaf in self._leaves.values()
                      if leaf.region.contains(point)]
            if len(owners) == 0:
                violations.append(MeceViolation("gap", "no leaf owns point", dict(point)))
            elif len(owners) > 1:
                violations.append(MeceViolation(
                    "overlap", f"leaves {owners} all own point", dict(point)))
            else:
                routed = self.root.classify(point)
                if routed.name != owners[0]:
                    violations.append(MeceViolation(
                        "overlap",
                        f"classify routed to {routed.name} but region owner is {owners[0]}",
                        dict(point)))
        return MeceCertificate(
            taxonomy_name=self.name,
            leaf_names=self.leaf_names,
            structural_checks=self._splits,
            points_checked=len(points),
            violations=tuple(violations),
        )

    def refine_leaf(self, leaf_name: str, attribute: str,
                    branches: Sequence[Tuple[Branch, "ClassificationNode | Leaf | str"]],
                    *, name: Optional[str] = None) -> "IncidentTaxonomy":
        """A new taxonomy with one leaf split into a validated sub-partition.

        This is how a classification evolves during development (Sec.
        III-B: choosing incident types is partly a design activity):
        start coarse, split a leaf when the refined requirements can
        exploit the distinction.  The split is validated against the
        leaf's accumulated region, so MECE is preserved by construction;
        the original taxonomy is untouched.
        """
        target = self.leaf(leaf_name)
        replacement = ClassificationNode(attribute, list(branches),
                                         universe=self.universe,
                                         region=target.region)
        new_root = _copy_with_replacement(self.root, leaf_name, replacement,
                                          self.universe)
        return IncidentTaxonomy(
            name if name is not None else f"{self.name} (refined)",
            self.universe, new_root)

    def render(self) -> str:
        """ASCII rendering of the tree (reproduces the shape of Fig. 4)."""
        lines: List[str] = [self.name]
        _render_node(self.root, lines, prefix="")
        return "\n".join(lines)


def _copy_with_replacement(node: ClassificationNode, leaf_name: str,
                           replacement: ClassificationNode,
                           universe: Universe) -> ClassificationNode:
    """Rebuild a tree with one named leaf swapped for a subtree.

    Fresh nodes are constructed throughout (construction re-validates and
    re-bases regions), so the source tree is never mutated.
    """
    children: List[Tuple[Branch, "ClassificationNode | Leaf"]] = []
    for branch, child in node.children:
        if isinstance(child, Leaf):
            if child.name == leaf_name:
                children.append((branch, replacement))
            else:
                children.append((branch, Leaf(child.name, child.region,
                                              child.description)))
        else:
            children.append((branch, _copy_with_replacement(
                child, leaf_name, replacement, universe)))
    return ClassificationNode(node.attribute, children, universe=universe,
                              region=node.region)


def _count_splits(node: ClassificationNode) -> int:
    total = 1
    for _, child in node.children:
        if isinstance(child, ClassificationNode):
            total += _count_splits(child)
    return total


def _render_node(node: ClassificationNode, lines: List[str], prefix: str) -> None:
    for index, (branch, child) in enumerate(node.children):
        last = index == len(node.children) - 1
        connector = "└─" if last else "├─"
        tag = f"{node.attribute}∈{branch.label()}"
        if isinstance(child, Leaf):
            lines.append(f"{prefix}{connector} {tag} → {child.name}")
        else:
            lines.append(f"{prefix}{connector} {tag}")
            _render_node(child, lines, prefix + ("   " if last else "│  "))


# -- the paper's example trees -------------------------------------------------


_ACTOR_CATEGORIES = frozenset(a.value for a in ActorClass if a is not ActorClass.EGO)


def figure4_taxonomy() -> IncidentTaxonomy:
    """Reconstruct the example incident classification of Fig. 4.

    Top split: is the ego vehicle itself involved, or is it (only) a
    causing factor in an incident among other road users ("induced")?
    Ego-involved incidents split by counterpart (road user vs non-human,
    then by concrete type); induced incidents split by the actor pair.
    """
    universe = Universe([
        CategoricalAttribute("involvement", frozenset({"ego_involved", "induced"})),
        CategoricalAttribute("counterpart", _ACTOR_CATEGORIES),
        CategoricalAttribute("induced_pair", frozenset({
            "car-road_user", "car-vru", "car-car", "car-truck", "car-non_human",
            "truck-road_user", "car-other", "other-other",
        })),
    ])

    def cat(*values: str) -> CategoryBranch:
        return CategoryBranch(frozenset(values))

    ego_side = ClassificationNode(
        "counterpart",
        [
            (cat("car"), "Ego<->Car"),
            (cat("truck"), "Ego<->Truck"),
            (cat("vru"), "Ego<->VRU"),
            (cat("other"), "Ego<->OtherRU"),
            (cat("animal"), "Ego<->Animal"),
            (cat("static_object"), "Ego<->StaticObject"),
        ],
        universe=universe,
    )
    induced_side = ClassificationNode(
        "induced_pair",
        [
            (cat("car-vru"), "Induced:Car<->VRU"),
            (cat("car-car"), "Induced:Car<->Car"),
            (cat("car-truck"), "Induced:Car<->Truck"),
            (cat("car-road_user"), "Induced:Car<->RoadUser"),
            (cat("car-non_human"), "Induced:Car<->NonHuman"),
            (cat("truck-road_user"), "Induced:Truck<->RoadUser"),
            (cat("car-other"), "Induced:Car<->Other"),
            (cat("other-other"), "Induced:Other<->Other"),
        ],
        universe=universe,
    )
    root = ClassificationNode(
        "involvement",
        [
            (cat("ego_involved"), ego_side),
            (cat("induced"), induced_side),
        ],
        universe=universe,
    )
    return IncidentTaxonomy("Incident classification (Fig. 4)", universe, root)


def ego_vru_universe(max_delta_v_kmh: float = 70.0,
                     max_distance_m: float = 50.0) -> Universe:
    """Universe for the Ego↔VRU elaboration of Fig. 5.

    Attributes: whether contact occurred, the collision Δv (0 for
    non-collisions), and the minimum separation distance (0 for
    collisions).  ``max_delta_v_kmh`` bounds the claimed coverage — the
    paper's I₃ stops at 70 km/h, which is an ODD statement.
    """
    return Universe([
        CategoricalAttribute("contact", frozenset({"collision", "near_miss"})),
        ContinuousAttribute("delta_v_kmh", 0.0, max_delta_v_kmh),
        ContinuousAttribute("distance_m", 0.0, max_distance_m),
        ContinuousAttribute("approach_speed_kmh", 0.0, 200.0),
    ])
