"""Ethical side-constraints on budget allocation.

Sec. III-B: "defining the incident types to a certain extent will entail
ethical considerations.  For instance, even if the total acceptable
frequency of fatalities is low ... it will hardly be acceptable to create a
set of SGs where all of these fatalities are assigned to an I: Ego<->Child,
if it turns out to be more difficult to design for avoidance of collisions
with children compared to adults."

The allocation engine (:mod:`repro.core.allocation`) optimises budgets
subject to Eq. 1; without further constraints an optimiser will do exactly
what the paper warns about — dump risk on whichever incident type is
cheapest to budget for.  This module provides *linear* ethical constraints
that plug into the LP:

* :class:`BudgetFloor` / :class:`BudgetCeiling` — absolute bounds on one
  type's budget;
* :class:`RiskParity` — exposure-normalised parity between a protected and
  a reference incident type (per-encounter risk for children may not
  exceed ρ× that for adults);
* :class:`GroupShareCap` — a group of types may consume at most a share of
  one consequence class's budget.

Every constraint renders itself into ``A_ub x <= b_ub`` rows for the LP and
also offers a direct :meth:`check` on a finished allocation, so audits do
not depend on the optimiser path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .incident import IncidentType
from .quantities import Frequency

__all__ = [
    "EthicalConstraint",
    "BudgetFloor",
    "BudgetCeiling",
    "RiskParity",
    "GroupShareCap",
    "ConstraintViolation",
    "audit_allocation",
]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class ConstraintViolation:
    """One failed ethical-constraint check in an audit."""

    constraint: str
    detail: str


class EthicalConstraint(abc.ABC):
    """A linear constraint over incident-type budgets.

    ``lp_rows`` renders the constraint into ``A_ub x <= b_ub`` rows over
    the budget vector ordered as ``type_ids``.  ``class_budgets`` maps
    class id to the norm's acceptable rate and ``splits`` maps type id to
    its per-class contribution fractions — some constraints (share caps)
    need both.
    """

    @abc.abstractmethod
    def lp_rows(self, type_ids: Sequence[str],
                class_budgets: Mapping[str, float],
                splits: Mapping[str, Mapping[str, float]],
                ) -> Tuple[List[np.ndarray], List[float]]:
        """Render into LP inequality rows over the budget vector."""

    @abc.abstractmethod
    def check(self, budgets: Mapping[str, Frequency],
              types: Mapping[str, IncidentType],
              class_budgets: Mapping[str, Frequency]) -> List[ConstraintViolation]:
        """Directly audit a finished allocation."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable form for the safety-case ethics appendix."""

    @staticmethod
    def _index(type_ids: Sequence[str], type_id: str) -> int:
        try:
            return list(type_ids).index(type_id)
        except ValueError:
            raise KeyError(
                f"constraint references unknown incident type {type_id!r}"
            ) from None


@dataclass(frozen=True)
class BudgetFloor(EthicalConstraint):
    """``f_I >= minimum`` — a type may not be starved to zero.

    Floors keep the optimiser from revoking budget from types whose
    occurrences are physically irreducible (some residual rate will occur
    no matter the design, so a zero budget is an unfulfillable SG).
    """

    type_id: str
    minimum: Frequency

    def lp_rows(self, type_ids, class_budgets, splits):
        row = np.zeros(len(type_ids))
        row[self._index(type_ids, self.type_id)] = -1.0
        return [row], [-self.minimum.rate]

    def check(self, budgets, types, class_budgets):
        budget = budgets.get(self.type_id)
        if budget is None:
            return [ConstraintViolation(self.describe(),
                                        f"type {self.type_id} absent from allocation")]
        if budget.rate < self.minimum.rate * (1 - _REL_TOL):
            return [ConstraintViolation(
                self.describe(), f"budget {budget} below floor {self.minimum}")]
        return []

    def describe(self) -> str:
        return f"floor: f_{self.type_id} >= {self.minimum}"


@dataclass(frozen=True)
class BudgetCeiling(EthicalConstraint):
    """``f_I <= maximum`` — a hard cap independent of class budgets."""

    type_id: str
    maximum: Frequency

    def lp_rows(self, type_ids, class_budgets, splits):
        row = np.zeros(len(type_ids))
        row[self._index(type_ids, self.type_id)] = 1.0
        return [row], [self.maximum.rate]

    def check(self, budgets, types, class_budgets):
        budget = budgets.get(self.type_id)
        if budget is None:
            return []
        if budget.rate > self.maximum.rate * (1 + _REL_TOL):
            return [ConstraintViolation(
                self.describe(), f"budget {budget} exceeds ceiling {self.maximum}")]
        return []

    def describe(self) -> str:
        return f"ceiling: f_{self.type_id} <= {self.maximum}"


@dataclass(frozen=True)
class RiskParity(EthicalConstraint):
    """Exposure-normalised parity between two incident types.

    Let ``e_p`` and ``e_r`` be the exposure shares (encounter rates) of the
    protected and reference types.  The constraint is::

        f_protected / e_p  <=  max_ratio * f_reference / e_r

    i.e. the *per-encounter* accepted risk of the protected group may not
    exceed ``max_ratio`` times the reference group's.  ``max_ratio = 1``
    demands strict parity; the paper's Ego<->Child example is children
    protected relative to adults with ``max_ratio`` at or near 1.
    Linear form: ``e_r * f_p - max_ratio * e_p * f_r <= 0``.
    """

    protected_type: str
    reference_type: str
    protected_exposure: float
    reference_exposure: float
    max_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.protected_exposure <= 0 or self.reference_exposure <= 0:
            raise ValueError("exposure shares must be positive")
        if self.max_ratio <= 0:
            raise ValueError("max_ratio must be positive")
        if self.protected_type == self.reference_type:
            raise ValueError("parity between a type and itself is vacuous")

    def lp_rows(self, type_ids, class_budgets, splits):
        row = np.zeros(len(type_ids))
        row[self._index(type_ids, self.protected_type)] = self.reference_exposure
        row[self._index(type_ids, self.reference_type)] = (
            -self.max_ratio * self.protected_exposure)
        return [row], [0.0]

    def check(self, budgets, types, class_budgets):
        protected = budgets.get(self.protected_type)
        reference = budgets.get(self.reference_type)
        if protected is None or reference is None:
            missing = [t for t, b in ((self.protected_type, protected),
                                      (self.reference_type, reference)) if b is None]
            return [ConstraintViolation(self.describe(),
                                        f"types absent from allocation: {missing}")]
        lhs = protected.rate / self.protected_exposure
        rhs = self.max_ratio * reference.rate / self.reference_exposure
        if lhs > rhs + _REL_TOL * max(lhs, rhs, 1e-300):
            return [ConstraintViolation(
                self.describe(),
                f"per-exposure risk {lhs:.3g} exceeds {self.max_ratio:g}x "
                f"reference {rhs:.3g}")]
        return []

    def describe(self) -> str:
        return (f"parity: f_{self.protected_type}/{self.protected_exposure:g} <= "
                f"{self.max_ratio:g} * f_{self.reference_type}/{self.reference_exposure:g}")


@dataclass(frozen=True)
class GroupShareCap(EthicalConstraint):
    """A group of types may consume at most ``max_share`` of one class budget.

    Directly encodes "not all fatalities on Ego<->Child": cap the group
    ``("Ego<->Child",)``'s share of ``vS3`` at, say, its population
    exposure share.  Linear form::

        Σ_{k in group} split_k[class] * f_k <= max_share * f_class^(acceptable)
    """

    group: Tuple[str, ...]
    class_id: str
    max_share: float

    def __post_init__(self) -> None:
        if not self.group:
            raise ValueError("group must be non-empty")
        if len(set(self.group)) != len(self.group):
            raise ValueError("group contains duplicate type ids")
        if not (0 < self.max_share <= 1):
            raise ValueError("max_share must be in (0, 1]")

    def lp_rows(self, type_ids, class_budgets, splits):
        if self.class_id not in class_budgets:
            raise KeyError(f"share cap references unknown class {self.class_id!r}")
        row = np.zeros(len(type_ids))
        for type_id in self.group:
            coefficient = splits.get(type_id, {}).get(self.class_id, 0.0)
            row[self._index(type_ids, type_id)] = coefficient
        return [row], [self.max_share * class_budgets[self.class_id]]

    def check(self, budgets, types, class_budgets):
        class_budget = class_budgets.get(self.class_id)
        if class_budget is None:
            return [ConstraintViolation(
                self.describe(), f"class {self.class_id} absent from norm")]
        consumed = sum(
            budgets[type_id].rate * types[type_id].split.fraction(self.class_id)
            for type_id in self.group
            if type_id in budgets and type_id in types
        )
        cap = self.max_share * class_budget.rate
        if consumed > cap * (1 + _REL_TOL):
            return [ConstraintViolation(
                self.describe(),
                f"group consumes {consumed:.3g} of {self.class_id} (cap {cap:.3g})")]
        return []

    def describe(self) -> str:
        return (f"share cap: {'+'.join(self.group)} <= "
                f"{self.max_share:.0%} of {self.class_id}")


def audit_allocation(budgets: Mapping[str, Frequency],
                     types: Sequence[IncidentType],
                     constraints: Sequence[EthicalConstraint],
                     class_budgets: Mapping[str, Frequency]) -> List[ConstraintViolation]:
    """Audit a finished allocation against all ethical constraints.

    Independent of the optimiser: runs each constraint's direct check so a
    hand-edited allocation gets the same scrutiny as an LP solution.
    """
    by_id: Dict[str, IncidentType] = {t.type_id: t for t in types}
    violations: List[ConstraintViolation] = []
    for constraint in constraints:
        violations.extend(constraint.check(budgets, by_id, class_budgets))
    return violations
