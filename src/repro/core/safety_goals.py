"""Safety-goal synthesis from an allocation.

Implements the output side of Sec. III: "each defined incident type will
result in one SG", each carrying "an integrity attribute in the form of a
guaranteed frequency".  The canonical rendering follows the paper's worked
example::

    SG-I2:
    Avoid collision Ego<->VRU,
    with 0 < Δv_collision ≤ 10 km/h, to below f_I2 = 2e-05 /h.

A :class:`SafetyGoalSet` bundles the goals with the two completeness
artefacts the paper demands of a HARA replacement: the MECE certificate of
the underlying taxonomy (every conceivable incident has an owning type) and
the Eq. 1 feasibility check (the goals jointly respect the norm).  The
``completeness_argument`` method produces the confirmation-review document
ISO 26262 asks for, now machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from .allocation import Allocation
from .incident import IncidentType, SpeedBand
from .quantities import Frequency
from .risk_norm import QuantitativeRiskNorm
from .taxonomy import IncidentTaxonomy, MeceCertificate

__all__ = ["SafetyGoal", "SafetyGoalSet", "derive_safety_goals"]


@dataclass(frozen=True)
class SafetyGoal:
    """One top-level safety requirement with a quantitative integrity attribute.

    Unlike an ISO 26262 SG, whose integrity attribute is a discrete ASIL,
    the QRN SG carries the allocated maximum frequency directly — "what is
    the maximum tolerated occurrence of violating this SG" (Sec. III).
    """

    goal_id: str
    incident_type: IncidentType
    max_frequency: Frequency

    def __post_init__(self) -> None:
        if not self.goal_id:
            raise ValueError("goal_id must be non-empty")

    @property
    def type_id(self) -> str:
        return self.incident_type.type_id

    def render(self) -> str:
        """The paper's SG text format (cf. SG-I2 in Sec. III-B)."""
        itype = self.incident_type
        pair = itype.actor_pair_label()
        if isinstance(itype.margin, SpeedBand):
            action = f"Avoid collision {pair},"
            margin = (f"with {itype.margin.low_kmh:g} < Δv_collision ≤ "
                      f"{itype.margin.high_kmh:g} km/h,")
        else:
            action = f"Avoid near-miss {pair},"
            margin = (f"with 0 < d < {itype.margin.max_distance_m:g} m and "
                      f"Δv > {itype.margin.min_approach_speed_kmh:g} km/h,")
        return (f"{self.goal_id}:\n{action}\n{margin} "
                f"to below f_{itype.type_id} = {self.max_frequency}.")

    def is_satisfied_by(self, achieved: Frequency, *, rel_tol: float = 1e-9) -> bool:
        """Whether a demonstrated rate fulfils this goal."""
        return achieved.within(self.max_frequency, rel_tol=rel_tol)


class SafetyGoalSet:
    """The complete set of SGs for one item, with completeness evidence."""

    def __init__(self, goals: Sequence[SafetyGoal],
                 norm: QuantitativeRiskNorm,
                 allocation: Allocation,
                 certificate: Optional[MeceCertificate] = None):
        if not goals:
            raise ValueError("a safety-goal set must be non-empty")
        ids = [g.goal_id for g in goals]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate safety-goal ids: {dupes}")
        type_ids = [g.type_id for g in goals]
        if len(set(type_ids)) != len(type_ids):
            raise ValueError("multiple goals for one incident type")
        for goal in goals:
            allocated = allocation.budget(goal.type_id)
            if goal.max_frequency != allocated:
                raise ValueError(
                    f"goal {goal.goal_id} frequency {goal.max_frequency} "
                    f"disagrees with allocation {allocated}")
        self._goals: Tuple[SafetyGoal, ...] = tuple(goals)
        self.norm = norm
        self.allocation = allocation
        self.certificate = certificate

    def __iter__(self) -> Iterator[SafetyGoal]:
        return iter(self._goals)

    def __len__(self) -> int:
        return len(self._goals)

    def __getitem__(self, goal_id: str) -> SafetyGoal:
        for goal in self._goals:
            if goal.goal_id == goal_id:
                return goal
        raise KeyError(f"unknown safety goal {goal_id!r}; "
                       f"known: {[g.goal_id for g in self._goals]}")

    @property
    def goal_ids(self) -> Tuple[str, ...]:
        return tuple(g.goal_id for g in self._goals)

    def goal_for_type(self, type_id: str) -> SafetyGoal:
        for goal in self._goals:
            if goal.type_id == type_id:
                return goal
        raise KeyError(f"no goal for incident type {type_id!r}")

    # -- completeness & consistency -------------------------------------------

    def is_complete(self) -> bool:
        """Complete iff the taxonomy is MECE and Eq. 1 holds.

        This is the property ISO 26262 asks its confirmation review to
        establish; under the QRN both halves are machine-checked.
        """
        mece_ok = self.certificate.is_mece if self.certificate is not None else False
        return mece_ok and self.allocation.is_feasible()

    def completeness_argument(self) -> str:
        """The confirmation-review document: evidence for completeness."""
        lines = [
            f"Completeness & consistency argument for {len(self._goals)} "
            f"safety goals under norm {self.norm.name!r}",
            "",
            "1. Collective exhaustiveness (any conceivable incident has an "
            "owning type):",
        ]
        if self.certificate is None:
            lines.append("   NOT ESTABLISHED — no MECE certificate attached.")
        else:
            lines.append(f"   {self.certificate.summary()}")
        lines.append("")
        lines.append("2. Norm fulfilment (Eq. 1 per consequence class):")
        for class_id in self.norm.class_ids:
            load = self.allocation.class_load(class_id)
            budget = self.norm.budget(class_id)
            verdict = "OK" if load.within(budget) else "VIOLATED"
            lines.append(f"   {class_id}: Σ f_(v,I) = {load} ≤ {budget}  [{verdict}]")
        lines.append("")
        verdict = "COMPLETE" if self.is_complete() else "INCOMPLETE"
        lines.append(f"Verdict: safety-goal set is {verdict}.")
        return "\n".join(lines)

    def render_all(self) -> str:
        return "\n\n".join(goal.render() for goal in self._goals)


def derive_safety_goals(allocation: Allocation,
                        *, taxonomy: Optional[IncidentTaxonomy] = None,
                        certificate: Optional[MeceCertificate] = None,
                        ) -> SafetyGoalSet:
    """One SG per incident type, integrity attribute = allocated budget.

    If a ``taxonomy`` is supplied (and no pre-computed ``certificate``),
    its MECE certificate is computed and attached as the completeness
    evidence.  Incident types referencing a taxonomy leaf that does not
    exist fail fast — a goal claiming to refine a non-existent class is a
    completeness hole.
    """
    if certificate is None and taxonomy is not None:
        certificate = taxonomy.mece_certificate()
    if taxonomy is not None:
        known = set(taxonomy.leaf_names)
        for itype in allocation.types:
            if itype.taxonomy_leaf is not None and itype.taxonomy_leaf not in known:
                raise ValueError(
                    f"incident type {itype.type_id} refines unknown taxonomy "
                    f"leaf {itype.taxonomy_leaf!r}")
    goals = [
        SafetyGoal(
            goal_id=f"SG-{itype.type_id}",
            incident_type=itype,
            max_frequency=allocation.budget(itype.type_id),
        )
        for itype in allocation.types
    ]
    return SafetyGoalSet(goals, allocation.norm, allocation, certificate)
