"""Typed error taxonomy for the reproduction toolkit.

The QRN work products this package emits — goal sets, checkpoints, run
manifests — are *audit artifacts*: an assessor reloads them months later
and must be able to trust what they say, and a resumed campaign
re-ingests them as ground truth.  That makes the failure mode of a
loader part of the safety argument: a truncated checkpoint that parses
"successfully" into half a campaign is worse than a crash, and a crash
that surfaces as a raw ``KeyError`` traceback tells an auditor nothing.

This module is the root of the error contract (DESIGN §10):

* :class:`ReproError` — every intentional, user-facing failure raised by
  this package.  The CLI maps these to one-line ``error: …``
  diagnostics with exit code :data:`ReproError.exit_code` (4), never a
  traceback.
* :class:`ArtifactError` — the artifact-I/O branch, carrying the
  offending ``source`` (file path or flag name), the ``schema`` tag in
  play and, where known, the ``field`` that failed.  It also subclasses
  :class:`ValueError` so pre-existing ``except ValueError`` call sites
  and tests keep working unchanged.

The concrete artifact failures an I/O boundary can produce:

* :class:`CorruptArtifactError` — the bytes themselves are bad: invalid
  UTF-8, malformed JSON, NaN/Infinity tokens, pathological nesting, or
  an embedded payload digest that no longer matches the content
  (truncation / bit-flips *detected*, not mis-parsed).
* :class:`SchemaMismatchError` — the document parsed but its ``schema``
  tag is missing, malformed, or names a different artifact kind; the
  message always names the expected and the found tag.
* :class:`SchemaVersionError` — the tag names the right artifact but a
  version this build cannot load (newer than supported, or an old
  version with no registered migration path).
* :class:`ArtifactValidationError` — well-formed, correctly tagged JSON
  whose *structure or values* violate the schema: missing or unknown
  fields, wrong types, non-finite numbers, or domain rules (e.g. a goal
  referencing an unknown incident type).

Loaders registered with :class:`repro.io.ArtifactStore` are guaranteed
to raise only this taxonomy — never a bare ``KeyError`` / ``TypeError``
/ ``RecursionError`` — a property the ``fuzz`` test tier enforces with
deterministic corruption campaigns (``repro.testing.fuzz``).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ArtifactError",
    "CorruptArtifactError",
    "SchemaMismatchError",
    "SchemaVersionError",
    "ArtifactValidationError",
]


class ReproError(Exception):
    """Root of every intentional, user-facing error in this package.

    ``exit_code`` is what the CLI returns after printing the one-line
    diagnostic (4 by convention, distinct from 1 = domain verdicts,
    2 = usage errors, 3 = partial campaign failure).
    """

    exit_code: int = 4


class ArtifactError(ReproError, ValueError):
    """An artifact (file or inline JSON document) could not be trusted.

    Parameters
    ----------
    message:
        Human-readable, single-line description of what failed.
    source:
        Where the artifact came from — a file path or a CLI flag name
        (``"--counts"``).  Prefixed onto the message when present so the
        CLI diagnostic reads ``error: <path>: <what went wrong>``.
    schema:
        The schema tag in play (expected or found), when known.
    field:
        Dotted payload path of the offending field (``$.chunks.3.result``),
        when validation pinpointed one.
    """

    def __init__(self, message: str, *, source: Optional[object] = None,
                 schema: Optional[str] = None,
                 field: Optional[str] = None):
        self.source = None if source is None else str(source)
        self.schema = schema
        self.field = field
        prefix = f"{self.source}: " if self.source else ""
        super().__init__(prefix + message)


class CorruptArtifactError(ArtifactError):
    """The artifact bytes are damaged: bad encoding, malformed JSON,
    non-finite number tokens, pathological nesting, or an embedded
    payload digest that does not match the content."""


class SchemaMismatchError(ArtifactError):
    """The document's ``schema`` tag is missing, malformed, or names a
    different artifact kind than the loader expected."""


class SchemaVersionError(ArtifactError):
    """The ``schema`` tag names the right artifact at a version this
    build cannot load (too new, or no migration path from it)."""


class ArtifactValidationError(ArtifactError):
    """The document is well-formed and correctly tagged, but its
    structure or values violate the artifact's schema."""
