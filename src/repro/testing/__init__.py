"""Test-support substrate shipped with the package.

Deliberately importable from production code paths' *tests* only — the
runtime never imports this package.  Today it holds the deterministic
chaos harness (:mod:`.chaos`) that the ``chaos`` test tier drives the
fault-tolerant campaign engine with.
"""

from .chaos import (CHAOS_FAULT_KINDS, ChaosError, ChaosScript, ChaosWorker,
                    replace_with_garbage)

__all__ = ["CHAOS_FAULT_KINDS", "ChaosError", "ChaosScript", "ChaosWorker",
           "replace_with_garbage"]
