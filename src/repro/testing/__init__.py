"""Test-support substrate shipped with the package.

Deliberately importable from production code paths' *tests* only — the
runtime never imports this package.  It holds the deterministic chaos
harness (:mod:`.chaos`) that the ``chaos`` test tier drives the
fault-tolerant campaign engine with, and the seed-stable artifact
corruption fuzzer (:mod:`.fuzz`) behind the ``fuzz`` tier's ≥500
mutations-per-schema guarantee (DESIGN §10).
"""

from .chaos import (CHAOS_FAULT_KINDS, ChaosError, ChaosScript, ChaosWorker,
                    replace_with_garbage)
from .fuzz import (BYTE_MUTATORS, STRUCTURAL_MUTATORS, ArtifactFuzzer,
                   FuzzCase)

__all__ = ["CHAOS_FAULT_KINDS", "ChaosError", "ChaosScript", "ChaosWorker",
           "replace_with_garbage",
           "ArtifactFuzzer", "FuzzCase", "BYTE_MUTATORS",
           "STRUCTURAL_MUTATORS"]
