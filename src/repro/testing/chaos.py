"""Deterministic fault injection for the campaign engine's chaos tier.

The fault-tolerance layer of :func:`repro.stats.parallel.run_chunked`
claims that *any* mix of worker crashes, hangs, pool breakage and
corrupted outputs yields a merged result bit-for-bit identical to a
fault-free run.  That claim is only testable if the faults themselves
are reproducible — so this harness scripts them:

* a :class:`ChaosScript` maps ``chunk_index -> (fault, fault, ...)``:
  the chunk's first execution suffers the first fault, its second the
  second, and once the script runs out the chunk succeeds.  Scripts can
  be written literally (to pin one recovery path per test) or generated
  from a seeded RNG via :meth:`ChaosScript.from_seed` (property tests).
* a :class:`ChaosWorker` wraps the real (picklable) chunk worker and
  applies the script.  Which execution this is ("attempt") is claimed
  crash-safely through ``O_CREAT | O_EXCL`` marker files in a shared
  ``state_dir`` — worker processes share no memory, and the victim of an
  ``exit`` fault never gets to report back, so in-process counters
  cannot work.  The coordinator serialises a chunk's executions, so the
  claim is race-free.

Fault kinds (:data:`CHAOS_FAULT_KINDS`):

``raise``
    the worker raises :class:`ChaosError` — exercises the per-chunk
    retry path (``kind="exception"``).
``exit``
    the worker process dies with ``os._exit`` — exercises
    ``BrokenProcessPool`` recovery (pool rebuild / degradation).  Never
    script this for an inline (``workers=1``) run: it would kill the
    coordinator process itself.
``hang``
    the worker sleeps ``hang_s`` — exercises the per-chunk timeout and
    pool teardown.  Pool runs only, and only with a ``timeout_s`` well
    below ``hang_s``.
``garbage``
    the worker runs the real chunk, then returns
    ``corruptor(result)`` instead — exercises validate-then-commit
    (``kind="invalid"``).

The injection decision depends only on ``(chunk_index, execution
number)`` — never on the chunk's RNG stream — so the simulated draws
are untouched and a recovered campaign must reproduce the fault-free
result exactly.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

__all__ = ["CHAOS_FAULT_KINDS", "ChaosError", "ChaosScript", "ChaosWorker",
           "replace_with_garbage", "SERVICE_CHAOS_ENV",
           "SERVICE_CHAOS_DIR_ENV", "service_chaos", "FS_CHAOS_ENV",
           "FS_CHAOS_DIR_ENV", "FS_FAULT_KINDS", "fs_chaos", "fs_fault"]

CHAOS_FAULT_KINDS = ("raise", "exit", "hang", "garbage")


class ChaosError(RuntimeError):
    """The injected worker exception (fault kind ``raise``)."""


class ChaosGarbage:
    """Default corrupted output: not a chunk result of any valid shape.

    Any honest validator must reject it, which is exactly the point —
    it stands in for "the worker returned bytes that deserialised into
    nonsense".
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<ChaosGarbage>"


def replace_with_garbage(result: Any) -> Any:
    """The default corruptor: discard the real result entirely."""
    return ChaosGarbage()


@dataclass(frozen=True)
class ChaosScript:
    """A deterministic per-chunk fault plan.

    ``faults[i]`` is the tuple of fault kinds chunk ``i``'s successive
    executions suffer; executions beyond the tuple succeed.  ``hang_s``
    is the sleep used by ``hang`` faults and ``exit_code`` the status of
    ``exit`` faults.  ``corruptor`` transforms the genuine result for
    ``garbage`` faults and must be picklable (a module-level function).
    """

    faults: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)
    hang_s: float = 30.0
    exit_code: int = 23
    corruptor: Callable[[Any], Any] = replace_with_garbage

    def __post_init__(self) -> None:
        for index, kinds in self.faults.items():
            if index < 0:
                raise ValueError("chunk indices must be >= 0")
            for kind in kinds:
                if kind not in CHAOS_FAULT_KINDS:
                    raise ValueError(
                        f"unknown chaos fault {kind!r} for chunk {index}; "
                        f"choose from {CHAOS_FAULT_KINDS}")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")

    def fault_for(self, chunk_index: int, execution: int) -> str:
        """The fault for a chunk's ``execution``-th run (1-based), or ``"ok"``."""
        kinds = self.faults.get(chunk_index, ())
        if 1 <= execution <= len(kinds):
            return kinds[execution - 1]
        return "ok"

    @classmethod
    def from_seed(cls, seed: int, n_chunks: int, *,
                  fault_rate: float = 0.3,
                  max_faults_per_chunk: int = 2,
                  kinds: Tuple[str, ...] = ("raise", "garbage"),
                  **kwargs: Any) -> "ChaosScript":
        """Generate a random (but fully reproducible) script.

        Draws from its own ``SeedSequence([seed, 0xC4A05])`` root — a
        chaos plan must never share entropy with the campaign's result
        streams.  Defaults to recoverable kinds only (``raise`` /
        ``garbage``), so generated scripts are safe for inline runs too.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        for kind in kinds:
            if kind not in CHAOS_FAULT_KINDS:
                raise ValueError(f"unknown chaos fault {kind!r}")
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC4A05]))
        faults: Dict[int, Tuple[str, ...]] = {}
        for index in range(n_chunks):
            if rng.uniform() >= fault_rate:
                continue
            count = int(rng.integers(1, max_faults_per_chunk + 1))
            faults[index] = tuple(
                kinds[int(rng.integers(0, len(kinds)))]
                for _ in range(count))
        return cls(faults=faults, **kwargs)


@dataclass(frozen=True)
class ChaosWorker:
    """Picklable wrapper injecting scripted faults around a real worker.

    ``state_dir`` must be an existing directory shared by every worker
    process (a pytest ``tmp_path`` is ideal); it accumulates one empty
    marker file per execution, which is how attempt numbers survive
    process death.  Plug into the fleet runner via
    ``run_fleet(..., wrap_worker=lambda w: ChaosWorker(w, script, dir))``
    or hand ``ChaosWorker(worker, script, dir)`` straight to
    :func:`repro.stats.parallel.run_chunked`.
    """

    inner: Callable[..., Any]
    script: ChaosScript
    state_dir: str

    def _claim_execution(self, chunk_index: int) -> int:
        """Atomically claim this run's 1-based execution number."""
        execution = 1
        while True:
            marker = os.path.join(self.state_dir,
                                  f"chunk{chunk_index}.exec{execution}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                execution += 1
                continue
            os.close(fd)
            return execution

    def executions(self, chunk_index: int) -> int:
        """How many executions of a chunk have been claimed so far."""
        count = 0
        while os.path.exists(os.path.join(
                self.state_dir, f"chunk{chunk_index}.exec{count + 1}")):
            count += 1
        return count

    def __call__(self, chunk: Any, seed_seq: Any) -> Any:
        execution = self._claim_execution(chunk.index)
        fault = self.script.fault_for(chunk.index, execution)
        if fault == "raise":
            raise ChaosError(
                f"injected crash: chunk {chunk.index} execution {execution}")
        if fault == "exit":
            os._exit(self.script.exit_code)
        if fault == "hang":
            time.sleep(self.script.hang_s)
            # If the timeout machinery failed to reclaim us, fall through
            # and behave: the test then fails on the timeout metric, not
            # by wedging the suite.
        result = self.inner(chunk, seed_seq)
        if fault == "garbage":
            return self.script.corruptor(result)
        return result


# -- service-level chaos ---------------------------------------------------
#
# The campaign service (repro serve) is instrumented with named chaos
# points at its crash-consistency-critical instants — right after a
# service-journal append, after a lease grant is persisted, after a
# result artifact is committed, after every runner chunk commit.  The
# chaos tier scripts faults at those points through two environment
# variables, which child processes (the daemon, its runners) inherit:
#
# ``REPRO_SERVICE_CHAOS``
#     Semicolon-separated directives.  ``kill@<point>[#<nth>]`` SIGKILLs
#     the current process the <nth> time (default 1st) that point is
#     reached *across all processes and restarts*; ``fail@<point>``
#     raises ``OSError(ENOSPC)`` there every time (a stuck-full spool).
# ``REPRO_SERVICE_CHAOS_DIR``
#     An existing shared directory where ``kill`` directives claim their
#     hit counts via ``O_CREAT | O_EXCL`` marker files — the same
#     crash-safe claim protocol as :class:`ChaosWorker`, because the
#     victim of a SIGKILL never gets to update an in-process counter.
#
# With neither variable set, :func:`service_chaos` is one environment
# lookup and a return — the production daemon pays nothing measurable.

SERVICE_CHAOS_ENV = "REPRO_SERVICE_CHAOS"
SERVICE_CHAOS_DIR_ENV = "REPRO_SERVICE_CHAOS_DIR"


def _claim_hit(state_dir: str, directive_index: int) -> int:
    """Atomically claim this occurrence's 1-based global hit number."""
    hit = 1
    while True:
        marker = os.path.join(state_dir,
                              f"chaos{directive_index}.hit{hit}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            hit += 1
            continue
        os.close(fd)
        return hit


def service_chaos(point: str) -> None:
    """Apply any scripted service-chaos directive for ``point``.

    ``kill`` directives terminate the process with ``SIGKILL`` (no
    cleanup, no atexit — the hard-crash the recovery path must survive);
    ``fail`` directives raise ``OSError(ENOSPC)`` for the caller's typed
    error handling to absorb.  Unmatched points return immediately.
    """
    spec = os.environ.get(SERVICE_CHAOS_ENV, "")
    if not spec:
        return
    for index, directive in enumerate(spec.split(";")):
        directive = directive.strip()
        if "@" not in directive:
            continue
        action, _, rest = directive.partition("@")
        target, _, nth_text = rest.partition("#")
        if target != point:
            continue
        if action == "fail":
            raise OSError(errno.ENOSPC,
                          f"injected disk-full at chaos point {point!r}")
        if action != "kill":
            continue
        state_dir = os.environ.get(SERVICE_CHAOS_DIR_ENV)
        if state_dir is None:
            raise RuntimeError(
                f"{SERVICE_CHAOS_ENV} has a kill directive but "
                f"{SERVICE_CHAOS_DIR_ENV} is unset")
        nth = int(nth_text) if nth_text else 1
        if _claim_hit(state_dir, index) == nth:
            os.kill(os.getpid(), signal.SIGKILL)


# -- filesystem-level chaos -------------------------------------------------
#
# Where the service chaos tier scripts *process* faults (kills, whole-
# operation failures), the filesystem chaos tier scripts *storage*
# faults at the named points inside the durable-write paths themselves —
# ``io/atomic.py``'s temp-write-fsync-rename dance, the journal append
# in ``obs/events.py`` (and its ``service/journal.py`` subclass), the
# spool writes in ``service/store.py``, the checkpoint flush in
# ``traffic/checkpoint.py``.  Each point asks :func:`fs_chaos` whether a
# fault is scripted for *this* occurrence and then simulates the real
# storage failure mode in place:
#
# ``enospc``
#     ``OSError(ENOSPC)`` before any byte lands — the clean disk-full.
# ``eio``
#     ``OSError(EIO)`` after the data is written but before it is
#     durable — the failed fsync / dying device.
# ``torn``
#     a *prefix* of the payload lands and then the write errors — the
#     torn page / power-cut-mid-append every journal-repair path must
#     survive.  Atomic writers leave their orphaned temp file behind
#     (the crash-between-create-and-rename residue ``repro fsck``
#     sweeps); journal appenders leave a genuinely torn tail.
# ``shortfsync``
#     the write completes — the rename even lands — but the final
#     durability step reports failure, so the caller believes the write
#     failed while the bytes are actually intact.  Retry/fsck paths must
#     be idempotent against this lie.
#
# Directive syntax mirrors ``REPRO_SERVICE_CHAOS``::
#
#     REPRO_FS_CHAOS="<kind>@<point>[#<nth>];..."
#
# Without ``#<nth>`` the fault fires on *every* hit of the point (a
# persistently sick disk).  With ``#<nth>`` it fires exactly once, on
# the nth occurrence *across all processes and restarts*, claimed
# crash-safely through ``O_CREAT | O_EXCL`` markers in
# ``REPRO_FS_CHAOS_DIR`` — same protocol as the kill directives, because
# the victim of a torn write may well be about to die.  With the
# variable unset, every instrumented point costs one environment lookup.

FS_CHAOS_ENV = "REPRO_FS_CHAOS"
FS_CHAOS_DIR_ENV = "REPRO_FS_CHAOS_DIR"

FS_FAULT_KINDS = ("enospc", "eio", "torn", "shortfsync")


def fs_fault(kind: str, point: str) -> OSError:
    """The :class:`OSError` an injected filesystem fault surfaces as.

    ``enospc`` carries ``errno.ENOSPC``; every other kind carries
    ``errno.EIO`` (a torn write and a failed fsync both look like I/O
    errors to the caller).  Callers wrap it into their typed taxonomy
    exactly as they would the real thing.
    """
    code = errno.ENOSPC if kind == "enospc" else errno.EIO
    return OSError(code, f"injected fs fault {kind!r} at chaos point "
                         f"{point!r}")


def fs_chaos(point: str) -> "str | None":
    """The scripted filesystem fault kind for this hit of ``point``.

    Returns one of :data:`FS_FAULT_KINDS` when a directive matches (and,
    for ``#<nth>`` directives, when this is the claimed nth global hit),
    else ``None``.  The *caller* simulates the fault — only the call
    site knows which bytes a torn write should cut.
    """
    spec = os.environ.get(FS_CHAOS_ENV, "")
    if not spec:
        return None
    for index, directive in enumerate(spec.split(";")):
        directive = directive.strip()
        if "@" not in directive:
            continue
        kind, _, rest = directive.partition("@")
        target, _, nth_text = rest.partition("#")
        if target != point or kind not in FS_FAULT_KINDS:
            continue
        if not nth_text:
            return kind
        state_dir = os.environ.get(FS_CHAOS_DIR_ENV)
        if state_dir is None:
            raise RuntimeError(
                f"{FS_CHAOS_ENV} has an nth-hit directive but "
                f"{FS_CHAOS_DIR_ENV} is unset")
        if _claim_hit(state_dir, 1000 + index) == int(nth_text):
            return kind
    return None
