"""Deterministic artifact-corruption fuzzer for the ``fuzz`` test tier.

The :class:`ArtifactFuzzer` takes the pristine serialised form of one
registered artifact (the output of
:meth:`repro.io.ArtifactStore.dump_text`) and derives a seed-stable
corpus of corrupted variants.  Two lanes, matching the two distinct
promises the I/O boundary makes (DESIGN §10):

**Byte lane** (``resigned=False``) — raw damage to the stored bytes with
the embedded digest left as-is: truncation, bit-flips, splices, digit
swaps, NaN/Infinity token injection, invalid-UTF-8 and unicode garbage,
nesting bombs, duplicated keys, empty/whitespace files.  The boundary's
promise here is *detection*: loading such a case must either raise a
typed :class:`~repro.errors.ArtifactError` or return an object equal to
the pristine one (a mutation that only touched non-semantic bytes —
indentation, a duplicated key re-asserting the same value).  A byte-lane
mutation that changes a value yet loads "successfully" into a different
object is exactly the silent-corruption bug class the digest exists to
kill.

**Re-signed lane** (``resigned=True``) — structural mutations applied to
the parsed document (key deletion at any depth, cross-type value
replacement, schema-tag vandalism, null injection, string garbling) with
the payload digest *recomputed afterwards*, simulating a plausibly-valid
but wrong artifact that no checksum can flag.  Here the promise is
*typed failure or coherent acceptance*: the load must either raise a
typed :class:`~repro.errors.ArtifactError` (never a bare ``KeyError`` /
``TypeError`` / ``RecursionError``) or produce an object whose own
re-dump round-trips cleanly.  Acceptance is legitimate when the mutation
landed inside an open region (e.g. a free-form telemetry blob) — the
result is then simply a *different valid artifact*.

Everything is driven by one stdlib :class:`random.Random` seeded at
construction, so the corpus for a given ``(seed, artifact text)`` pair
is bit-for-bit reproducible — a failing case ID is enough to replay it.
"""

from __future__ import annotations

import copy
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import ArtifactError
from ..io.artifact import DIGEST_KEY, parse_artifact_text, payload_digest

__all__ = ["ArtifactFuzzer", "FuzzCase", "BYTE_MUTATORS",
           "STRUCTURAL_MUTATORS"]


@dataclass(frozen=True)
class FuzzCase:
    """One corrupted artifact variant.

    ``label`` identifies the mutator and case index (stable across runs
    for a given seed); ``data`` is the corrupt serialised form;
    ``resigned`` tells the test harness which invariant applies (see the
    module docstring).
    """

    label: str
    data: bytes
    resigned: bool


# --------------------------------------------------------------------------
# Byte lane: damage the stored bytes, leave the digest alone.
# --------------------------------------------------------------------------

def _truncate(raw: bytes, rng: random.Random) -> bytes:
    return raw[:rng.randrange(0, max(1, len(raw)))]


def _bitflip(raw: bytes, rng: random.Random) -> bytes:
    if not raw:
        return b"\x00"
    pos = rng.randrange(len(raw))
    bit = 1 << rng.randrange(8)
    return raw[:pos] + bytes([raw[pos] ^ bit]) + raw[pos + 1:]


def _splice(raw: bytes, rng: random.Random) -> bytes:
    """Overwrite a short random window with random bytes."""
    if not raw:
        return bytes(rng.randrange(256) for _ in range(4))
    start = rng.randrange(len(raw))
    width = rng.randrange(1, 9)
    junk = bytes(rng.randrange(256) for _ in range(width))
    return raw[:start] + junk + raw[start + width:]


_GARBAGE_SNIPPETS: Tuple[bytes, ...] = (
    b"\xff\xfe\x00\x01",                      # invalid UTF-8
    b"\xed\xa0\x80",                          # encoded lone surrogate
    "\u202e\u0000\uffff".encode("utf-8"),   # bidi override, NUL, U+FFFF
    "\U0001f70f\u200b\u2028\u2029".encode("utf-8"),  # odd whitespace
    b'"\\ud800"',                             # escaped lone surrogate
)


def _unicode_garbage(raw: bytes, rng: random.Random) -> bytes:
    pos = rng.randrange(len(raw) + 1)
    return raw[:pos] + rng.choice(_GARBAGE_SNIPPETS) + raw[pos:]


def _digit_positions(raw: bytes) -> List[int]:
    return [i for i, b in enumerate(raw) if 0x30 <= b <= 0x39]


def _digit_swap(raw: bytes, rng: random.Random) -> bytes:
    """Change one digit — a minimal semantic corruption the digest must
    catch (or, if it landed in the digest hex itself, a mismatch)."""
    digits = _digit_positions(raw)
    if not digits:
        return _bitflip(raw, rng)
    pos = rng.choice(digits)
    old = raw[pos]
    new = old
    while new == old:
        new = 0x30 + rng.randrange(10)
    return raw[:pos] + bytes([new]) + raw[pos + 1:]


def _token_nonfinite(raw: bytes, rng: random.Random) -> bytes:
    """Replace a digit with a ``NaN`` / ``Infinity`` token — stock
    ``json.loads`` would accept these silently."""
    digits = _digit_positions(raw)
    token = rng.choice((b"NaN", b"Infinity", b"-Infinity"))
    if not digits:
        return token
    pos = rng.choice(digits)
    return raw[:pos] + token + raw[pos + 1:]


def _nesting_bomb(raw: bytes, rng: random.Random) -> bytes:
    depth = rng.randrange(2000, 6000)
    bomb = b"[" * depth + b"]" * depth
    if rng.random() < 0.5:
        return bomb  # the whole file is the bomb
    pos = rng.randrange(len(raw) + 1)
    return raw[:pos] + bomb + raw[pos:]


def _duplicate_key_line(raw: bytes, rng: random.Random) -> bytes:
    """Duplicate one ``"key": value`` line of the pretty form.  JSON's
    last-wins duplicate-key semantics make this either invalid JSON, a
    value-preserving no-op the loader must accept as *equal*, or a
    digest mismatch — never a silent change."""
    lines = raw.split(b"\n")
    candidates = [i for i, line in enumerate(lines) if b'": ' in line]
    if not candidates:
        return _truncate(raw, rng)
    idx = rng.choice(candidates)
    line = lines[idx]
    if not line.rstrip().endswith(b","):
        line = line + b","
    lines.insert(idx, line)
    return b"\n".join(lines)


def _degenerate(raw: bytes, rng: random.Random) -> bytes:
    return rng.choice((b"", b"   \n\t  ", b"null", b"[]", b'"checkpoint"',
                       b"{", b"}", b"{}", b"\x00" * 16))


BYTE_MUTATORS: Dict[str, Callable[[bytes, random.Random], bytes]] = {
    "truncate": _truncate,
    "bitflip": _bitflip,
    "splice": _splice,
    "unicode-garbage": _unicode_garbage,
    "digit-swap": _digit_swap,
    "nonfinite-token": _token_nonfinite,
    "nesting-bomb": _nesting_bomb,
    "duplicate-key": _duplicate_key_line,
    "degenerate": _degenerate,
}


# --------------------------------------------------------------------------
# Re-signed lane: structural mutation + digest recomputation.
# --------------------------------------------------------------------------

_Container = Union[Dict[str, object], List[object]]
_Site = Tuple[_Container, Union[str, int]]


def _sites(node: object) -> List[_Site]:
    """Every (container, key) pair in the document, any depth."""
    found: List[_Site] = []
    stack: List[object] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, dict):
            for key in sorted(current):
                found.append((current, key))
                stack.append(current[key])
        elif isinstance(current, list):
            for idx, item in enumerate(current):
                found.append((current, idx))
                stack.append(item)
    return found


def _delete_key(doc: Dict[str, object], rng: random.Random) -> None:
    sites = _sites(doc)
    if not sites:
        return
    container, key = rng.choice(sites)
    del container[key]  # type: ignore[arg-type]


_REPLACEMENT_POOL: Tuple[object, ...] = (
    "ghost-value", -17, 2.5, True, False, None, [], {}, [1, "two", None],
    {"unexpected": {"deeply": ["nested"]}}, "", "NaN", 10 ** 40,
)


def _mutate_type(doc: Dict[str, object], rng: random.Random) -> None:
    sites = _sites(doc)
    if not sites:
        return
    container, key = rng.choice(sites)
    current = container[key]  # type: ignore[index]
    candidates = [value for value in _REPLACEMENT_POOL
                  if type(value) is not type(current)]
    container[key] = rng.choice(candidates)  # type: ignore[index]


def _inject_null(doc: Dict[str, object], rng: random.Random) -> None:
    sites = [(c, k) for c, k in _sites(doc)
             if c[k] is not None]  # type: ignore[index]
    if not sites:
        return
    container, key = rng.choice(sites)
    container[key] = None  # type: ignore[index]


def _garble_string(doc: Dict[str, object], rng: random.Random) -> None:
    sites = [(c, k) for c, k in _sites(doc)
             if isinstance(c[k], str)]  # type: ignore[index]
    if not sites:
        return
    container, key = rng.choice(sites)
    container[key] = rng.choice((  # type: ignore[index]
        "", "\u202e\u0000", "\U0001f70f" * 40, "Infinity", "None", "\n\t",
        "x" * 4096))


def _vandalise_tag(doc: Dict[str, object], rng: random.Random) -> None:
    """Missing / malformed / wrong-name / future-version schema tags."""
    action = rng.randrange(6)
    if action == 0:
        doc.pop("schema", None)
    elif action == 1:
        doc["schema"] = "not-a-tag"
    elif action == 2:
        doc["schema"] = "repro.some-other-thing/v1"
    elif action == 3:
        tag = doc.get("schema")
        name = tag.split("/", 1)[0] if isinstance(tag, str) else "ghost"
        doc["schema"] = f"{name}/v{rng.randrange(2, 100)}"
    elif action == 4:
        doc["schema"] = rng.choice((42, None, ["repro.goal-set/v1"], {}))
    else:
        doc["schema"] = "repro.goal-set/v0x"  # malformed version field


STRUCTURAL_MUTATORS: Dict[str, Callable[[Dict[str, object],
                                         random.Random], None]] = {
    "delete-key": _delete_key,
    "type-mutate": _mutate_type,
    "null-inject": _inject_null,
    "garble-string": _garble_string,
    "tag-vandalism": _vandalise_tag,
}


class ArtifactFuzzer:
    """Seed-deterministic corruption-corpus generator.

    ``ArtifactFuzzer(seed).cases(text, n)`` always yields the same ``n``
    :class:`FuzzCase` variants for the same ``text`` — the corpus is a
    pure function of ``(seed, text, n)``.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def cases(self, text: str, n: int) -> List[FuzzCase]:
        rng = random.Random(self.seed)
        raw = text.encode("utf-8")
        parsed: Optional[Dict[str, object]] = None
        try:
            loaded = parse_artifact_text(text)
            if isinstance(loaded, dict):
                parsed = loaded
        except ArtifactError:  # pragma: no cover - pristine input is JSON
            parsed = None
        byte_names = sorted(BYTE_MUTATORS)
        structural_names = sorted(STRUCTURAL_MUTATORS)
        corpus: List[FuzzCase] = []
        for index in range(n):
            # ~60 % byte lane, ~40 % re-signed structural lane; the
            # draw itself is part of the deterministic stream.
            if parsed is None or rng.random() < 0.6:
                name = rng.choice(byte_names)
                data = BYTE_MUTATORS[name](raw, rng)
                corpus.append(FuzzCase(f"{index:04d}-{name}", data, False))
            else:
                name = rng.choice(structural_names)
                doc = copy.deepcopy(parsed)
                doc.pop(DIGEST_KEY, None)
                STRUCTURAL_MUTATORS[name](doc, rng)
                # Re-sign: the mutated document carries a *valid* digest,
                # so only validation — not the checksum — can reject it.
                doc[DIGEST_KEY] = payload_digest(doc)
                data = json.dumps(doc, indent=2, sort_keys=True,
                                  ensure_ascii=False).encode("utf-8")
                corpus.append(FuzzCase(f"{index:04d}-{name}", data, True))
        return corpus
