"""Command-line interface.

Five subcommands cover the workflows a user reaches for before writing
Python:

* ``repro figures [--out DIR]`` — regenerate every paper figure as text;
* ``repro goals [--improvement X] [--json PATH]`` — derive the example
  safety-goal set (optionally calibrated against the human baseline) and
  print/serialise it;
* ``repro verify GOALS.json --counts '{"I1": 3}' --exposure 2e5`` —
  statistical verdicts for a stored goal set against observed counts;
* ``repro review GOALS.json [--counts ... --exposure ...]`` — the
  automated confirmation review (exit 1 on blockers);
* ``repro dossier [--hours H] [--seed S] [--out PATH]`` — run a simulated
  campaign and emit the full safety-case dossier;
* ``repro fleet [--hours H] [--seed S] [--workers N] [--chunk-hours C]
  [--engine E]`` — run a parallel fleet campaign and report the incident
  statistics backing Eq. 1.  Results are bit-for-bit identical for any
  worker count (see DESIGN.md, "Parallel fleet execution"); ``--engine``
  picks the per-core path (vectorized structure-of-arrays by default,
  scalar as the reference oracle).  ``--accelerator is|splitting``
  switches to a variance-reduced collision-rate estimate (DESIGN §11):
  importance sampling under a ``--tilt-*`` proposal with exact
  likelihood-ratio reweighting and ESS diagnostics (exit 5 on a
  degenerate proposal), or multilevel splitting on the near-miss
  severity ladder.

Fault tolerance (DESIGN.md §9): ``--checkpoint PATH`` persists every
committed chunk atomically; ``--resume`` restarts a killed campaign from
that file, re-running only the missing chunks (the merged result is
bit-for-bit the uninterrupted one).  ``--max-attempts`` and
``--chunk-timeout`` tune the per-chunk retry policy.  A campaign that
still cannot finish exits with code 3 and prints its failure log; a
``Ctrl-C`` exits with the conventional 130 after the checkpoint (if any)
has been flushed.

The campaign service (DESIGN §14): ``repro serve --spool DIR`` runs the
crash-safe local job daemon; ``repro submit`` posts a campaign spec to
it (idempotent — the job id is the spec digest, a completed spec is a
cache hit); ``repro jobs`` lists/inspects job records; ``repro cancel``
cancels one.  All client commands discover the daemon through the
spool's ``endpoint.json``, and every refusal is a typed one-line
``error:`` diagnostic (exit 4), including 429 backpressure with its
retry-after hint.

Artifact I/O (DESIGN §10): every JSON artifact the CLI reads — stored
goal sets, campaign checkpoints, inline ``--counts`` payloads — goes
through the :mod:`repro.io` boundary.  A corrupt, truncated, or
mis-typed artifact produces a single ``error: <path>: …`` line on
stderr and exit code **4** (never a traceback); malformed *usage* (a
well-formed ``--counts`` that is not an object, ``--counts`` without
``--exposure``) keeps the conventional exit code 2.

The module is import-safe (no work at import time) and `main` takes an
argv list, so tests drive it directly.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, Optional, Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Quantitative Risk Norm (Warg et al., DSN-W 2020) "
                    "— reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures as text")
    figures.add_argument("--out", type=Path, default=None,
                         help="directory to write one file per figure "
                              "(default: print to stdout)")

    goals = sub.add_parser(
        "goals", help="derive the example safety-goal set")
    goals.add_argument("--improvement", type=float, default=None,
                       help="calibrate the norm as this many times safer "
                            "than the human-driver baseline (default: use "
                            "the Fig. 3 example norm)")
    goals.add_argument("--objective", choices=["max-total", "max-min"],
                       default="max-min", help="LP allocation objective")
    goals.add_argument("--json", type=Path, default=None,
                       help="also write the goal set as JSON here")

    verify = sub.add_parser(
        "verify", help="verify a stored goal set against observed counts")
    verify.add_argument("goals_json", type=Path,
                        help="goal set JSON produced by 'repro goals --json'")
    verify.add_argument("--counts", required=True,
                        help="JSON object of observed counts per incident "
                             "type, e.g. '{\"I1\": 3}'")
    verify.add_argument("--exposure", type=float, required=True,
                        help="exposure over which the counts were observed "
                             "(norm units, typically hours)")
    verify.add_argument("--confidence", type=float, default=0.95)

    review = sub.add_parser(
        "review", help="run the automated confirmation review on a stored "
                       "goal set")
    review.add_argument("goals_json", type=Path)
    review.add_argument("--counts", default=None,
                        help="optional JSON object of observed counts")
    review.add_argument("--exposure", type=float, default=None,
                        help="exposure for the counts (required with "
                             "--counts)")

    dossier = sub.add_parser(
        "dossier", help="simulate a campaign and emit the full dossier")
    dossier.add_argument("--hours", type=float, default=5000.0)
    dossier.add_argument("--seed", type=int, default=2020)
    dossier.add_argument("--scale", type=float, default=1e4,
                         help="norm relaxation factor so the simulated "
                              "campaign can reach verdicts (default 1e4)")
    dossier.add_argument("--out", type=Path, default=None,
                         help="write the dossier here (default: stdout)")
    _add_parallel_flags(dossier)

    fleet = sub.add_parser(
        "fleet", help="run a parallel fleet campaign and report incident "
                      "statistics")
    fleet.add_argument("--hours", type=float, default=2000.0)
    fleet.add_argument("--seed", type=int, default=2020)
    fleet.add_argument("--policy",
                       choices=["cautious", "nominal", "aggressive"],
                       default="nominal")
    fleet.add_argument("--progress", action="store_true",
                       help="stream per-chunk progress to stderr")
    fleet.add_argument("--json", type=Path, default=None,
                       help="also write the campaign summary as JSON here")
    fleet.add_argument("--scale", type=float, default=1e4,
                       help="norm relaxation factor for the telemetry "
                            "budget-utilisation table (default 1e4, as "
                            "for 'repro dossier')")
    fleet.add_argument("--accelerator",
                       choices=["none", "is", "splitting"], default="none",
                       help="rare-event accelerator for the collision-rate "
                            "estimate: 'is' (importance sampling under a "
                            "proposal tilt, exact reweighting), 'splitting' "
                            "(multilevel splitting on the near-miss "
                            "severity ladder), or 'none' (default: the "
                            "standard fleet campaign)")
    fleet.add_argument("--accel-replications", type=int, default=64,
                       help="replications per context stratum for the "
                            "accelerated estimators (default 64)")
    fleet.add_argument("--accel-hours", type=float, default=10.0,
                       help="simulated hours per replication for the "
                            "accelerated estimators (default 10)")
    fleet.add_argument("--tilt-rate", type=float, default=1.0,
                       help="IS proposal: encounter-rate multiplier")
    fleet.add_argument("--tilt-sight", type=float, default=1.0,
                       help="IS proposal: sight-distance scale (<1 makes "
                            "occluded conflicts common)")
    fleet.add_argument("--tilt-speed", type=float, default=0.0,
                       help="IS proposal: counterpart-speed shift in km/h")
    fleet.add_argument("--tilt-degradation", type=float, default=1.0,
                       help="IS proposal: braking-fault occupancy "
                            "multiplier")
    _add_parallel_flags(fleet)

    serve = sub.add_parser(
        "serve", help="run the crash-safe campaign service daemon")
    serve.add_argument("--spool", type=Path, required=True,
                       help="the durable spool directory (job records, "
                            "results, checkpoints, service journal)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick a free port; the "
                            "bound address is published to the spool's "
                            "endpoint.json)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="bounded admission queue size; beyond it "
                            "submissions get a typed 429 with Retry-After "
                            "(default 16)")
    serve.add_argument("--max-runners", type=int, default=2,
                       help="concurrent campaign runner processes "
                            "(default 2)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds without heartbeat progress before a "
                            "runner is declared hung and its job requeued "
                            "(default 30)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="runner attempts per job before it is marked "
                            "failed (default 3)")
    serve.add_argument("--min-free-mb", type=float, default=128.0,
                       help="free-space low watermark in MiB; below it "
                            "the daemon degrades to cautious mode and "
                            "refuses new work with a typed 507 "
                            "(default 128)")
    serve.add_argument("--critical-free-mb", type=float, default=32.0,
                       help="free-space critical watermark in MiB; below "
                            "it in-flight runners are drained to their "
                            "checkpoints (default 32)")

    submit = sub.add_parser(
        "submit", help="submit a campaign spec to a running service")
    submit.add_argument("--spool", type=Path, required=True,
                        help="the daemon's spool (its endpoint.json names "
                             "the live address)")
    submit.add_argument("--policy",
                        choices=["cautious", "nominal", "aggressive"],
                        default="nominal")
    submit.add_argument("--hours", type=float, default=2000.0)
    submit.add_argument("--seed", type=int, default=2020)
    submit.add_argument("--chunk-hours", type=float, default=None)
    submit.add_argument("--workers", type=int, default=None)
    submit.add_argument("--engine", choices=["vectorized", "scalar"],
                        default="vectorized")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", choices=["high", "normal", "low"],
                        default="normal")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job reaches a terminal state "
                             "(exit 0 done, 1 failed/cancelled)")
    submit.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between --wait polls (default 0.2)")
    submit.add_argument("--retries", type=int, default=5,
                        help="honor typed 429/503/507 retry hints with "
                             "capped exponential backoff this many times "
                             "before giving up (default 5; 0 disables)")

    jobs = sub.add_parser(
        "jobs", help="list a service's job records (or inspect one)")
    jobs.add_argument("--spool", type=Path, required=True)
    jobs.add_argument("job_id", nargs="?", default=None,
                      help="inspect this job (record + checkpoint "
                           "progress) instead of listing")
    jobs.add_argument("--json", action="store_true",
                      help="print raw JSON instead of the table")

    cancel = sub.add_parser(
        "cancel", help="cancel one service job")
    cancel.add_argument("--spool", type=Path, required=True)
    cancel.add_argument("job_id")

    fsck = sub.add_parser(
        "fsck", help="audit (and optionally repair) a service spool")
    fsck.add_argument("--spool", type=Path, required=True,
                      help="the spool directory to audit (daemon must "
                           "be stopped for --repair)")
    fsck.add_argument("--repair", action="store_true",
                      help="apply the provably-safe repairs (sweep "
                           "orphans, truncate torn journal tails, requeue "
                           "dangling work) and quarantine the rest")
    fsck.add_argument("--json", action="store_true",
                      help="print the full report as JSON")

    gc = sub.add_parser(
        "gc", help="reclaim spool space under a retention policy")
    gc.add_argument("--spool", type=Path, required=True,
                    help="the spool directory to collect (daemon must "
                         "be stopped)")
    gc.add_argument("--keep-last", type=int, default=8,
                    help="terminal jobs kept per tenant, newest first "
                         "(default 8)")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="also collect terminal jobs and unreferenced "
                         "results older than this (default: no age "
                         "bound)")
    gc.add_argument("--compact-journal", action="store_true",
                    help="archive the journal chain and start a fresh "
                         "one whose genesis entry names the archive")
    gc.add_argument("--dry-run", action="store_true",
                    help="compute and print the sweep without deleting "
                         "anything")
    gc.add_argument("--json", action="store_true",
                    help="print the report as JSON")

    watch = sub.add_parser(
        "watch", help="render a campaign's live flight-recorder status")
    watch.add_argument("path", type=Path,
                       help="a --flight-recorder directory or its "
                            "status.json")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes (default 2)")
    watch.add_argument("--once", action="store_true",
                       help="render the current status once and exit")

    return parser


def _add_parallel_flags(sub_parser: argparse.ArgumentParser) -> None:
    """The fleet-execution knobs shared by simulation subcommands."""
    sub_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the fleet runner (default: all cores; "
             "the result is identical for any value)")
    sub_parser.add_argument(
        "--chunk-hours", type=float, default=None,
        help="hours per shard handed to one worker (default: 250; part "
             "of the RNG layout, so changing it changes the draws)")
    sub_parser.add_argument(
        "--engine", choices=["vectorized", "scalar"], default="vectorized",
        help="encounter engine: 'vectorized' (structure-of-arrays hot "
             "path, default) or 'scalar' (the reference oracle; also part "
             "of the RNG layout, so the engines' draws differ)")
    sub_parser.add_argument(
        "--telemetry", type=Path, default=None,
        help="enable runtime telemetry and write the RunManifest JSON "
             "(seed, versions, span tree, metrics, budget utilisation) "
             "here; the simulated draws are bitwise unaffected")
    sub_parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="persist every committed chunk to this campaign checkpoint "
             "(atomic writes; the simulated draws are bitwise unaffected)")
    sub_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint: restore its committed chunks and "
             "re-run only the missing ones (bit-for-bit identical to an "
             "uninterrupted run)")
    sub_parser.add_argument(
        "--max-attempts", type=int, default=None,
        help="per-chunk execution attempts before the chunk is "
             "quarantined and the campaign fails partially (default 3)")
    sub_parser.add_argument(
        "--chunk-timeout", type=float, default=None,
        help="seconds before one chunk execution is declared hung and "
             "retried on a rebuilt pool (default: no timeout)")
    sub_parser.add_argument(
        "--record-sink", type=Path, default=None,
        help="spill every committed chunk's incident records to this "
             "directory as digest-signed repro.record-block/v1 parts "
             "(atomic writes, O(chunk) resident memory; the simulated "
             "draws are bitwise unaffected)")
    sub_parser.add_argument(
        "--flight-recorder", type=Path, default=None,
        help="record the campaign's flight data into this directory: a "
             "digest-chained repro.event-log/v1 journal plus an "
             "atomically updated status.json that 'repro watch DIR' "
             "renders live (the simulated draws are bitwise unaffected); "
             "with --resume an existing journal's chain is continued")
    sub_parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="export the run's span tree and journal events as Chrome "
             "trace-event JSON (chrome://tracing, Perfetto)")
    sub_parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="export the run's merged metrics as Prometheus text "
             "exposition")


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core import (allocate_lp, derive_safety_goals, example_norm,
                            figure4_taxonomy, figure5_incident_types)
    from repro.core.severity import IsoSeverity
    from repro.hara.asil import risk_reduction_waterfall
    from repro.hara.controllability import ControllabilityClass
    from repro.hara.exposure import ExposureClass
    from repro.reporting import (figure1_waterfall, figure2_unified_axis,
                                 figure3_risk_norm, figure4_tree,
                                 figure5_assignment)

    norm = example_norm()
    allocation = allocate_lp(norm, list(figure5_incident_types()),
                             objective="max-min")
    goals = derive_safety_goals(allocation)
    waterfalls = [risk_reduction_waterfall(severity, ExposureClass.E4,
                                           ControllabilityClass.C3)
                  for severity in IsoSeverity]
    rendered = {
        "fig1": figure1_waterfall(waterfalls),
        "fig2": figure2_unified_axis(norm),
        "fig3": figure3_risk_norm(allocation),
        "fig4": figure4_tree(figure4_taxonomy()),
        "fig5": figure5_assignment(goals),
    }
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for name, text in rendered.items():
            (args.out / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {len(rendered)} figures to {args.out}")
    else:
        for name, text in rendered.items():
            print(text)
            print()
    return 0


def _build_goals(improvement: Optional[float], objective: str):
    from repro.core import (allocate_lp, derive_safety_goals, example_norm,
                            figure4_taxonomy, figure5_incident_types,
                            norm_from_human_baseline)

    if improvement is not None:
        norm = norm_from_human_baseline(
            f"{improvement:g}x-human QRN", improvement)
    else:
        norm = example_norm()
    allocation = allocate_lp(norm, list(figure5_incident_types()),
                             objective=objective)
    return derive_safety_goals(allocation, taxonomy=figure4_taxonomy())


def _cmd_goals(args: argparse.Namespace) -> int:
    from repro.core import save_goal_set

    goals = _build_goals(args.improvement, args.objective)
    print(goals.render_all())
    print()
    print(goals.completeness_argument())
    if args.json is not None:
        # Tagged, digest-signed, atomically written (DESIGN §10); older
        # tagless files written before the boundary existed still load.
        save_goal_set(args.json, goals)
        print(f"\ngoal set written to {args.json}")
    return 0


def _parse_counts(text: str) -> Optional[Dict[str, int]]:
    """Parse an inline ``--counts`` payload through the I/O boundary.

    Malformed JSON (or NaN/Infinity tokens, nesting bombs, non-integer
    counts) raises a typed :class:`~repro.errors.ArtifactError` that
    ``main`` turns into a one-line diagnostic and exit code 4.  A
    *well-formed* payload of the wrong top-level shape returns ``None``
    so callers keep the conventional usage-error exit (2).
    """
    from repro.io import ArtifactValidationError, parse_artifact_text

    payload = parse_artifact_text(text, source="--counts")
    if not isinstance(payload, dict):
        return None
    counts: Dict[str, int] = {}
    for key, value in payload.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise ArtifactValidationError(
                f"count for {key!r} must be an integer, got {value!r}",
                source="--counts", field=str(key))
        counts[str(key)] = int(value)
    return counts


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core import load_goal_set
    from repro.core.verification import verify_against_counts

    goals = load_goal_set(args.goals_json)
    counts = _parse_counts(args.counts)
    if counts is None:
        print("--counts must be a JSON object", file=sys.stderr)
        return 2
    report = verify_against_counts(goals, counts, args.exposure,
                                   confidence=args.confidence)
    print(report.summary())
    return 0 if not report.any_violated else 1


def _default_mix() -> Dict[str, float]:
    """The canonical context mix (one definition, in :mod:`repro.traffic`)."""
    from repro.traffic import DEFAULT_MIX
    return dict(DEFAULT_MIX)


def _retry_policy(args: argparse.Namespace):
    """The :class:`~repro.stats.RetryPolicy` the CLI flags describe.

    Out-of-range values (``--chunk-timeout 0``, a negative
    ``--max-attempts``) are caught at this boundary and surface as a
    one-line typed diagnostic (exit 4), never a constructor traceback.
    """
    from repro.stats import RetryPolicy

    overrides = {}
    if getattr(args, "max_attempts", None) is not None:
        overrides["max_attempts"] = args.max_attempts
    if getattr(args, "chunk_timeout", None) is not None:
        overrides["timeout_s"] = args.chunk_timeout
    try:
        return RetryPolicy(**overrides)
    except ValueError as exc:
        raise ReproError(f"invalid retry policy: {exc}") from exc


def _run_campaign(policy, hours: float, seed: int,
                  workers: Optional[int], chunk_hours: Optional[float],
                  engine: str = "vectorized", progress=None,
                  retry=None, checkpoint=None, resume: bool = False,
                  failure_sink=None, record_sink=None):
    """One fleet campaign over the default world and context mix."""
    from repro.traffic import (DEFAULT_CHUNK_HOURS, DEFAULT_RETRY_POLICY,
                               BrakingSystem, EncounterGenerator,
                               default_context_profiles, default_perception,
                               run_fleet)

    world = EncounterGenerator(default_context_profiles())
    return run_fleet(
        policy, world, default_perception(), BrakingSystem(), _default_mix(),
        hours, seed, workers=workers,
        chunk_hours=DEFAULT_CHUNK_HOURS if chunk_hours is None
        else chunk_hours,
        engine=engine, progress=progress,
        retry=DEFAULT_RETRY_POLICY if retry is None else retry,
        checkpoint=checkpoint, resume=resume, failure_sink=failure_sink,
        record_sink=record_sink)


def _open_record_sink(args: argparse.Namespace):
    """The --record-sink spill directory as a context, or a no-op."""
    if getattr(args, "record_sink", None) is None:
        return nullcontext(None)
    from repro.traffic import RecordSink
    return RecordSink(args.record_sink)


def _open_recorder(args: argparse.Namespace, goals=None, types=None):
    """The --flight-recorder directory as a context, or a no-op.

    A pre-existing journal without ``--resume`` raises
    ``FileExistsError`` — the same same-path discipline (and exit code
    2) as ``--checkpoint``.
    """
    if getattr(args, "flight_recorder", None) is None:
        return nullcontext(None)
    from repro.obs import FlightRecorder
    return FlightRecorder(args.flight_recorder, goals=goals, types=types,
                          resume=bool(getattr(args, "resume", False)))


def _campaign_session(args: argparse.Namespace):
    """A telemetry session when any consumer of one was requested."""
    if args.telemetry is None and args.trace_out is None \
            and args.metrics_out is None:
        return nullcontext()
    from repro.obs import telemetry_session
    return telemetry_session()


def _write_exports(args: argparse.Namespace, session, recorder) -> None:
    """The --trace-out / --metrics-out leg, after the campaign ended."""
    if session is None or (args.trace_out is None
                           and args.metrics_out is None):
        return
    from repro.obs import (read_journal, write_chrome_trace,
                           write_prometheus)

    snapshot = session.snapshot()
    if args.trace_out is not None:
        events = ()
        if recorder is not None:
            events, _ = read_journal(recorder.journal_path)
        write_chrome_trace(args.trace_out, snapshot.spans, events)
        print(f"trace exported to {args.trace_out}")
    if args.metrics_out is not None:
        write_prometheus(args.metrics_out, snapshot.metrics)
        print(f"metrics exported to {args.metrics_out}")


def _scaled_goals(scale: float):
    """The sim-scale goal set both simulation subcommands verify against."""
    from repro.core import (allocate_lp, derive_safety_goals, example_norm,
                            figure4_taxonomy, figure5_incident_types)

    norm = example_norm().tightened(scale, name="sim-scale QRN")
    types = list(figure5_incident_types())
    allocation = allocate_lp(norm, types, objective="max-min")
    return derive_safety_goals(allocation, taxonomy=figure4_taxonomy()), types


def _campaign_telemetry(args: argparse.Namespace, session, campaign,
                        goals, types, *, command: str, summary=None,
                        failure_log=None, event_log=None):
    """Budget utilisation + manifest for one telemetry-enabled campaign.

    Returns ``(snapshot, budget_report)`` and writes the
    :class:`~repro.obs.manifest.RunManifest` to ``args.telemetry``.
    ``failure_log`` is the campaign's recovered-fault audit trail (a
    sequence of :class:`~repro.stats.ChunkFailure` entries), embedded in
    the manifest when non-empty.
    """
    from repro.obs import BudgetMonitor, build_manifest
    from repro.stats import plan_chunks
    from repro.traffic import DEFAULT_CHUNK_HOURS

    snapshot = session.snapshot()
    monitor = BudgetMonitor(goals)
    monitor.observe_result(campaign, types)
    budget_report = monitor.utilisation()
    chunk_hours = (DEFAULT_CHUNK_HOURS if args.chunk_hours is None
                   else args.chunk_hours)
    manifest = build_manifest(
        snapshot, command=command, seed=args.seed, engine=args.engine,
        policy=campaign.policy_name, hours=args.hours, mix=_default_mix(),
        workers=args.workers, chunk_hours=chunk_hours,
        n_chunks=len(plan_chunks(args.hours, chunk_hours)),
        budget_report=budget_report, summary=summary,
        failure_log=(None if not failure_log
                     else [entry.to_dict() for entry in failure_log]),
        event_log=event_log)
    manifest.write(args.telemetry)
    print(f"telemetry manifest written to {args.telemetry}")
    return snapshot, budget_report


def _cmd_dossier(args: argparse.Namespace) -> int:
    from repro.core.verification import verify_against_counts
    from repro.reporting import build_dossier
    from repro.stats import CampaignPartialFailure
    from repro.traffic import (CheckpointMismatchError, cautious_policy,
                               type_counts)

    goals, types = _scaled_goals(args.scale)

    context = _campaign_session(args)
    failure_sink: list = []
    try:
        with context as session, _open_record_sink(args) as record_sink, \
                _open_recorder(args, goals, types) as recorder:
            if recorder is not None and args.resume \
                    and args.checkpoint is not None \
                    and Path(args.checkpoint).exists():
                recorder.observe_restored_checkpoint(args.checkpoint)
            progress = None
            if recorder is not None:
                progress = recorder.on_progress
            campaign = _run_campaign(
                cautious_policy(), args.hours, args.seed, args.workers,
                args.chunk_hours, args.engine, progress=progress,
                retry=_retry_policy(args),
                checkpoint=args.checkpoint, resume=args.resume,
                failure_sink=failure_sink, record_sink=record_sink)
    except (FileExistsError, CheckpointMismatchError) as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except CampaignPartialFailure as exc:
        print(f"dossier campaign failed partially: {exc}", file=sys.stderr)
        return 3
    if record_sink is not None:
        spilled = record_sink.summary()
        print(f"record sink: {spilled['parts']} parts, "
              f"{spilled['records']} records → {spilled['directory']}")
    counts, _ = type_counts(campaign, types)
    report = verify_against_counts(goals, counts, campaign.hours)
    snapshot = budget_report = None
    if args.telemetry is not None and session is not None:
        snapshot, budget_report = _campaign_telemetry(
            args, session, campaign, goals, types, command="repro dossier",
            failure_log=failure_sink,
            event_log=(None if recorder is None
                       else str(recorder.journal_path)))
    _write_exports(args, session, recorder)
    text = build_dossier(goals, report, telemetry=snapshot,
                         budget_utilisation=budget_report)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"dossier written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_accelerated(args: argparse.Namespace, policy) -> int:
    """The ``repro fleet --accelerator is|splitting`` branch.

    Runs a variance-reduced collision-rate estimate over the default
    world and context mix instead of the standard campaign, and reports
    the estimate with its error bar (plus weight diagnostics for IS).
    Exit 5 on a degenerate IS proposal (weight alarm tripped) — the
    estimate cannot be trusted and the tilt needs re-choosing.
    """
    from repro.stats import WeightDegeneracyError
    from repro.traffic import (BrakingSystem, EncounterGenerator,
                               ProposalTilt, accelerated_collision_rate,
                               default_context_profiles, default_perception)

    try:
        tilt = ProposalTilt(rate_scale=args.tilt_rate,
                            sight_scale=args.tilt_sight,
                            speed_shift_kmh=args.tilt_speed,
                            degradation_scale=args.tilt_degradation)
    except ValueError as exc:
        print(f"error: invalid proposal tilt: {exc}", file=sys.stderr)
        return 2
    world = EncounterGenerator(default_context_profiles())
    try:
        rate = accelerated_collision_rate(
            policy, world, default_perception(), BrakingSystem(),
            _default_mix(), accelerator=args.accelerator, seed=args.seed,
            tilt=tilt, replications_per_stratum=args.accel_replications,
            hours_per_replication=args.accel_hours)
    except WeightDegeneracyError as exc:
        print(f"importance weights degenerate: {exc}", file=sys.stderr)
        return 5
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = rate.as_result()
    print(f"ACCELERATED ESTIMATE — method {rate.method!r}, "
          f"policy {policy.name!r}, seed {args.seed}")
    print(f"  collision rate:  {result.mean:.4e} /h "
          f"(se {result.std_error:.2e}, {result.replications} replications)")
    lo, hi = result.ci()
    print(f"  95% CI:          [{lo:.4e}, {hi:.4e}]")
    for stratum in rate.estimate.strata:
        print(f"  {stratum.context}: {stratum.result.mean:.4e} /h "
              f"(se {stratum.result.std_error:.2e}, "
              f"weight {stratum.weight:g})")
    if rate.diagnostics is not None:
        diag = rate.diagnostics
        print(f"  weights:         ESS {diag.ess:.0f}/{diag.count} "
              f"({diag.ess_fraction:.1%}), max share "
              f"{diag.max_weight_fraction:.1%}")
    if args.json is not None:
        args.json.write_text(json.dumps(rate.to_dict(), indent=2))
        print(f"summary written to {args.json}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.core import figure5_incident_types
    from repro.obs import ThroughputMeter
    from repro.stats import CampaignPartialFailure
    from repro.traffic import (CheckpointMismatchError, policy_by_name,
                               type_counts)

    policy = policy_by_name(args.policy)

    if args.accelerator != "none":
        return _cmd_accelerated(args, policy)

    meter = ThroughputMeter()

    def show_progress(update) -> None:
        # Rates and ETA come from the ThroughputMeter over the metrics
        # the fleet runner streams — not ad-hoc arithmetic per call site.
        # Chunks restored from a checkpoint are excluded via the baseline
        # so a resumed campaign's rate/ETA reflect work actually done
        # *this* run, not the banked exposure.
        from repro.obs import format_bytes
        eta = meter.eta_s(update.hours_done, update.hours_total,
                          baseline=update.hours_resumed)
        eta_text = f"{eta:.0f} s" if math.isfinite(eta) else "--"
        resumed = (f" ({update.chunks_resumed} restored)"
                   if update.chunks_resumed else "")
        print(f"chunk {update.chunks_done}/{update.chunks_total}{resumed}: "
              f"{update.hours_done:.0f}/{update.hours_total:.0f} h, "
              f"{update.encounters_resolved} encounters, "
              f"{update.incidents_found} incidents, "
              f"{update.hard_braking_demands} hard-braking demands | "
              f"{meter.rate_per_s(update.chunks_done, baseline=update.chunks_resumed):.2f} chunks/s, "
              f"{meter.rate_per_s(update.encounters_resolved):.0f} "
              f"encounters/s, ETA {eta_text} | "
              f"{update.transport or '?'}, "
              f"{format_bytes(update.bytes_shipped)} shipped",
              file=sys.stderr)

    context = _campaign_session(args)
    recorder_goals = recorder_types = None
    if args.flight_recorder is not None:
        recorder_goals, recorder_types = _scaled_goals(args.scale)
    failure_sink: list = []
    try:
        with context as session, _open_record_sink(args) as record_sink, \
                _open_recorder(args, recorder_goals,
                               recorder_types) as recorder:
            if recorder is not None and args.resume \
                    and args.checkpoint is not None \
                    and Path(args.checkpoint).exists():
                recorder.observe_restored_checkpoint(args.checkpoint)
            progress = None
            if recorder is not None or args.progress:
                def progress(update) -> None:
                    if recorder is not None:
                        recorder.on_progress(update)
                    if args.progress:
                        show_progress(update)
            campaign = _run_campaign(
                policy, args.hours, args.seed, args.workers,
                args.chunk_hours, args.engine,
                progress=progress,
                retry=_retry_policy(args), checkpoint=args.checkpoint,
                resume=args.resume, failure_sink=failure_sink,
                record_sink=record_sink)
    except (FileExistsError, CheckpointMismatchError) as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except CampaignPartialFailure as exc:
        print(f"fleet campaign failed partially: {exc}", file=sys.stderr)
        # Deterministic diagnostics: the append order of the failure log
        # depends on thread timing, so sort by (chunk, attempt) before
        # printing — identical campaigns print identical reports.
        for failure in sorted(exc.failures,
                              key=lambda f: (f.chunk_index, f.attempt)):
            print(f"  chunk {failure.chunk_index} attempt "
                  f"{failure.attempt} [{failure.kind}]: {failure.message}",
                  file=sys.stderr)
        print(f"  quarantined chunks: "
              f"{', '.join(map(str, exc.quarantined))}", file=sys.stderr)
        if args.checkpoint is not None:
            print(f"  completed chunks persisted to {args.checkpoint}; "
                  f"rerun with --resume after fixing the fault",
                  file=sys.stderr)
        return 3
    types = list(figure5_incident_types())
    counts, unclassified = type_counts(campaign, types)
    # Cheap columnar counters — no record materialisation for the summary.
    collisions = campaign.collision_count()
    near_misses = campaign.num_records - collisions
    summary = {
        "policy": campaign.policy_name,
        "hours": campaign.hours,
        "seed": args.seed,
        "engine": args.engine,
        "context_hours": dict(campaign.context_hours),
        "encounters_resolved": campaign.encounters_resolved,
        "incidents": campaign.num_records,
        "collisions": collisions,
        "near_misses": near_misses,
        "collision_rate_per_hour": campaign.collision_rate_per_hour(),
        "hard_braking_demands": campaign.hard_braking_demands,
        "hard_braking_rate_per_hour": campaign.hard_braking_rate_per_hour(),
        "type_counts": counts,
        "unclassified": unclassified,
    }
    print(f"FLEET CAMPAIGN — policy {campaign.policy_name!r}, "
          f"{campaign.hours:g} h, seed {args.seed}, engine {args.engine}")
    print(f"  encounters resolved:   {campaign.encounters_resolved}")
    print(f"  incidents recorded:    {campaign.num_records} "
          f"({collisions} collisions, {near_misses} near-misses)")
    print(f"  collision rate:        "
          f"{campaign.collision_rate_per_hour():.3e} /h")
    print(f"  hard-braking demands:  {campaign.hard_braking_demands} "
          f"({campaign.hard_braking_rate_per_hour():.3e} /h "
          f"> {campaign.hard_braking_threshold_ms2:g} m/s²)")
    for type_id, count in sorted(counts.items()):
        print(f"  {type_id}: {count}")
    if record_sink is not None:
        spilled = record_sink.summary()
        summary["record_sink"] = spilled
        print(f"  record sink:           {spilled['parts']} parts, "
              f"{spilled['records']} records "
              f"({spilled['bytes_written']} bytes) → "
              f"{spilled['directory']}")
    if failure_sink:
        print(f"  recovered faults:      {len(failure_sink)} "
              f"(campaign result unaffected; see telemetry failure log)")
    if args.telemetry is not None and session is not None:
        goals, goal_types = _scaled_goals(args.scale)
        _, budget_report = _campaign_telemetry(
            args, session, campaign, goals, goal_types,
            command="repro fleet", summary=summary,
            failure_log=failure_sink,
            event_log=(None if recorder is None
                       else str(recorder.journal_path)))
        print()
        print(budget_report.render())
    _write_exports(args, session, recorder)
    if args.json is not None:
        args.json.write_text(json.dumps(summary, indent=2))
        print(f"summary written to {args.json}")
    return 0


def _cmd_review(args: argparse.Namespace) -> int:
    from repro.core import load_goal_set
    from repro.core.review import Severity, confirmation_review
    from repro.core.verification import verify_against_counts

    goals = load_goal_set(args.goals_json)
    report = None
    if args.counts is not None:
        if args.exposure is None:
            print("--exposure is required with --counts", file=sys.stderr)
            return 2
        counts = _parse_counts(args.counts)
        if counts is None:
            print("--counts must be a JSON object", file=sys.stderr)
            return 2
        report = verify_against_counts(goals, counts, args.exposure)
    findings = confirmation_review(goals, report)
    if not findings:
        print("confirmation review: no mechanical findings")
        return 0
    for finding in findings:
        print(finding.render())
    blockers = sum(1 for f in findings if f.severity is Severity.BLOCKER)
    print(f"\n{len(findings)} finding(s), {blockers} blocker(s)")
    return 1 if blockers else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    try:
        return serve(args.spool, host=args.host, port=args.port,
                     queue_limit=args.queue_limit,
                     max_runners=args.max_runners,
                     lease_ttl_s=args.lease_ttl,
                     max_attempts=args.max_attempts,
                     low_free_bytes=int(args.min_free_mb * 1024 * 1024),
                     critical_free_bytes=int(
                         args.critical_free_mb * 1024 * 1024))
    except ValueError as exc:
        # Bad knobs (e.g. --queue-limit 0) fail the CLI contract way:
        # one `error:` line, exit 4, no traceback.
        raise ReproError(f"invalid service configuration: {exc}") from exc


def _cmd_submit(args: argparse.Namespace) -> int:
    import time

    from repro.service import TERMINAL_STATES, ServiceClient

    spec: Dict[str, object] = {"policy": args.policy,
                               "hours": args.hours, "seed": args.seed,
                               "engine": args.engine}
    if args.chunk_hours is not None:
        spec["chunk_hours"] = args.chunk_hours
    if args.workers is not None:
        spec["workers"] = args.workers
    client = ServiceClient.from_spool(args.spool, retries=args.retries)
    reply = client.submit(spec, tenant=args.tenant,
                          priority=args.priority)
    job = reply["job"]
    verb = ("cached" if reply["cached"]
            else "accepted" if reply["created"] else "already submitted")
    print(f"job {job['job_id']} {verb} "
          f"(state {job['state']}, tenant {job['tenant']}, "
          f"priority {job['priority']})")
    if not args.wait:
        return 0
    while job["state"] not in TERMINAL_STATES:
        time.sleep(args.poll_interval)
        job = client.job(str(job["job_id"]))["job"]
    print(f"job {job['job_id']} finished: {job['state']}"
          + (f" ({job['error']})" if job.get("error") else ""))
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient.from_spool(args.spool)
    if args.job_id is not None:
        status = client.job(args.job_id)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        job = status["job"]
        print(f"job {job['job_id']}: {job['state']} "
              f"(tenant {job['tenant']}, priority {job['priority']}, "
              f"attempts {job['attempts']})")
        checkpoint = status.get("checkpoint")
        if checkpoint:
            print(f"  checkpoint: {checkpoint['chunks_banked']} chunks "
                  f"banked, {checkpoint['hours_banked']:g} h "
                  f"(indices {checkpoint['chunk_indices']})")
        if job.get("chunks_resumed") is not None:
            print(f"  chunks resumed on final attempt: "
                  f"{job['chunks_resumed']}")
        if job.get("error"):
            print(f"  error: {job['error']}")
        return 0
    jobs = client.jobs()
    if args.json:
        print(json.dumps({"jobs": jobs}, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs in the spool")
        return 0
    for job in jobs:
        print(f"{job['job_id']}  {job['state']:<9}  "
              f"tenant={job['tenant']}  priority={job['priority']}  "
              f"attempts={job['attempts']}  "
              f"hours={job['spec']['hours']:g}  "
              f"seed={job['spec']['seed']}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient.from_spool(args.spool)
    reply = client.cancel(args.job_id)
    job = reply["job"]
    print(f"job {job['job_id']} cancelled (was tenant {job['tenant']})")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.service import fsck_spool

    report = fsck_spool(args.spool, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.clean else 1
    for finding in report.findings:
        action = f"  [{finding.repair}]" if finding.repair else ""
        print(f"{finding.kind}: {finding.path}{action}")
        print(f"  {finding.detail}")
    summary = ", ".join(f"{kind} x{count}" for kind, count
                        in sorted(report.counts().items())) or "clean"
    print(f"fsck {report.root}: {report.jobs_checked} jobs, "
          f"{report.results_checked} results, "
          f"{report.checkpoints_checked} checkpoints, "
          f"{report.journal_entries} journal entries — {summary}"
          + (" (repaired)" if args.repair and report.findings else ""))
    return 0 if report.clean else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.service import RetentionPolicy, run_gc

    try:
        policy = RetentionPolicy(
            keep_last=args.keep_last,
            max_age_s=(None if args.max_age_days is None
                       else args.max_age_days * 86400.0))
    except ValueError as exc:
        raise ReproError(f"invalid retention policy: {exc}") from exc
    report = run_gc(args.spool, policy,
                    compact=args.compact_journal, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "would collect" if report.dry_run else "collected"
    print(f"gc {report.root}: {verb} {report.jobs_collected} jobs, "
          f"{report.results_collected} results, "
          f"{report.checkpoints_collected} checkpoints, "
          f"{report.scratch_collected} scratch files "
          f"({report.bytes_reclaimed} bytes); retained "
          f"{report.jobs_retained} terminal + {report.live_jobs} live")
    if report.journal_compacted:
        print(f"journal compacted (archive: {report.journal_archive})")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.obs import read_status, render_status
    from repro.obs.status import STATUS_FILENAME

    path = Path(args.path)
    if path.is_dir():
        path = path / STATUS_FILENAME
    terminal = {"finished", "failed", "interrupted"}
    while True:
        if not path.exists():
            if args.once:
                print(f"no status artifact at {path}", file=sys.stderr)
                return 2
            print(f"waiting for {path} ...", file=sys.stderr)
            time.sleep(args.interval)
            continue
        doc = read_status(path)
        print(render_status(doc))
        state = doc.get("state")
        if args.once or state in terminal:
            return 1 if state == "failed" else 0
        time.sleep(args.interval)
        print()


_COMMANDS = {
    "figures": _cmd_figures,
    "goals": _cmd_goals,
    "verify": _cmd_verify,
    "review": _cmd_review,
    "dossier": _cmd_dossier,
    "fleet": _cmd_fleet,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "cancel": _cmd_cancel,
    "fsck": _cmd_fsck,
    "gc": _cmd_gc,
    "watch": _cmd_watch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        # The typed artifact-error taxonomy (DESIGN §10): corrupt,
        # truncated, mis-typed, or wrong-schema artifacts surface as a
        # single diagnostic line — the message already names the file
        # (or inline flag) that failed — never as a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        # The fleet runner has already cancelled pending futures and torn
        # the pool down; every committed chunk is in the checkpoint (if
        # one was requested), so a later --resume picks up cleanly.  130
        # is the conventional 128 + SIGINT exit status.
        checkpoint = getattr(args, "checkpoint", None)
        hint = (f"; committed chunks are in {checkpoint} — rerun with "
                f"--resume" if checkpoint is not None else "")
        print(f"interrupted{hint}", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
