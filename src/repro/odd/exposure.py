"""Contextual exposure: time-and-place-dependent situational frequencies.

Implements the Sec. II-B-4 observation: "the frequency of many situational
conditions of the real world are very dependent on time and place.  For
example the exposure to snow on the road is typically dependent on the
season, and the frequency of pedestrians running across a street is most
likely something that varies in time and space.  It would be natural to
allow the ADS to get applicable data for its current context, rather than
statically do such coding in a HARA."

An :class:`ExposureModel` holds a base encounter rate per phenomenon and
multiplicative modulators per context dimension (season, locality, time of
day).  Querying it for a concrete context is the run-time adaptation the
paper advocates; :meth:`ExposureModel.global_average` is the design-time
flattening a conventional HARA performs — benchmark E7/E8 material shows
how far the two diverge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.quantities import Frequency, FrequencyUnit, PER_HOUR

__all__ = ["ContextDimension", "ExposureModel", "default_exposure_model"]


@dataclass(frozen=True)
class ContextDimension:
    """One context axis with multiplicative rate modulators per value.

    ``weights`` gives the long-run share of operating time per value
    (summing to 1); ``modulators`` the factor applied to a phenomenon's
    base rate when the context holds.  E.g. season=winter may modulate
    'snow_on_road' by 12× while summer modulates it by 0.
    """

    name: str
    weights: Mapping[str, float]
    modulators: Mapping[str, Mapping[str, float]]
    """phenomenon -> {value -> factor}; missing values default to 1."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("context dimension must be named")
        if not self.weights:
            raise ValueError(f"dimension {self.name!r} has no values")
        total = sum(self.weights.values())
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(
                f"dimension {self.name!r}: weights sum to {total}, not 1")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError(f"dimension {self.name!r}: negative weight")
        for phenomenon, factors in self.modulators.items():
            unknown = set(factors) - set(self.weights)
            if unknown:
                raise ValueError(
                    f"dimension {self.name!r}: modulators for {phenomenon!r} "
                    f"reference unknown values {sorted(unknown)}")
            if any(f < 0 for f in factors.values()):
                raise ValueError(
                    f"dimension {self.name!r}: negative modulator for "
                    f"{phenomenon!r}")

    @property
    def values(self) -> Tuple[str, ...]:
        return tuple(self.weights)

    def modulator(self, phenomenon: str, value: str) -> float:
        if value not in self.weights:
            raise KeyError(
                f"{value!r} not a value of dimension {self.name!r}")
        return self.modulators.get(phenomenon, {}).get(value, 1.0)

    def average_modulator(self, phenomenon: str) -> float:
        """Time-weighted mean factor — the design-time flattening."""
        return sum(self.weights[value] * self.modulator(phenomenon, value)
                   for value in self.weights)


class ExposureModel:
    """Base phenomenon rates modulated by operating context."""

    def __init__(self, base_rates: Mapping[str, Frequency],
                 dimensions: Sequence[ContextDimension]):
        if not base_rates:
            raise ValueError("exposure model needs at least one phenomenon")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate context dimension names")
        unit = next(iter(base_rates.values())).unit
        for phenomenon, rate in base_rates.items():
            if not rate.unit.compatible_with(unit):
                raise ValueError(
                    f"base rate for {phenomenon!r} has unit {rate.unit}, "
                    f"expected {unit}")
        self._base: Dict[str, Frequency] = dict(base_rates)
        self._dimensions: Dict[str, ContextDimension] = {d.name: d for d in dimensions}

    @property
    def phenomena(self) -> Tuple[str, ...]:
        return tuple(self._base)

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(self._dimensions)

    def rate_in_context(self, phenomenon: str,
                        context: Mapping[str, str]) -> Frequency:
        """The phenomenon's encounter rate under concrete context values.

        Context must state every dimension — partial contexts silently
        defaulting would reintroduce the global-average fallacy.
        """
        base = self._base_rate(phenomenon)
        missing = set(self._dimensions) - set(context)
        if missing:
            raise KeyError(f"context missing dimensions: {sorted(missing)}")
        factor = 1.0
        for name, dimension in self._dimensions.items():
            factor *= dimension.modulator(phenomenon, context[name])
        return base * factor

    def global_average(self, phenomenon: str) -> Frequency:
        """The one-number design-time rate a conventional HARA would use.

        Time-weighted over all dimensions assuming independence — both
        flattenings (averaging, independence) are exactly what Sec. II-B-4
        warns about.
        """
        base = self._base_rate(phenomenon)
        factor = 1.0
        for dimension in self._dimensions.values():
            factor *= dimension.average_modulator(phenomenon)
        return base * factor

    def peak_to_average(self, phenomenon: str) -> float:
        """Worst-context rate over the global average.

        A large ratio is the quantitative form of the paper's argument:
        designing for the global average under-protects the peak context,
        designing for the peak over-constrains everywhere else.
        """
        average = self.global_average(phenomenon)
        if average.is_zero():
            return math.inf
        worst = max(
            (self.rate_in_context(phenomenon, dict(zip(self._dimensions, combo)))
             for combo in _product_values(self._dimensions.values())),
            key=lambda rate: rate.rate)
        return worst / average

    def _base_rate(self, phenomenon: str) -> Frequency:
        try:
            return self._base[phenomenon]
        except KeyError:
            raise KeyError(f"unknown phenomenon {phenomenon!r}; "
                           f"known: {sorted(self._base)}") from None


def _product_values(dimensions) -> Tuple[Tuple[str, ...], ...]:
    import itertools
    return tuple(itertools.product(*(d.values for d in dimensions)))


def default_exposure_model(unit: Optional[FrequencyUnit] = None) -> ExposureModel:
    """A synthetic but realistically shaped contextual exposure model.

    Phenomena: VRU crossings, hard-braking demands, snow on road, animal
    crossings.  Context: season, locality, time of day.  Modulator shapes
    follow common sense (snow in winter, VRUs in urban daytime, animals on
    rural roads at night); magnitudes are synthetic.
    """
    if unit is None:
        unit = PER_HOUR
    base = {
        "vru_crossing": Frequency(2.0, unit),
        "hard_braking_demand": Frequency(0.05, unit),
        "snow_on_road": Frequency(0.02, unit),
        "animal_crossing": Frequency(0.01, unit),
    }
    season = ContextDimension(
        name="season",
        weights={"winter": 0.25, "spring": 0.25, "summer": 0.25, "autumn": 0.25},
        modulators={
            "snow_on_road": {"winter": 3.6, "spring": 0.3, "summer": 0.0,
                             "autumn": 0.1},
            "animal_crossing": {"autumn": 2.0, "spring": 1.2},
        },
    )
    locality = ContextDimension(
        name="locality",
        weights={"urban": 0.5, "suburban": 0.3, "rural": 0.2},
        modulators={
            "vru_crossing": {"urban": 1.8, "suburban": 0.4, "rural": 0.05},
            "animal_crossing": {"urban": 0.05, "suburban": 0.5, "rural": 4.0},
            "hard_braking_demand": {"urban": 1.5, "rural": 0.6},
        },
    )
    time_of_day = ContextDimension(
        name="time_of_day",
        weights={"day": 0.6, "evening": 0.25, "night": 0.15},
        modulators={
            "vru_crossing": {"day": 1.4, "evening": 0.8, "night": 0.15},
            "animal_crossing": {"night": 3.0, "evening": 1.5, "day": 0.4},
        },
    )
    return ExposureModel(base, [season, locality, time_of_day])
