"""ODD restriction as a safety-strategy lever.

Sec. IV: the QRN gives "considerable freedom to define a safety strategy
using trade-offs between performance of sensors/actuators ..., driving
style ... and verification effort (e.g. adjusting critical ODD parameters
to ease difficult verification tasks)".  This module quantifies the ODD
side of that trade: restricting the ODD removes exposure to contexts,
which lowers induced incident rates, which relaxes what the realization
must achieve per operating hour — at the price of feature coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.quantities import Frequency

__all__ = ["RestrictionEffect", "evaluate_restriction", "coverage_of"]


@dataclass(frozen=True)
class RestrictionEffect:
    """Outcome of restricting operation to a subset of contexts.

    ``coverage`` is the retained share of operating demand (1 = no
    restriction); ``rate_before``/``rate_after`` the exposure-weighted
    incident-relevant rate over the full vs. restricted context mix.
    """

    coverage: float
    rate_before: Frequency
    rate_after: Frequency

    @property
    def rate_reduction_factor(self) -> float:
        """How many times lower the rate is inside the restricted ODD."""
        if self.rate_after.is_zero():
            return math.inf
        return self.rate_before / self.rate_after

    def worthwhile(self, min_factor: float = 2.0,
                   min_coverage: float = 0.5) -> bool:
        """A crude decision rule: big rate win at acceptable coverage loss."""
        return (self.rate_reduction_factor >= min_factor
                and self.coverage >= min_coverage)


def coverage_of(weights: Mapping[str, float], kept: Sequence[str]) -> float:
    """Retained operating-demand share when only ``kept`` contexts remain."""
    unknown = set(kept) - set(weights)
    if unknown:
        raise KeyError(f"kept contexts not in mix: {sorted(unknown)}")
    if not kept:
        raise ValueError("restriction keeps no contexts")
    return sum(weights[context] for context in set(kept))


def evaluate_restriction(context_rates: Mapping[str, Frequency],
                         weights: Mapping[str, float],
                         kept: Sequence[str]) -> RestrictionEffect:
    """Effect of dropping contexts from the ODD.

    ``context_rates`` are per-context incident-relevant rates (e.g. from
    stratified simulation); ``weights`` the unrestricted operating mix
    (summing to 1).  The post-restriction rate reweights the kept contexts
    to a proper mix — the vehicle still drives full hours, just only in
    the kept contexts.
    """
    if set(context_rates) != set(weights):
        raise ValueError(
            f"context sets differ: rates {sorted(context_rates)} vs "
            f"weights {sorted(weights)}")
    total = sum(weights.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"weights must sum to 1, got {total}")
    coverage = coverage_of(weights, kept)
    unit = next(iter(context_rates.values())).unit
    before = Frequency.zero(unit)
    for context, rate in context_rates.items():
        before = before + rate * weights[context]
    kept_set = set(kept)
    after = Frequency.zero(unit)
    if coverage > 0:
        for context in kept_set:
            after = after + context_rates[context] * (weights[context] / coverage)
    return RestrictionEffect(coverage=coverage, rate_before=before,
                             rate_after=after)
