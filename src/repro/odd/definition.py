"""Operational design domain (ODD) definitions.

The ODD is the QRN's partner artefact: "we do not restrict the use of the
ADS other than the ODD limits, the safety case needs to be valid inside
the entire ODD regardless of where, when, and how the feature is used"
(Sec. III-A).  The paper defers the ODD's role in the safety argument to
Gyllenhammar et al. [5]; here we model the minimum the QRN workflow needs:

* a named set of parameter ranges/value sets the feature claims to cover;
* membership tests for concrete operating conditions;
* containment/restriction algebra — a restricted ODD is the standard
  lever for trading verification effort against feature scope (Sec. IV:
  "adjusting critical ODD parameters to ease difficult verification
  tasks").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["OddParameter", "CategoricalOddParameter", "RangeOddParameter",
           "OperationalDesignDomain"]


@dataclass(frozen=True)
class CategoricalOddParameter:
    """An ODD axis with a discrete set of covered values."""

    name: str
    covered: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ODD parameter must be named")
        if not self.covered:
            raise ValueError(f"ODD parameter {self.name!r} covers nothing")

    def admits(self, value: object) -> bool:
        return value in self.covered

    def is_subset_of(self, other: "CategoricalOddParameter") -> bool:
        return self.covered <= other.covered

    def describe(self) -> str:
        return f"{self.name} ∈ {{{', '.join(sorted(self.covered))}}}"


@dataclass(frozen=True)
class RangeOddParameter:
    """An ODD axis with a covered closed interval ``[low, high]``."""

    name: str
    low: float
    high: float
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ODD parameter must be named")
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise ValueError(f"ODD parameter {self.name!r} bounds must be finite")
        if self.low > self.high:
            raise ValueError(
                f"ODD parameter {self.name!r}: low {self.low} > high {self.high}")

    def admits(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= float(value) <= self.high

    def is_subset_of(self, other: "RangeOddParameter") -> bool:
        return self.low >= other.low and self.high <= other.high

    def describe(self) -> str:
        unit = f" {self.unit}" if self.unit else ""
        return f"{self.name} ∈ [{self.low:g}, {self.high:g}]{unit}"


OddParameter = Union[CategoricalOddParameter, RangeOddParameter]


class OperationalDesignDomain:
    """A named set of ODD parameters with membership and containment."""

    def __init__(self, name: str, parameters: Sequence[OddParameter]):
        if not name:
            raise ValueError("ODD must be named")
        if not parameters:
            raise ValueError("ODD needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate ODD parameter names")
        self.name = name
        self._parameters: Dict[str, OddParameter] = {p.name: p for p in parameters}

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(self._parameters)

    def parameter(self, name: str) -> OddParameter:
        try:
            return self._parameters[name]
        except KeyError:
            raise KeyError(f"unknown ODD parameter {name!r}; "
                           f"known: {sorted(self._parameters)}") from None

    def contains(self, conditions: Mapping[str, object]) -> bool:
        """Whether concrete operating conditions lie inside the ODD.

        Conditions must cover every ODD parameter — an unstated axis is an
        unverified claim, so missing keys raise rather than default.
        """
        missing = set(self._parameters) - set(conditions)
        if missing:
            raise KeyError(f"conditions missing ODD parameters: {sorted(missing)}")
        return all(parameter.admits(conditions[name])
                   for name, parameter in self._parameters.items())

    def violated_parameters(self, conditions: Mapping[str, object]) -> Tuple[str, ...]:
        """Which parameters the conditions fall outside (empty = inside)."""
        missing = set(self._parameters) - set(conditions)
        if missing:
            raise KeyError(f"conditions missing ODD parameters: {sorted(missing)}")
        return tuple(name for name, parameter in self._parameters.items()
                     if not parameter.admits(conditions[name]))

    def is_subset_of(self, other: "OperationalDesignDomain") -> bool:
        """Whether this ODD is entirely contained in ``other``.

        Axes the wider ODD does not mention are unconstrained there;
        axes this ODD does not mention but ``other`` constrains make the
        answer False (we claim conditions the other excludes).
        """
        for name, their_parameter in other._parameters.items():
            ours = self._parameters.get(name)
            if ours is None:
                return False
            if type(ours) is not type(their_parameter):
                raise ValueError(
                    f"ODD parameter {name!r} is categorical in one ODD and "
                    "a range in the other — not comparable")
            if not ours.is_subset_of(their_parameter):  # type: ignore[arg-type]
                return False
        return True

    def restricted(self, name: str, parameter: OddParameter,
                   *, new_name: Optional[str] = None) -> "OperationalDesignDomain":
        """A tighter ODD with one parameter replaced.

        The replacement must be a subset of the original — restriction
        only ever narrows (Sec. IV's verification-effort lever).
        """
        original = self.parameter(name)
        if parameter.name != name:
            raise ValueError(
                f"replacement parameter is named {parameter.name!r}, not {name!r}")
        if type(parameter) is not type(original):
            raise ValueError(f"cannot change the kind of parameter {name!r}")
        if not parameter.is_subset_of(original):  # type: ignore[arg-type]
            raise ValueError(
                f"replacement for {name!r} is not a subset of the original "
                "— restriction must narrow the ODD")
        parameters = [parameter if p.name == name else p
                      for p in self._parameters.values()]
        return OperationalDesignDomain(
            new_name if new_name is not None else f"{self.name} (restricted)",
            parameters)

    def describe(self) -> str:
        lines = [f"ODD {self.name!r}:"]
        lines.extend(f"  {p.describe()}" for p in self._parameters.values())
        return "\n".join(lines)
