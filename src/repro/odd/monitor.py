"""Runtime ODD monitoring.

The norm is only claimed *inside* the ODD (Sec. III-A), so a deployed ADS
must know, moment to moment, whether it is still inside — and leave
(or hand over) within a bounded time when it is not.  The monitor here
consumes a stream of condition samples against an
:class:`~repro.odd.definition.OperationalDesignDomain`, tracks
transitions, and audits the exit-handling guarantee:

* every excursion (contiguous out-of-ODD interval) is recorded with its
  duration and the parameters violated;
* :meth:`OddMonitor.unhandled_excursions` lists excursions longer than
  the declared grace period — each one is operating time the safety case
  does not cover, which the verification layer must treat as uncovered
  exposure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from .definition import OperationalDesignDomain

__all__ = ["Excursion", "OddMonitor"]


@dataclass(frozen=True)
class Excursion:
    """One contiguous out-of-ODD interval."""

    start: float
    end: float
    violated: Tuple[str, ...]
    """ODD parameters violated at any point during the excursion."""

    @property
    def duration(self) -> float:
        return self.end - self.start


class OddMonitor:
    """Streams condition samples and accounts for in/out-of-ODD time.

    Samples must arrive in strictly increasing time order; each sample is
    taken to describe conditions from its timestamp until the next one
    (step-function semantics), so the final sample needs a closing call
    to :meth:`finish`.
    """

    def __init__(self, odd: OperationalDesignDomain,
                 grace_period: float):
        if grace_period <= 0 or not math.isfinite(grace_period):
            raise ValueError("grace period must be positive and finite")
        self.odd = odd
        self.grace_period = grace_period
        self._last_time: Optional[float] = None
        self._last_inside: Optional[bool] = None
        self._current_violations: set = set()
        self._excursion_start: Optional[float] = None
        self._excursions: List[Excursion] = []
        self._time_inside = 0.0
        self._time_outside = 0.0
        self._finished = False

    def observe(self, time: float, conditions: Mapping[str, object]) -> bool:
        """Feed one sample; returns whether conditions are inside the ODD."""
        if self._finished:
            raise RuntimeError("monitor already finished")
        if self._last_time is not None and time <= self._last_time:
            raise ValueError(
                f"samples must be strictly increasing in time "
                f"({time} after {self._last_time})")
        violated = self.odd.violated_parameters(conditions)
        inside = not violated
        if self._last_time is not None:
            self._credit_interval(self._last_time, time)
        if not inside:
            if self._excursion_start is None:
                self._excursion_start = time
            self._current_violations |= set(violated)
        else:
            self._close_excursion(time)
        self._last_time = time
        self._last_inside = inside
        return inside

    def _credit_interval(self, start: float, end: float) -> None:
        span = end - start
        if self._last_inside:
            self._time_inside += span
        else:
            self._time_outside += span

    def _close_excursion(self, time: float) -> None:
        if self._excursion_start is not None:
            self._excursions.append(Excursion(
                start=self._excursion_start,
                end=time,
                violated=tuple(sorted(self._current_violations)),
            ))
            self._excursion_start = None
            self._current_violations = set()

    def finish(self, time: float) -> None:
        """Close the stream at ``time``; open excursions end here."""
        if self._finished:
            raise RuntimeError("monitor already finished")
        if self._last_time is None:
            raise RuntimeError("cannot finish a monitor that saw no samples")
        if time < self._last_time:
            raise ValueError("finish time precedes the last sample")
        if time > self._last_time:
            self._credit_interval(self._last_time, time)
        self._close_excursion(time)
        self._finished = True

    # -- accounting ----------------------------------------------------------

    @property
    def time_inside(self) -> float:
        return self._time_inside

    @property
    def time_outside(self) -> float:
        return self._time_outside

    @property
    def excursions(self) -> Tuple[Excursion, ...]:
        return tuple(self._excursions)

    def availability(self) -> float:
        """Share of monitored time spent inside the ODD."""
        total = self._time_inside + self._time_outside
        if total == 0:
            raise ValueError("no monitored time accumulated")
        return self._time_inside / total

    def unhandled_excursions(self) -> List[Excursion]:
        """Excursions exceeding the grace period — uncovered exposure.

        The safety case's claims hold inside the ODD; an excursion longer
        than the handover/stop grace period means the vehicle operated
        outside its assured envelope.
        """
        return [e for e in self._excursions if e.duration > self.grace_period]

    def covered_exposure(self) -> float:
        """Exposure the norm's claims actually cover.

        Inside time plus excursions within grace (the declared, assured
        handover behaviour), minus nothing else — time in unhandled
        excursions is excluded.
        """
        handled_outside = sum(min(e.duration, self.grace_period)
                              for e in self._excursions)
        return self._time_inside + handled_outside

    def summary(self) -> str:
        unhandled = self.unhandled_excursions()
        return (f"ODD monitor [{self.odd.name}]: "
                f"{self._time_inside:g} in / {self._time_outside:g} out, "
                f"{len(self._excursions)} excursion(s), "
                f"{len(unhandled)} unhandled (grace {self.grace_period:g})")
