"""Operational design domain: definitions, contextual exposure, restriction.

The ODD bounds where the QRN safety case must hold (Sec. III-A); the
contextual exposure model carries the Sec. II-B-4 argument that situation
frequencies are time/place-dependent; restriction quantifies the Sec. IV
trade between feature coverage and verification burden.
"""

from .definition import (CategoricalOddParameter, OddParameter,
                         OperationalDesignDomain, RangeOddParameter)
from .exposure import ContextDimension, ExposureModel, default_exposure_model
from .monitor import Excursion, OddMonitor
from .restriction import RestrictionEffect, coverage_of, evaluate_restriction

__all__ = [
    "OperationalDesignDomain",
    "OddParameter",
    "CategoricalOddParameter",
    "RangeOddParameter",
    "ContextDimension",
    "ExposureModel",
    "default_exposure_model",
    "RestrictionEffect",
    "coverage_of",
    "evaluate_restriction",
    "Excursion",
    "OddMonitor",
]
