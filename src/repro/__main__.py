"""``python -m repro`` — the same entry point as the ``repro`` script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
