"""Vectorized structure-of-arrays encounter engine.

The per-core hot path behind fleet-scale QRN verification.  The scalar
simulator (:mod:`.simulator`) resolves encounters one Python object at a
time — transparent, and kept as the reference oracle — but the sample
sizes that quantitative acceptance criteria demand (cf. de Gelder &
Op den Camp; Putze et al.) need the per-core path to be array code.  This
engine batches every draw and every kinematic resolution per
(context × counterpart class) group and only materialises
:class:`~repro.core.incident.IncidentRecord` objects for the rare
elements that actually become collisions, near-misses, or induced
incidents.

RNG sub-stream layout (the engine's determinism contract, also in
DESIGN §6):

* ``simulate(engine="vectorized")`` spawns **one child generator per
  active counterpart class** of the context, in the canonical order of
  :meth:`EncounterGenerator.active_classes` (sorted by class name).
* On its own sub-stream, each class group draws, whole-array and in this
  fixed order: Poisson count → arrival times → sight distances →
  counterpart speeds → cue uniforms (generation,
  :meth:`EncounterGenerator.sample_class_batch`); then capability
  uniforms → perception miss uniforms → perception fraction normals
  (resolution); then one follower uniform per hard-braking demand and
  one distance + one speed uniform per induced incident.
* Because every draw is whole-array on a private sub-stream, the results
  are a pure function of ``(seed, context, hours, class set)`` — no
  internal batching, chunking, or vector width can change them.

The draw *order* necessarily differs from the scalar path (which
interleaves classes by arrival time and skips draws branch-by-branch),
so scalar and vectorized runs of one seed are statistically — not
bitwise — equal; :mod:`tests.traffic.test_engine_equivalence` enforces
both that statistical agreement and exact record-level agreement on
single-encounter batches, where the layouts coincide.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from dataclasses import dataclass, field

from ..core.incident import IncidentRecord
from ..core.taxonomy import ActorClass
from ..obs.session import active_session, maybe_span
from ..stats.importance import WeightDiagnostics, bernoulli_log_ratio
from .dynamics import kmh_to_ms, ms_to_kmh, resolve_braking_arrays
from .encounters import (EncounterBatch, EncounterGenerator, ProposalTilt,
                         encounter_log_weights)
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy

from .records import RecordBlock, actor_code

__all__ = ["resolve_batch", "resolve_batch_traced", "resolve_block_traced",
           "simulate_vectorized", "simulate_importance", "ImportanceRun",
           "CROSSING_CLASSES"]

CROSSING_CLASSES = frozenset({ActorClass.VRU, ActorClass.ANIMAL,
                              ActorClass.STATIC_OBJECT})
"""Classes that block the ego's path: the closing speed is the ego's own
speed.  Same-direction traffic closes at the speed difference."""


def resolve_batch(batch: EncounterBatch, policy: TacticalPolicy,
                  perception: PerceptionModel, braking: BrakingSystem,
                  config: "SimulationConfig",
                  rng: np.random.Generator,
                  time_offset_h: float = 0.0,
                  ) -> Tuple[RecordBlock, int]:
    """Resolve one (context, class) batch; returns (block, hard demands).

    ``rng`` is the batch's own sub-stream, already advanced past the
    generation draws; this function performs the resolution draws in the
    documented order (capabilities, perception, follower) and then pure
    array math.  Incidents come back as one columnar
    :class:`~repro.traffic.records.RecordBlock` — no per-row Python
    objects on this path — unsorted (the caller canonicalises);
    ``block.to_records()`` materialises the object view when needed.
    """
    block, _, _, n_hard = resolve_block_traced(
        batch, policy, perception, braking, config, rng, time_offset_h)
    return block, n_hard


def resolve_block_traced(batch: EncounterBatch, policy: TacticalPolicy,
                         perception: PerceptionModel, braking: BrakingSystem,
                         config: "SimulationConfig",
                         rng: np.random.Generator,
                         time_offset_h: float = 0.0,
                         ) -> Tuple[RecordBlock, np.ndarray,
                                    np.ndarray, int]:
    """:func:`resolve_batch` plus per-record and per-encounter provenance.

    Returns ``(block, sources, degraded, n_hard)``: ``sources`` maps
    each block row to the index (within ``batch``) of the encounter that
    produced it — induced incidents point at the encounter whose hard
    stop triggered them — and ``degraded`` is the per-encounter braking
    fault-state mask.  Identical draws and arithmetic to
    :func:`resolve_batch`; the importance sampler uses the provenance to
    attach records their encounters' likelihood-ratio weights and to
    reweight tilted fault occupancies exactly.
    """
    n = len(batch)
    session = active_session()
    if session is not None:
        session.metrics.counter("engine.batches").inc()
        session.metrics.histogram("engine.batch_size").observe(n)
    if n == 0:
        return (RecordBlock.empty(), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=bool), 0)
    with maybe_span("resolve_batch"):
        return _resolve_batch_body(batch, policy, perception, braking,
                                   config, rng, time_offset_h)


def resolve_batch_traced(batch: EncounterBatch, policy: TacticalPolicy,
                         perception: PerceptionModel, braking: BrakingSystem,
                         config: "SimulationConfig",
                         rng: np.random.Generator,
                         time_offset_h: float = 0.0,
                         ) -> Tuple[List[IncidentRecord], List[int],
                                    np.ndarray, int]:
    """:func:`resolve_block_traced` with the rows materialised.

    The object-view compatibility wrapper for callers that walk records
    one by one (the importance sampler aligning per-record weights);
    identical draws, identical values.
    """
    block, sources, degraded, n_hard = resolve_block_traced(
        batch, policy, perception, braking, config, rng, time_offset_h)
    return block.to_records(), [int(i) for i in sources], degraded, n_hard


def _resolve_batch_body(batch: EncounterBatch, policy: TacticalPolicy,
                        perception: PerceptionModel, braking: BrakingSystem,
                        config: "SimulationConfig",
                        rng: np.random.Generator,
                        time_offset_h: float,
                        ) -> Tuple[RecordBlock, np.ndarray,
                                   np.ndarray, int]:
    n = len(batch)
    context = batch.context

    # Resolution draws — whole-array, fixed order.
    actual_capability, degraded = \
        braking.sample_capability_array_traced(rng, n)
    detection = perception.detection_distance_array(
        batch.sight_distance_m, context, rng)

    known_capability = braking.known_capability_array(actual_capability)
    ego_speed = policy.encounter_speed_ms_array(
        context, batch.cue_available, batch.sight_distance_m,
        known_capability, braking.nominal_ms2)
    if batch.counterpart in CROSSING_CLASSES:
        closing = ego_speed
    else:
        closing = np.maximum(
            ego_speed - kmh_to_ms(batch.counterpart_speed_kmh), 0.0)
    active = closing > 0.0

    comfort = np.minimum(policy.comfort_braking_ms2, actual_capability)
    outcome = resolve_braking_arrays(
        speed_ms=closing,
        distance_m=detection,
        comfort_deceleration=comfort,
        max_deceleration=actual_capability,
        reaction_time_s=policy.reaction_time_s,
    )
    # demanded > threshold covers the scalar path's isinf clause: an
    # infinite demand compares greater than any finite threshold.
    hard = active & (outcome.demanded_deceleration
                     > config.hard_braking_threshold_ms2)
    collided = active & outcome.collided
    closing_kmh = ms_to_kmh(closing)
    near_miss = (active & ~outcome.collided
                 & (outcome.stop_margin_m < config.near_miss_distance_m)
                 & (closing_kmh > config.near_miss_speed_kmh))

    times = batch.time_h + time_offset_h
    coll_idx = np.flatnonzero(collided)
    miss_idx = np.flatnonzero(near_miss)
    impact_kmh = ms_to_kmh(outcome.impact_speed_ms)
    min_distances = np.maximum(outcome.stop_margin_m, 1e-3)

    # Fig. 4's lower half: a hard ego stop with a close follower induces
    # an incident between third parties.  One uniform per hard demand,
    # then one distance and one speed uniform per induced incident.
    hard_indices = np.flatnonzero(hard)
    n_hard = int(hard_indices.size)
    if n_hard:
        follower = rng.uniform(size=n_hard) \
            < config.follower_presence_probability
        induced_indices = hard_indices[follower]
        n_induced = int(induced_indices.size)
        induced_distance = rng.uniform(0.3, 4.0, size=n_induced)
        induced_speed = rng.uniform(10.0, 60.0, size=n_induced)
    else:
        induced_indices = np.zeros(0, dtype=np.int64)
        n_induced = 0
        induced_distance = np.zeros(0)
        induced_speed = np.zeros(0)

    # Columnar assembly: rows are [collisions | near-misses | induced],
    # each segment in encounter order — the layout the per-row loops
    # used to produce — with no IncidentRecord objects constructed.
    n_coll = int(coll_idx.size)
    n_miss = int(miss_idx.size)
    total = n_coll + n_miss + n_induced
    sources = np.concatenate(
        [coll_idx, miss_idx, induced_indices]).astype(np.int64)

    counterpart = np.full(total, actor_code(batch.counterpart),
                          dtype=np.uint8)
    counterpart[n_coll + n_miss:] = actor_code(ActorClass.CAR)
    is_collision = np.zeros(total, dtype=bool)
    is_collision[:n_coll] = True
    induced_mask = np.zeros(total, dtype=bool)
    induced_mask[n_coll + n_miss:] = True
    delta_v = np.zeros(total)
    delta_v[:n_coll] = impact_kmh[coll_idx]
    min_distance = np.zeros(total)
    min_distance[n_coll:n_coll + n_miss] = min_distances[miss_idx]
    min_distance[n_coll + n_miss:] = induced_distance
    approach = np.empty(total)
    approach[:n_coll] = closing_kmh[coll_idx]
    approach[n_coll:n_coll + n_miss] = closing_kmh[miss_idx]
    approach[n_coll + n_miss:] = induced_speed

    block = RecordBlock.from_columns(
        counterpart=counterpart,
        is_collision=is_collision,
        delta_v_kmh=delta_v,
        min_distance_m=min_distance,
        approach_speed_kmh=approach,
        time_h=times[sources],
        context=np.zeros(total, dtype=np.uint16),
        context_table=(context,),
        induced=induced_mask)
    return block, sources, degraded, n_hard


def simulate_vectorized(policy: TacticalPolicy,
                        generator: EncounterGenerator,
                        perception: PerceptionModel,
                        braking: BrakingSystem,
                        context: str,
                        hours: float,
                        rng: np.random.Generator,
                        config: Optional["SimulationConfig"] = None,
                        *,
                        time_offset_h: float = 0.0) -> "SimulationResult":
    """Vectorized :func:`~repro.traffic.simulator.simulate`.

    Statistically interchangeable with the scalar engine but with a
    different, documented RNG layout (module docstring) — use one engine
    consistently within a campaign.  The result is block-backed: the
    incident stream stays columnar end-to-end (``result.record_block``)
    and materialises :class:`IncidentRecord` objects only when
    ``result.records`` is first touched, in canonical sorted order.
    """
    from .simulator import (SimulationConfig, SimulationResult,
                            _record_sim_metrics)
    if config is None:
        config = SimulationConfig()
    if time_offset_h < 0 or not math.isfinite(time_offset_h):
        raise ValueError(
            f"time offset must be finite and >= 0, got {time_offset_h}")
    if hours <= 0 or not math.isfinite(hours):
        raise ValueError(f"hours must be positive and finite, got {hours}")
    classes = generator.active_classes(context)
    streams = rng.spawn(len(classes)) if classes else []
    blocks: List[RecordBlock] = []
    encounters_resolved = 0
    hard_demands = 0
    with maybe_span("simulate.vectorized"):
        for counterpart, stream in zip(classes, streams):
            batch = generator.sample_class_batch(
                context, counterpart, hours, policy.cue_probability, stream)
            encounters_resolved += len(batch)
            class_block, n_hard = resolve_batch(
                batch, policy, perception, braking, config, stream,
                time_offset_h)
            blocks.append(class_block)
            hard_demands += n_hard
        block = RecordBlock.concat(blocks).canonical_sort()
        result = SimulationResult(
            policy_name=policy.name,
            hours=hours,
            context_hours={context: hours},
            records=block,
            encounters_resolved=encounters_resolved,
            hard_braking_demands=hard_demands,
            hard_braking_threshold_ms2=config.hard_braking_threshold_ms2,
        )
        _record_sim_metrics(
            hours=hours, encounters=encounters_resolved,
            incidents=len(block),
            collisions=block.collision_count,
            hard_demands=hard_demands)
        return result


@dataclass
class ImportanceRun:
    """One importance-sampled run: proposal-law output plus weights.

    ``result`` holds the raw *proposal-law* observations (its counts and
    rates are NOT nominal-law estimates); ``record_weights`` aligns with
    ``result.records`` and carries each record's likelihood-ratio weight,
    so ``Σ w·1[condition]`` is an unbiased nominal-law count estimate.
    ``diagnostics`` pools the weights of **all** proposal encounters (not
    only those that became records) — the ensemble whose effective sample
    size certifies the tilt.
    """

    result: "SimulationResult"
    record_weights: np.ndarray
    diagnostics: WeightDiagnostics = field(default_factory=WeightDiagnostics)

    def __post_init__(self) -> None:
        if len(self.record_weights) != len(self.result.records):
            raise ValueError(
                f"{len(self.record_weights)} weights for "
                f"{len(self.result.records)} records")

    def weighted_collision_count(self) -> float:
        return float(sum(w for r, w in zip(self.result.records,
                                           self.record_weights)
                         if r.is_collision))

    def weighted_collision_rate_per_hour(self) -> float:
        """Unbiased nominal-law collision rate from this run."""
        return self.weighted_collision_count() / self.result.hours


def simulate_importance(policy: TacticalPolicy,
                        generator: EncounterGenerator,
                        perception: PerceptionModel,
                        braking: BrakingSystem,
                        context: str,
                        hours: float,
                        rng: np.random.Generator,
                        config: Optional["SimulationConfig"] = None,
                        *,
                        tilt: ProposalTilt,
                        time_offset_h: float = 0.0) -> ImportanceRun:
    """:func:`simulate_vectorized` under a proposal tilt, with weights.

    ``generator`` is the *nominal* generator; sampling happens under
    ``generator.tilted(tilt)`` with the identical RNG sub-stream layout
    (one child per active class, same canonical order — positive rates
    stay positive under any tilt, so the class set and stream assignment
    match the nominal engine exactly).  A ``degradation_scale`` tilt runs
    the resolution under a braking system with the scaled fault
    occupancy and folds the exact Bernoulli ratio of each realised fault
    state into that encounter's weight.  Every record carries the
    Campbell weight of its source encounter (induced incidents inherit
    the weight of the encounter whose hard stop triggered them).

    With the identity tilt this is bit-for-bit :func:`simulate_vectorized`
    — same records, same draws — with every weight exactly 1.0.
    """
    from .simulator import (SimulationConfig, SimulationResult,
                            _record_sim_metrics, _record_sort_key)
    if config is None:
        config = SimulationConfig()
    if time_offset_h < 0 or not math.isfinite(time_offset_h):
        raise ValueError(
            f"time offset must be finite and >= 0, got {time_offset_h}")
    if hours <= 0 or not math.isfinite(hours):
        raise ValueError(f"hours must be positive and finite, got {hours}")
    proposal = generator.tilted(tilt)
    nominal_occupancy = braking.degradation_occupancy
    proposal_occupancy = nominal_occupancy * tilt.degradation_scale
    # Constructing the tilted system validates occupancy <= 1 up front.
    proposal_braking = braking.with_occupancy(proposal_occupancy)
    nominal_profile = generator.profile(context)
    classes = proposal.active_classes(context)
    streams = rng.spawn(len(classes)) if classes else []
    records: List[IncidentRecord] = []
    weights: List[float] = []
    diagnostics = WeightDiagnostics()
    encounters_resolved = 0
    hard_demands = 0
    with maybe_span("simulate.importance"):
        for counterpart, stream in zip(classes, streams):
            batch = proposal.sample_class_batch(
                context, counterpart, hours, policy.cue_probability, stream)
            log_weights = encounter_log_weights(batch, nominal_profile, tilt)
            encounters_resolved += len(batch)
            class_records, class_sources, degraded, n_hard = \
                resolve_batch_traced(batch, policy, perception,
                                     proposal_braking, config, stream,
                                     time_offset_h)
            if len(batch):
                log_weights += bernoulli_log_ratio(
                    degraded, p_p=nominal_occupancy, p_q=proposal_occupancy)
            encounter_weights = np.exp(log_weights)
            diagnostics = diagnostics.merged(
                WeightDiagnostics.from_weights(encounter_weights))
            records.extend(class_records)
            weights.extend(float(encounter_weights[i])
                           for i in class_sources)
            hard_demands += n_hard
        order = sorted(range(len(records)),
                       key=lambda i: _record_sort_key(records[i]))
        records = [records[i] for i in order]
        record_weights = np.array([weights[i] for i in order], dtype=float)
        result = SimulationResult(
            policy_name=policy.name,
            hours=hours,
            context_hours={context: hours},
            records=records,
            encounters_resolved=encounters_resolved,
            hard_braking_demands=hard_demands,
            hard_braking_threshold_ms2=config.hard_braking_threshold_ms2,
        )
        _record_sim_metrics(
            hours=hours, encounters=encounters_resolved,
            incidents=len(records),
            collisions=sum(1 for r in records if r.is_collision),
            hard_demands=hard_demands)
        return ImportanceRun(result=result, record_weights=record_weights,
                             diagnostics=diagnostics)
