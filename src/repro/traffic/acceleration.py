"""Rare-event acceleration: variance-reduced collision-rate estimation.

Safety-class QRN budgets sit at 1e-7/h and below (Fig. 3), where naive
Monte Carlo over simulated hours is hopeless: demonstrating such a rate
to useful precision needs billions of hours of exposure.  This module
provides the two classical accelerators, wired to the traffic substrate
so both remain *exactly* unbiased for the nominal law (DESIGN §11):

* **Importance sampling** (:func:`importance_collision_rate`) — drive
  the fleet under a tilted encounter/fault law
  (:class:`~repro.traffic.encounters.ProposalTilt`) and reweight every
  record with its closed-form likelihood ratio
  (:func:`repro.traffic.engine.simulate_importance`).  Weight-health is
  reported per run via :class:`~repro.stats.importance.WeightDiagnostics`
  and gated by the degeneracy alarm.

* **Multilevel splitting** (:func:`splitting_collision_rate`) — estimate
  the per-encounter collision probability by driving particles up a
  ladder of near-miss severity levels.  The severity score is the
  demanded-over-available deceleration ratio of the *scalar oracle's*
  resolution chain (:class:`SeverityChannel` mirrors
  ``simulator._resolve_encounter`` decision for decision), so
  ``score > 1`` is *exactly* the oracle's collision predicate and the
  splitting estimate targets the same quantity as counting collisions.

Both return the same :class:`AcceleratedRate` shape as the naive
stratified baseline (:func:`naive_collision_rate`), so the statistical
verification tier can compare all three against each other on calibrated
workloads.  :func:`adaptive_budget_campaign` adds the third ISSUE lever:
stratified allocation steered round by round by the budget monitor's
live per-incident-type Poisson CIs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.taxonomy import ActorClass
from ..obs.budget_monitor import BudgetMonitor, BudgetUtilisationReport
from ..stats.importance import WeightDiagnostics
from ..stats.montecarlo import MonteCarloResult
from ..stats.rare_event import (StratifiedEstimate, StratumEstimate,
                                stratified_rate, uncertainty_replication_split)
from ..stats.splitting import adaptive_levels, replicated_splitting
from .dynamics import kmh_to_ms, required_deceleration
from .encounters import (SIGHT_DISTANCE_CLAMP_M, EncounterGenerator,
                         ProposalTilt, _lognormal_params)
from .engine import CROSSING_CLASSES, simulate_importance, simulate_vectorized
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy
from .simulator import SimulationConfig

__all__ = [
    "ACCELERATORS",
    "COLLISION_LEVEL",
    "AcceleratedRate",
    "SeverityChannel",
    "severity_channels",
    "naive_collision_rate",
    "importance_collision_rate",
    "splitting_collision_rate",
    "accelerated_collision_rate",
    "AdaptiveCampaignRound",
    "AdaptiveCampaignResult",
    "adaptive_budget_campaign",
]

ACCELERATORS = ("none", "is", "splitting")
"""Accelerator choices for :func:`accelerated_collision_rate` (and the
CLI's ``--accelerator``): the naive stratified baseline, importance
sampling, multilevel splitting."""

COLLISION_LEVEL = 1.0
"""The severity level whose strict exceedance is a collision:
``demanded deceleration > available capability`` ⇔ ``score > 1``."""


@dataclass(frozen=True)
class AcceleratedRate:
    """A collision-rate estimate plus how it was obtained.

    ``estimate`` is always an exposure-weighted
    :class:`~repro.stats.rare_event.StratifiedEstimate` in collisions per
    hour, whichever accelerator produced the per-context results, so the
    verification tier can compare methods field for field.
    ``diagnostics`` carries pooled importance-weight health for the IS
    method (``None`` otherwise).
    """

    method: str
    estimate: StratifiedEstimate
    diagnostics: Optional[WeightDiagnostics] = None

    def __post_init__(self) -> None:
        if self.method not in ACCELERATORS:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {ACCELERATORS}")

    def as_result(self) -> MonteCarloResult:
        return self.estimate.as_result()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "method": self.method,
            "mean_per_hour": self.estimate.mean,
            "std_error": self.estimate.std_error,
            "replications": self.estimate.as_result().replications,
        }
        if self.diagnostics is not None:
            payload["weight_diagnostics"] = self.diagnostics.to_dict()
        return payload


def _require_positive(name: str, value: float) -> None:
    if value <= 0 or not math.isfinite(value):
        raise ValueError(f"{name} must be positive and finite, got {value}")


def naive_collision_rate(policy: TacticalPolicy,
                         generator: EncounterGenerator,
                         perception: PerceptionModel,
                         braking: BrakingSystem,
                         weights: Mapping[str, float],
                         *, seed: int,
                         replications_per_stratum: int | Mapping[str, int] = 64,
                         hours_per_replication: float = 10.0,
                         config: Optional[SimulationConfig] = None,
                         ) -> AcceleratedRate:
    """The un-accelerated baseline: stratified vectorized simulation.

    One replication simulates ``hours_per_replication`` in one context
    with the vectorized engine and reports its raw collision rate; the
    strata recombine under the exposure mix.  This is what the
    accelerated estimators are benchmarked against — same estimand, same
    replication layout, no variance reduction.
    """
    _require_positive("hours_per_replication", hours_per_replication)

    def simulate_one(context: str, rng: np.random.Generator) -> float:
        result = simulate_vectorized(policy, generator, perception, braking,
                                     context, hours_per_replication, rng,
                                     config)
        return sum(1 for r in result.records if r.is_collision) \
            / hours_per_replication

    estimate = stratified_rate(
        simulate_one, weights, seed=seed,
        replications_per_stratum=replications_per_stratum)
    return AcceleratedRate(method="none", estimate=estimate)


def importance_collision_rate(policy: TacticalPolicy,
                              generator: EncounterGenerator,
                              perception: PerceptionModel,
                              braking: BrakingSystem,
                              weights: Mapping[str, float],
                              *, tilt: ProposalTilt,
                              seed: int,
                              replications_per_stratum: int
                              | Mapping[str, int] = 64,
                              hours_per_replication: float = 10.0,
                              config: Optional[SimulationConfig] = None,
                              min_ess_fraction: float = 0.01,
                              max_weight_share: float = 0.5,
                              ) -> AcceleratedRate:
    """Importance-sampled collision rate under a proposal tilt.

    Replication-for-replication the layout of
    :func:`naive_collision_rate` — same sorted-context order, same
    ``spawn_generators`` stream assignment, same exposure per replication
    — except each replication drives :func:`simulate_importance` and
    reports the *weighted* collision rate, which is unbiased for the
    nominal rate by the Campbell argument.  Weight diagnostics pool over
    every replication and are checked against the degeneracy alarm
    thresholds once at the end (raising
    :class:`~repro.stats.importance.WeightDegeneracyError` on a
    collapsed proposal); pass ``min_ess_fraction=0`` and
    ``max_weight_share=1`` to disable the gate.

    With the identity tilt this *is* the naive estimator, bit for bit.
    """
    _require_positive("hours_per_replication", hours_per_replication)
    pooled: List[WeightDiagnostics] = []

    def simulate_one(context: str, rng: np.random.Generator) -> float:
        run = simulate_importance(policy, generator, perception, braking,
                                  context, hours_per_replication, rng,
                                  config, tilt=tilt)
        pooled.append(run.diagnostics)
        return run.weighted_collision_rate_per_hour()

    estimate = stratified_rate(
        simulate_one, weights, seed=seed,
        replications_per_stratum=replications_per_stratum)
    diagnostics = WeightDiagnostics.merge_many(pooled)
    diagnostics.check(min_ess_fraction=min_ess_fraction,
                      max_weight_share=max_weight_share)
    return AcceleratedRate(method="is", estimate=estimate,
                           diagnostics=diagnostics)


# ---------------------------------------------------------------------------
# Multilevel splitting over the scalar oracle's resolution chain.
# ---------------------------------------------------------------------------

#: Latent-state layout of one encounter resolution: three standard
#: normals (log-sight-distance, counterpart speed, perception fraction)
#: and three uniforms (cue, fault occupancy, perception miss).
_NORMAL_COORDS = (0, 1, 5)
_UNIFORM_COORDS = (2, 3, 4)
_STATE_DIM = 6


@dataclass(frozen=True)
class SeverityChannel:
    """Near-miss severity of one (context, counterpart-class) channel.

    Maps a six-coordinate latent state — ``(z_sight, z_speed, u_cue,
    u_capability, u_miss, z_fraction)``, standard normals and uniforms —
    through *exactly* the scalar oracle's resolution chain
    (``simulator._resolve_encounter``): sample geometry, pick the ego
    speed via the tactical policy, resolve perception, and return the
    margin-to-collision score ``demanded / available`` deceleration.
    ``score(state) > 1`` reproduces the oracle's collision predicate
    decision for decision (both sides use strict ``>``), which is what
    makes the splitting estimate an estimate *of the oracle's* collision
    probability rather than of a surrogate's.

    The latent parameterisation (rather than the sampled values) is what
    gives the splitting mutation kernels exact invariance: standard
    normals move under Crank–Nicolson, uniforms under mod-1 random
    walks, and every discrete branch (cue, fault, missed detection)
    re-derives from its uniform.
    """

    context: str
    counterpart: ActorClass
    policy: TacticalPolicy
    perception: PerceptionModel
    braking: BrakingSystem
    sight_mu: float
    sight_sigma: float
    speed_mean_kmh: float
    speed_std_kmh: float
    rate_per_hour: float

    def initial(self, rng: np.random.Generator) -> np.ndarray:
        """One latent state under the nominal encounter law."""
        state = np.empty(_STATE_DIM)
        state[list(_NORMAL_COORDS)] = rng.standard_normal(len(_NORMAL_COORDS))
        state[list(_UNIFORM_COORDS)] = rng.uniform(size=len(_UNIFORM_COORDS))
        return state

    def mutate(self, state: np.ndarray, rng: np.random.Generator,
               *, cn_rho: float = 0.8,
               uniform_step: float = 0.12) -> np.ndarray:
        """One invariant MCMC move on the latent state.

        Normal coordinates take a Crank–Nicolson step ``z' = ρz +
        √(1−ρ²)ξ`` (exactly N(0,1)-invariant); uniform coordinates a
        mod-1 Gaussian random walk (circular convolution preserves
        U(0,1)).  Both kernels are reversible, so the splitting harness's
        reject-below-level wrapper leaves each conditional law invariant.
        """
        out = state.copy()
        scale = math.sqrt(1.0 - cn_rho ** 2)
        for i in _NORMAL_COORDS:
            out[i] = cn_rho * state[i] + scale * rng.standard_normal()
        for i in _UNIFORM_COORDS:
            out[i] = (state[i] + uniform_step * rng.standard_normal()) % 1.0
        return out

    def score(self, state: np.ndarray) -> float:
        """Margin-to-collision severity: demanded / available deceleration.

        0 when the conflict dissolves (non-positive closing speed);
        ``inf`` when the reaction roll-out alone consumes the detection
        distance.  Strictly above :data:`COLLISION_LEVEL` iff the scalar
        oracle would record a collision for the same draws.
        """
        z_sight, z_speed, u_cue, u_cap, u_miss, z_frac = state
        sight = max(math.exp(self.sight_mu + self.sight_sigma * z_sight),
                    SIGHT_DISTANCE_CLAMP_M)
        speed_kmh = max(self.speed_mean_kmh + self.speed_std_kmh * z_speed,
                        0.0)
        cued = u_cue < self.policy.cue_probability
        degraded = u_cap < self.braking.degradation_occupancy
        actual = self.braking.degraded_ms2 if degraded \
            else self.braking.nominal_ms2
        known = self.braking.known_capability(actual)
        ego = self.policy.encounter_speed_ms(
            self.context, cued, sight, known, self.braking.nominal_ms2)
        if self.counterpart in CROSSING_CLASSES:
            closing = ego
        else:
            closing = max(ego - kmh_to_ms(speed_kmh), 0.0)
        if closing <= 0.0:
            return 0.0
        factor = self.perception.context_factors.get(self.context, 1.0)
        if u_miss < self.perception.miss_probability:
            fraction = self.perception.late_fraction * factor
        else:
            fraction = self.perception.nominal_fraction * factor \
                + self.perception.fraction_std * z_frac
        fraction = min(max(fraction, 0.01), 1.0)
        detection = sight * fraction
        demanded = required_deceleration(closing, detection,
                                         self.policy.reaction_time_s)
        return demanded / actual


def severity_channels(policy: TacticalPolicy,
                      generator: EncounterGenerator,
                      perception: PerceptionModel,
                      braking: BrakingSystem,
                      context: str) -> Tuple[SeverityChannel, ...]:
    """One severity channel per active counterpart class of a context.

    Channel order follows :meth:`EncounterGenerator.active_classes`
    (sorted by class name) so seed assignment downstream is canonical.
    """
    profile = generator.profile(context)
    channels = []
    for counterpart in generator.active_classes(context):
        mean_d, std_d = profile.sight_distance_m[counterpart]
        mean_v, std_v = profile.counterpart_speed_kmh[counterpart]
        mu, sigma = _lognormal_params(mean_d, std_d)
        channels.append(SeverityChannel(
            context=context, counterpart=counterpart, policy=policy,
            perception=perception, braking=braking, sight_mu=mu,
            sight_sigma=sigma, speed_mean_kmh=mean_v, speed_std_kmh=std_v,
            rate_per_hour=profile.encounter_rates[counterpart]))
    return tuple(channels)


def _channel_seed(child: np.random.SeedSequence) -> int:
    return int(child.generate_state(1, np.uint64)[0])


def splitting_collision_rate(policy: TacticalPolicy,
                             generator: EncounterGenerator,
                             perception: PerceptionModel,
                             braking: BrakingSystem,
                             weights: Mapping[str, float],
                             *, seed: int,
                             runs: int = 8,
                             particles: int = 128,
                             mutations_per_level: int = 3,
                             level_fraction: float = 0.25,
                             max_levels: int = 12,
                             ) -> AcceleratedRate:
    """Multilevel-splitting collision rate across the exposure mix.

    Per context, the collision rate decomposes over counterpart classes
    as ``Σ_class λ_class · P(collision | encounter of class)`` (arrival
    rates and outcomes are independent given the class).  Each class
    probability is estimated by replicated multilevel splitting on its
    :class:`SeverityChannel`: a pilot run places the level ladder at
    adaptive quantiles ending exactly at :data:`COLLISION_LEVEL`, then
    ``runs`` independent splitting runs give a batch-means error bar.
    Class estimates combine by rate-weighted sum, standard errors in
    quadrature (independent seeds per (context, class)).

    Unlike the simulation-based estimators this targets *collisions
    only* — near-misses and induced incidents have no severity ladder —
    which is the quantity the safety-class budgets constrain.
    """
    from ..stats.rare_event import _validate_weights
    _validate_weights(weights)
    if runs < 2:
        raise ValueError("splitting needs >= 2 runs for an error bar")
    contexts = [c for c, w in sorted(weights.items()) if w > 0]
    if not contexts:
        raise ValueError("context mix has no positive weights")
    # Two independent seed children per (context, class): one for the
    # pilot ladder, one for the estimation runs.  Spawned in canonical
    # (sorted context, sorted class) order so the assignment is a pure
    # function of (seed, mix, profiles).
    channel_lists = {
        context: severity_channels(policy, generator, perception, braking,
                                   context)
        for context in contexts}
    total_channels = sum(len(chs) for chs in channel_lists.values())
    children = np.random.SeedSequence(seed).spawn(2 * total_channels)
    cursor = 0
    strata = []
    for context in contexts:
        rate_mean = 0.0
        rate_var = 0.0
        replications = 0
        for channel in channel_lists[context]:
            ladder_seed = _channel_seed(children[cursor])
            run_seed = _channel_seed(children[cursor + 1])
            cursor += 2
            levels = adaptive_levels(
                channel.initial, channel.score, channel.mutate,
                seed=ladder_seed, final_level=COLLISION_LEVEL,
                particles=particles, level_fraction=level_fraction,
                max_levels=max_levels,
                mutations_per_level=mutations_per_level)
            result = replicated_splitting(
                channel.initial, channel.score, channel.mutate, levels,
                seed=run_seed, runs=runs, particles=particles,
                mutations_per_level=mutations_per_level)
            rate_mean += channel.rate_per_hour * result.mean
            rate_var += (channel.rate_per_hour * result.std_error) ** 2
            replications = max(replications, result.replications)
        strata.append(StratumEstimate(
            context, float(weights[context]),
            MonteCarloResult(mean=rate_mean,
                             std_error=math.sqrt(rate_var),
                             replications=replications)))
    return AcceleratedRate(method="splitting",
                           estimate=StratifiedEstimate(tuple(strata)))


def accelerated_collision_rate(policy: TacticalPolicy,
                               generator: EncounterGenerator,
                               perception: PerceptionModel,
                               braking: BrakingSystem,
                               weights: Mapping[str, float],
                               *, accelerator: str,
                               seed: int,
                               tilt: Optional[ProposalTilt] = None,
                               replications_per_stratum: int
                               | Mapping[str, int] = 64,
                               hours_per_replication: float = 10.0,
                               config: Optional[SimulationConfig] = None,
                               runs: int = 8,
                               particles: int = 128,
                               ) -> AcceleratedRate:
    """Dispatch to one of :data:`ACCELERATORS` with shared defaults."""
    if accelerator not in ACCELERATORS:
        raise ValueError(f"unknown accelerator {accelerator!r}; "
                         f"choose from {ACCELERATORS}")
    if accelerator == "none":
        return naive_collision_rate(
            policy, generator, perception, braking, weights, seed=seed,
            replications_per_stratum=replications_per_stratum,
            hours_per_replication=hours_per_replication, config=config)
    if accelerator == "is":
        if tilt is None:
            raise ValueError("importance sampling needs a proposal tilt")
        return importance_collision_rate(
            policy, generator, perception, braking, weights, tilt=tilt,
            seed=seed, replications_per_stratum=replications_per_stratum,
            hours_per_replication=hours_per_replication, config=config)
    return splitting_collision_rate(
        policy, generator, perception, braking, weights, seed=seed,
        runs=runs, particles=particles)


# ---------------------------------------------------------------------------
# Adaptive stratified allocation driven by live budget-monitor CIs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveCampaignRound:
    """One allocation round of an adaptive campaign."""

    index: int
    allocation: Mapping[str, int]
    uncertainty: Mapping[str, float]
    exposure_hours: float


@dataclass(frozen=True)
class AdaptiveCampaignResult:
    """Outcome of :func:`adaptive_budget_campaign`."""

    report: BudgetUtilisationReport
    rounds: Tuple[AdaptiveCampaignRound, ...]
    settled: bool
    total_hours: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "settled": self.settled,
            "rounds": len(self.rounds),
            "total_hours": self.total_hours,
            "worst_utilisation": self.report.worst_utilisation(),
            "verdict_uncertainty": dict(self.report.verdict_uncertainty()),
        }


def _context_uncertainty(type_uncertainty: Mapping[str, float],
                         context_type_counts: Mapping[str,
                                                      Mapping[str, int]],
                         contexts: Sequence[str]) -> Dict[str, float]:
    """Apportion per-type verdict uncertainty onto contexts.

    Each open type budget's CI width flows to contexts in proportion to
    their observed share of that type's incidents, Laplace-smoothed (+1
    per context) so a type nobody has produced yet spreads its
    uncertainty evenly instead of starving every context of effort.
    """
    scores = {context: 0.0 for context in contexts}
    for type_id, uncertainty in type_uncertainty.items():
        if uncertainty <= 0.0:
            continue
        counts = {context: context_type_counts.get(context, {})
                  .get(type_id, 0) for context in contexts}
        total = sum(counts.values()) + len(contexts)
        for context in contexts:
            scores[context] += uncertainty * (counts[context] + 1) / total
    return scores


def adaptive_budget_campaign(policy: TacticalPolicy,
                             generator: EncounterGenerator,
                             perception: PerceptionModel,
                             braking: BrakingSystem,
                             goals,
                             types,
                             mix: Mapping[str, float],
                             *, seed: int,
                             rounds: int = 4,
                             replications_per_round: int = 32,
                             hours_per_replication: float = 10.0,
                             config: Optional[SimulationConfig] = None,
                             confidence: float = 0.95,
                             ) -> AdaptiveCampaignResult:
    """Stratified simulation steered by live budget-monitor CIs.

    Round 1 allocates replications by exposure mix alone (every verdict
    equally open).  After each round the cumulative
    :class:`~repro.obs.budget_monitor.BudgetMonitor` report is consulted:
    budgets whose Poisson CI has left the budget line (demonstrated or
    violated) contribute zero uncertainty, the rest contribute their CI
    width, apportioned to contexts by observed incident shares and fed
    to :func:`~repro.stats.rare_event.uncertainty_replication_split` —
    fresh simulation flows to the contexts still holding up open
    verdicts.  Stops early once every type budget is settled.

    Determinism: round ``k`` draws from the ``k``-th child of ``seed``
    regardless of how earlier rounds allocated, so a campaign is a pure
    function of its inputs even though allocations adapt.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    _require_positive("hours_per_replication", hours_per_replication)
    type_list = list(types)
    monitor = BudgetMonitor(goals, confidence=confidence)
    contexts = [c for c, w in sorted(mix.items()) if w > 0]
    if not contexts:
        raise ValueError("context mix has no positive weights")
    context_type_counts: Dict[str, Dict[str, int]] = {
        context: {} for context in contexts}
    round_seeds = np.random.SeedSequence(seed).spawn(rounds)
    round_records: List[AdaptiveCampaignRound] = []
    settled = False
    report: Optional[BudgetUtilisationReport] = None
    from ..core.incident import classify_records
    for round_index in range(rounds):
        if report is None:
            uncertainty = {context: 1.0 for context in contexts}
        else:
            uncertainty = _context_uncertainty(
                report.verdict_uncertainty(), context_type_counts, contexts)
        allocation = uncertainty_replication_split(
            mix, uncertainty, replications_per_round)
        streams = [np.random.default_rng(child) for child in
                   round_seeds[round_index].spawn(
                       sum(allocation[c] for c in contexts))]
        cursor = 0
        round_hours = 0.0
        for context in contexts:
            for _ in range(allocation[context]):
                result = simulate_vectorized(
                    policy, generator, perception, braking, context,
                    hours_per_replication, streams[cursor], config)
                cursor += 1
                round_hours += hours_per_replication
                monitor.observe_result(result, type_list)
                buckets = classify_records(result.records, type_list)
                per_context = context_type_counts[context]
                for type_id, bucket in buckets.items():
                    if type_id == "<unclassified>" or not bucket:
                        continue
                    per_context[type_id] = \
                        per_context.get(type_id, 0) + len(bucket)
        report = monitor.utilisation()
        round_records.append(AdaptiveCampaignRound(
            index=round_index, allocation=dict(allocation),
            uncertainty=dict(uncertainty), exposure_hours=round_hours))
        if report.all_settled():
            settled = True
            break
    assert report is not None
    return AdaptiveCampaignResult(
        report=report, rounds=tuple(round_records), settled=settled,
        total_hours=monitor.exposure)
