"""Longitudinal kinematics: braking, stopping, impact speeds.

The physics under every encounter outcome in the simulator, and under the
paper's Sec. II-B-3 worked example: "a vehicle-internal fault leading to a
reduced braking capacity of only 4 m/s² on dry asphalt" and the question
"how often there is a situation in which the driver needs to brake
significantly harder than 4 m/s² to avoid an accident".

All speeds here are in m/s and distances in metres (the incident layer
converts to km/h at its boundary); deceleration is positive m/s².
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "KMH_PER_MS",
    "kmh_to_ms",
    "ms_to_kmh",
    "stopping_distance",
    "required_deceleration",
    "impact_speed",
    "BrakingOutcome",
    "resolve_braking",
]

KMH_PER_MS = 3.6


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / KMH_PER_MS


def ms_to_kmh(speed_ms: float) -> float:
    """Convert m/s to km/h."""
    return speed_ms * KMH_PER_MS


def stopping_distance(speed_ms: float, deceleration: float,
                      reaction_time_s: float = 0.0) -> float:
    """Distance to standstill: reaction roll-out plus braking distance."""
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    return speed_ms * reaction_time_s + speed_ms ** 2 / (2.0 * deceleration)


def required_deceleration(speed_ms: float, distance_m: float,
                          reaction_time_s: float = 0.0) -> float:
    """Constant deceleration needed to stop within ``distance_m``.

    Returns ``inf`` when the reaction roll-out alone consumes the distance
    (no finite braking avoids impact) and 0 for zero speed.
    """
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if distance_m < 0:
        raise ValueError("distance must be >= 0")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    if speed_ms == 0.0:
        return 0.0
    braking_distance = distance_m - speed_ms * reaction_time_s
    if braking_distance <= 0.0:
        return math.inf
    return speed_ms ** 2 / (2.0 * braking_distance)


def impact_speed(speed_ms: float, deceleration: float, distance_m: float,
                 reaction_time_s: float = 0.0) -> float:
    """Speed at the obstacle after reaction + braking over ``distance_m``.

    Zero when the vehicle stops short.  The obstacle is treated as
    stationary relative to the conflict point; the caller folds in
    counterpart motion by adjusting the effective distance or speed.
    """
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if distance_m < 0:
        raise ValueError("distance must be >= 0")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    braking_distance = distance_m - speed_ms * reaction_time_s
    if braking_distance <= 0.0:
        return speed_ms
    residual_sq = speed_ms ** 2 - 2.0 * deceleration * braking_distance
    if residual_sq <= 0.0:
        return 0.0
    return math.sqrt(residual_sq)


@dataclass(frozen=True)
class BrakingOutcome:
    """Resolution of one braking episode.

    ``impact_speed_ms`` is 0 for successful stops; ``stop_margin_m`` is
    the gap left to the obstacle when stopping short (0 on impact);
    ``peak_deceleration`` the deceleration actually used; and
    ``demanded_deceleration`` what avoiding impact would have required —
    the Sec. II-B-3 observable, recorded even when the episode ends well.
    """

    impact_speed_ms: float
    stop_margin_m: float
    peak_deceleration: float
    demanded_deceleration: float

    @property
    def collided(self) -> bool:
        return self.impact_speed_ms > 0.0


def resolve_braking(speed_ms: float, distance_m: float,
                    comfort_deceleration: float,
                    max_deceleration: float,
                    reaction_time_s: float) -> BrakingOutcome:
    """Resolve an obstacle-ahead episode with a two-stage braking policy.

    The ego prefers comfort braking (the paper's "braking harder than
    3 m/s² is considered uncomfortable"); when comfort braking cannot
    stop in time it escalates to its full current capability.  Whatever it
    uses, ``demanded_deceleration`` records the physical requirement, so
    the caller can count how often demand exceeded any given threshold.
    """
    if comfort_deceleration <= 0 or max_deceleration <= 0:
        raise ValueError("decelerations must be positive")
    if comfort_deceleration > max_deceleration:
        raise ValueError(
            f"comfort deceleration {comfort_deceleration} exceeds capability "
            f"{max_deceleration}")
    demanded = required_deceleration(speed_ms, distance_m, reaction_time_s)
    if demanded <= comfort_deceleration:
        used = comfort_deceleration
    else:
        used = max_deceleration
    speed_at_obstacle = impact_speed(speed_ms, used, distance_m, reaction_time_s)
    if speed_at_obstacle > 0.0:
        return BrakingOutcome(
            impact_speed_ms=speed_at_obstacle,
            stop_margin_m=0.0,
            peak_deceleration=used,
            demanded_deceleration=demanded,
        )
    margin = distance_m - stopping_distance(speed_ms, used, reaction_time_s)
    return BrakingOutcome(
        impact_speed_ms=0.0,
        stop_margin_m=max(margin, 0.0),
        peak_deceleration=used,
        demanded_deceleration=demanded,
    )
