"""Longitudinal kinematics: braking, stopping, impact speeds.

The physics under every encounter outcome in the simulator, and under the
paper's Sec. II-B-3 worked example: "a vehicle-internal fault leading to a
reduced braking capacity of only 4 m/s² on dry asphalt" and the question
"how often there is a situation in which the driver needs to brake
significantly harder than 4 m/s² to avoid an accident".

All speeds here are in m/s and distances in metres (the incident layer
converts to km/h at its boundary); deceleration is positive m/s².
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "KMH_PER_MS",
    "kmh_to_ms",
    "ms_to_kmh",
    "stopping_distance",
    "required_deceleration",
    "impact_speed",
    "BrakingOutcome",
    "resolve_braking",
    "stopping_distance_array",
    "required_deceleration_array",
    "impact_speed_array",
    "BrakingArrays",
    "resolve_braking_arrays",
]

KMH_PER_MS = 3.6


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / KMH_PER_MS


def ms_to_kmh(speed_ms: float) -> float:
    """Convert m/s to km/h."""
    return speed_ms * KMH_PER_MS


def stopping_distance(speed_ms: float, deceleration: float,
                      reaction_time_s: float = 0.0) -> float:
    """Distance to standstill: reaction roll-out plus braking distance."""
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    return speed_ms * reaction_time_s + speed_ms ** 2 / (2.0 * deceleration)


def required_deceleration(speed_ms: float, distance_m: float,
                          reaction_time_s: float = 0.0) -> float:
    """Constant deceleration needed to stop within ``distance_m``.

    Returns ``inf`` when the reaction roll-out alone consumes the distance
    (no finite braking avoids impact) and 0 for zero speed.
    """
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if distance_m < 0:
        raise ValueError("distance must be >= 0")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    if speed_ms == 0.0:
        return 0.0
    braking_distance = distance_m - speed_ms * reaction_time_s
    if braking_distance <= 0.0:
        return math.inf
    return speed_ms ** 2 / (2.0 * braking_distance)


def impact_speed(speed_ms: float, deceleration: float, distance_m: float,
                 reaction_time_s: float = 0.0) -> float:
    """Speed at the obstacle after reaction + braking over ``distance_m``.

    Zero when the vehicle stops short.  The obstacle is treated as
    stationary relative to the conflict point; the caller folds in
    counterpart motion by adjusting the effective distance or speed.
    """
    if speed_ms < 0:
        raise ValueError("speed must be >= 0")
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if distance_m < 0:
        raise ValueError("distance must be >= 0")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")
    braking_distance = distance_m - speed_ms * reaction_time_s
    if braking_distance <= 0.0:
        return speed_ms
    residual_sq = speed_ms ** 2 - 2.0 * deceleration * braking_distance
    if residual_sq <= 0.0:
        return 0.0
    return math.sqrt(residual_sq)


@dataclass(frozen=True)
class BrakingOutcome:
    """Resolution of one braking episode.

    ``impact_speed_ms`` is 0 for successful stops; ``stop_margin_m`` is
    the gap left to the obstacle when stopping short (0 on impact);
    ``peak_deceleration`` the deceleration actually used; and
    ``demanded_deceleration`` what avoiding impact would have required —
    the Sec. II-B-3 observable, recorded even when the episode ends well.
    """

    impact_speed_ms: float
    stop_margin_m: float
    peak_deceleration: float
    demanded_deceleration: float

    @property
    def collided(self) -> bool:
        return self.impact_speed_ms > 0.0


def resolve_braking(speed_ms: float, distance_m: float,
                    comfort_deceleration: float,
                    max_deceleration: float,
                    reaction_time_s: float) -> BrakingOutcome:
    """Resolve an obstacle-ahead episode with a two-stage braking policy.

    The ego prefers comfort braking (the paper's "braking harder than
    3 m/s² is considered uncomfortable"); when comfort braking cannot
    stop in time it escalates to its full current capability.  Whatever it
    uses, ``demanded_deceleration`` records the physical requirement, so
    the caller can count how often demand exceeded any given threshold.
    """
    if comfort_deceleration <= 0 or max_deceleration <= 0:
        raise ValueError("decelerations must be positive")
    if comfort_deceleration > max_deceleration:
        raise ValueError(
            f"comfort deceleration {comfort_deceleration} exceeds capability "
            f"{max_deceleration}")
    demanded = required_deceleration(speed_ms, distance_m, reaction_time_s)
    if demanded <= comfort_deceleration:
        used = comfort_deceleration
    else:
        used = max_deceleration
    speed_at_obstacle = impact_speed(speed_ms, used, distance_m, reaction_time_s)
    if speed_at_obstacle > 0.0:
        return BrakingOutcome(
            impact_speed_ms=speed_at_obstacle,
            stop_margin_m=0.0,
            peak_deceleration=used,
            demanded_deceleration=demanded,
        )
    margin = distance_m - stopping_distance(speed_ms, used, reaction_time_s)
    return BrakingOutcome(
        impact_speed_ms=0.0,
        stop_margin_m=max(margin, 0.0),
        peak_deceleration=used,
        demanded_deceleration=demanded,
    )


# ---------------------------------------------------------------------------
# Array-valued counterparts (the vectorized encounter engine's hot path).
#
# Each *_array function computes, operation for operation, the same IEEE
# arithmetic as its scalar sibling above — ``a ** 2 / (2.0 * b)`` stays
# ``a ** 2 / (2.0 * b)`` — so a size-1 array resolves bit-for-bit like the
# scalar path.  Degenerate elements (consumed roll-out, zero speed) are
# handled with masks instead of branches: divisions run only ``where`` the
# denominator is safe, so no inf/NaN ever leaks out of an intermediate and
# no floating-point warnings fire.
# ---------------------------------------------------------------------------


def _validate_common_arrays(speed_ms: np.ndarray,
                            reaction_time_s: float) -> None:
    if speed_ms.size and np.any(speed_ms < 0):
        raise ValueError("speed must be >= 0")
    if reaction_time_s < 0:
        raise ValueError("reaction time must be >= 0")


def stopping_distance_array(speed_ms: np.ndarray, deceleration: np.ndarray,
                            reaction_time_s: float = 0.0) -> np.ndarray:
    """Vectorized :func:`stopping_distance` (elementwise deceleration)."""
    speed_ms = np.asarray(speed_ms, dtype=float)
    deceleration = np.asarray(deceleration, dtype=float)
    _validate_common_arrays(speed_ms, reaction_time_s)
    if deceleration.size and np.any(deceleration <= 0):
        raise ValueError("deceleration must be positive")
    return speed_ms * reaction_time_s + speed_ms ** 2 / (2.0 * deceleration)


def required_deceleration_array(speed_ms: np.ndarray, distance_m: np.ndarray,
                                reaction_time_s: float = 0.0) -> np.ndarray:
    """Vectorized :func:`required_deceleration`.

    ``inf`` where the reaction roll-out alone consumes the distance, 0 for
    zero speed — exactly the scalar semantics, but computed with masked
    division so no warning-generating intermediate is ever formed.
    """
    speed_ms = np.asarray(speed_ms, dtype=float)
    distance_m = np.asarray(distance_m, dtype=float)
    _validate_common_arrays(speed_ms, reaction_time_s)
    if distance_m.size and np.any(distance_m < 0):
        raise ValueError("distance must be >= 0")
    braking_distance = distance_m - speed_ms * reaction_time_s
    feasible = braking_distance > 0.0
    demanded = np.divide(speed_ms ** 2, 2.0 * braking_distance,
                         out=np.full(np.broadcast(speed_ms, distance_m).shape,
                                     np.inf),
                         where=feasible)
    return np.where(speed_ms == 0.0, 0.0, demanded)


def impact_speed_array(speed_ms: np.ndarray, deceleration: np.ndarray,
                       distance_m: np.ndarray,
                       reaction_time_s: float = 0.0) -> np.ndarray:
    """Vectorized :func:`impact_speed` (elementwise deceleration)."""
    speed_ms = np.asarray(speed_ms, dtype=float)
    deceleration = np.asarray(deceleration, dtype=float)
    distance_m = np.asarray(distance_m, dtype=float)
    _validate_common_arrays(speed_ms, reaction_time_s)
    if deceleration.size and np.any(deceleration <= 0):
        raise ValueError("deceleration must be positive")
    if distance_m.size and np.any(distance_m < 0):
        raise ValueError("distance must be >= 0")
    braking_distance = distance_m - speed_ms * reaction_time_s
    residual_sq = speed_ms ** 2 - 2.0 * deceleration * braking_distance
    residual = np.sqrt(np.maximum(residual_sq, 0.0))
    return np.where(braking_distance <= 0.0, speed_ms,
                    np.where(residual_sq <= 0.0, 0.0, residual))


@dataclass(frozen=True)
class BrakingArrays:
    """Structure-of-arrays resolution of a batch of braking episodes.

    Field-for-field the array analogue of :class:`BrakingOutcome`; the
    ``collided`` mask replaces the scalar property.
    """

    impact_speed_ms: np.ndarray
    stop_margin_m: np.ndarray
    peak_deceleration: np.ndarray
    demanded_deceleration: np.ndarray

    @property
    def collided(self) -> np.ndarray:
        return self.impact_speed_ms > 0.0


def resolve_braking_arrays(speed_ms: np.ndarray, distance_m: np.ndarray,
                           comfort_deceleration: np.ndarray,
                           max_deceleration: np.ndarray,
                           reaction_time_s: float) -> BrakingArrays:
    """Vectorized :func:`resolve_braking` over a batch of episodes.

    ``comfort_deceleration`` / ``max_deceleration`` are elementwise (the
    simulator feeds per-encounter sampled capabilities).  The two-stage
    escalation — comfort when it suffices, full capability otherwise — is
    a ``where`` over the demanded deceleration; stop margins are computed
    for every element and masked to 0 on the collided ones, matching the
    scalar path value for value.
    """
    speed_ms = np.asarray(speed_ms, dtype=float)
    distance_m = np.asarray(distance_m, dtype=float)
    comfort_deceleration = np.asarray(comfort_deceleration, dtype=float)
    max_deceleration = np.asarray(max_deceleration, dtype=float)
    if comfort_deceleration.size and np.any(comfort_deceleration <= 0) or \
            max_deceleration.size and np.any(max_deceleration <= 0):
        raise ValueError("decelerations must be positive")
    if comfort_deceleration.size and \
            np.any(comfort_deceleration > max_deceleration):
        raise ValueError("comfort deceleration exceeds capability")
    demanded = required_deceleration_array(speed_ms, distance_m,
                                           reaction_time_s)
    used = np.where(demanded <= comfort_deceleration,
                    comfort_deceleration, max_deceleration)
    speed_at_obstacle = impact_speed_array(speed_ms, used, distance_m,
                                           reaction_time_s)
    collided = speed_at_obstacle > 0.0
    margin = distance_m - stopping_distance_array(speed_ms, used,
                                                  reaction_time_s)
    return BrakingArrays(
        impact_speed_ms=speed_at_obstacle,
        stop_margin_m=np.where(collided, 0.0, np.maximum(margin, 0.0)),
        peak_deceleration=used,
        demanded_deceleration=demanded,
    )
