"""Campaign checkpoints: atomic persist + resume for fleet campaigns.

The QRN's evidence runs are *long* — exactly the campaigns most likely
to be killed by a deploy, an OOM or a Ctrl-C.  A
:class:`CampaignCheckpoint` is the schema-tagged sibling of
:class:`~repro.obs.manifest.RunManifest` that makes that survivable: the
fleet runner persists every *committed* (validated) chunk result — plus
its telemetry snapshot, when telemetry is on — and a resumed campaign
re-executes only the missing chunks.

Resume is bit-for-bit: the chunk plan and the per-chunk
``SeedSequence.spawn`` children depend only on ``(seed, hours,
chunk_hours)``, restored chunks skip execution but keep their slot in
the chunk-index-ordered merge, and JSON round-trips Python floats
exactly (shortest-repr), so::

    run_fleet(seed, hours)                            # uninterrupted
    == merge(restored chunks ++ re-run missing chunks)  # kill + resume

for any worker count on either side.  ``tests/traffic/test_checkpoint.py``
enforces this as a kill-and-resume property.

Persistence goes through the :mod:`repro.io` artifact boundary
(DESIGN §10): writes are atomic and durable (temp file + ``os.replace``
in the same directory, fsync'd) and carry an embedded payload sha256
digest, so a crash mid-write leaves the previous checkpoint intact and
a truncated or bit-flipped file is *detected*
(:class:`~repro.errors.CorruptArtifactError`) rather than mis-parsed
into half a campaign.  The digest is optional on read — checkpoints
written before the boundary existed still load.  The ``campaign`` block
pins the identity of the run (seed, hours, chunk plan, engine, policy,
mix); resuming against a checkpoint whose identity differs raises
:class:`CheckpointMismatchError` instead of silently merging foreign
chunks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Mapping, Optional

from ..core.incident import IncidentRecord
from ..core.taxonomy import ActorClass
from ..errors import ArtifactError, ArtifactValidationError
from ..io.artifact import ARTIFACTS, ArtifactSchema, register_artifact
from ..io.validate import (Bool, Int, Json, ListOf, MapOf, NullOr, Number,
                           Record, Str)
from ..obs.events import journal_event
from ..obs.session import TelemetrySnapshot
from .simulator import SimulationResult

__all__ = ["CHECKPOINT_SCHEMA", "CHECKPOINT_SCHEMA_NAME", "RESULT_SPEC",
           "CampaignCheckpoint", "CheckpointMismatchError",
           "CheckpointWriteError", "result_to_dict", "result_from_dict",
           "read_checkpoint_progress"]

CHECKPOINT_SCHEMA_NAME = "repro.campaign-checkpoint"
CHECKPOINT_SCHEMA = f"{CHECKPOINT_SCHEMA_NAME}/v1"


class CheckpointMismatchError(ArtifactValidationError):
    """The checkpoint on disk belongs to a different campaign."""


class CheckpointWriteError(ArtifactError):
    """A checkpoint flush failed at the filesystem (disk full, I/O
    error).  Typed (CLI exit 4, runner exit 1 with a parked diagnostic)
    because a campaign that cannot bank its progress must stop loudly —
    the previous complete checkpoint is still on disk (atomic replace),
    so a later ``--resume`` loses at most the un-flushed chunk."""


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Plain-JSON form of one chunk's :class:`SimulationResult`.

    Floats survive exactly: ``json`` serialises Python floats via their
    shortest round-trip repr, so ``result_from_dict(result_to_dict(r))
    == r`` bit-for-bit (dataclass equality over every field).
    """
    return {
        "policy_name": result.policy_name,
        "hours": result.hours,
        "context_hours": dict(result.context_hours),
        "encounters_resolved": result.encounters_resolved,
        "hard_braking_demands": result.hard_braking_demands,
        "hard_braking_threshold_ms2": result.hard_braking_threshold_ms2,
        "records": [
            {
                "counterpart": record.counterpart.name,
                "is_collision": record.is_collision,
                "delta_v_kmh": record.delta_v_kmh,
                "min_distance_m": record.min_distance_m,
                "approach_speed_kmh": record.approach_speed_kmh,
                "time_h": record.time_h,
                "context": record.context,
                "induced": record.induced,
            }
            for record in result.records
        ],
    }


def result_from_dict(data: Mapping[str, object]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    records = [
        IncidentRecord(
            counterpart=ActorClass[str(entry["counterpart"])],
            is_collision=bool(entry["is_collision"]),
            delta_v_kmh=float(entry["delta_v_kmh"]),  # type: ignore[arg-type]
            min_distance_m=float(entry["min_distance_m"]),  # type: ignore[arg-type]
            approach_speed_kmh=float(entry["approach_speed_kmh"]),  # type: ignore[arg-type]
            time_h=float(entry["time_h"]),  # type: ignore[arg-type]
            context=str(entry["context"]),
            induced=bool(entry["induced"]),
        )
        for entry in data["records"]  # type: ignore[union-attr]
    ]
    return SimulationResult(
        policy_name=str(data["policy_name"]),
        hours=float(data["hours"]),  # type: ignore[arg-type]
        context_hours={str(k): float(v) for k, v in
                       dict(data["context_hours"]).items()},  # type: ignore[call-overload]
        records=records,
        encounters_resolved=int(data["encounters_resolved"]),  # type: ignore[arg-type]
        hard_braking_demands=int(data["hard_braking_demands"]),  # type: ignore[arg-type]
        hard_braking_threshold_ms2=float(data["hard_braking_threshold_ms2"]),  # type: ignore[arg-type]
    )


@dataclass
class _ChunkEntry:
    """One persisted chunk: its result + optional telemetry snapshot."""

    result: SimulationResult
    telemetry: Optional[TelemetrySnapshot] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "result": result_to_dict(self.result),
            "telemetry": (None if self.telemetry is None
                          else self.telemetry.to_dict()),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "_ChunkEntry":
        telemetry = data.get("telemetry")
        return cls(
            result=result_from_dict(dict(data["result"])),  # type: ignore[call-overload]
            telemetry=(None if telemetry is None
                       else TelemetrySnapshot.from_dict(dict(telemetry))),  # type: ignore[call-overload]
        )


class CampaignCheckpoint:
    """Mutable on-disk campaign state: identity block + committed chunks.

    Lifecycle: the fleet runner creates one (:meth:`new`) or loads one
    (:meth:`load` + :meth:`ensure_matches`), then calls :meth:`record`
    once per committed chunk — each call rewrites the file atomically,
    so the checkpoint on disk is always a consistent prefix of the
    campaign (in commit order, which may not be index order; resume
    handles any subset).
    """

    def __init__(self, path: Path, campaign: Mapping[str, object],
                 chunks: Optional[Dict[int, _ChunkEntry]] = None,
                 created_utc: Optional[str] = None):
        self.path = Path(path)
        self.campaign = dict(campaign)
        self.chunks: Dict[int, _ChunkEntry] = dict(chunks or {})
        self.created_utc = (created_utc or
                            datetime.now(timezone.utc).isoformat())

    # -- construction -----------------------------------------------------

    @classmethod
    def new(cls, path: Path, campaign: Mapping[str, object],
            ) -> "CampaignCheckpoint":
        return cls(path, campaign)

    @classmethod
    def load(cls, path: Path) -> "CampaignCheckpoint":
        """Load + verify one checkpoint file through the I/O boundary.

        Corruption (truncation, bit-flips against the embedded digest,
        malformed JSON), an unknown or missing schema tag, and
        structurally invalid content all raise the corresponding typed
        :class:`~repro.errors.ArtifactError` subclass.
        """
        checkpoint = ARTIFACTS.load(Path(path), CHECKPOINT_SCHEMA_NAME)
        assert isinstance(checkpoint, CampaignCheckpoint)
        checkpoint.path = Path(path)
        return checkpoint

    # -- identity ---------------------------------------------------------

    def ensure_matches(self, campaign: Mapping[str, object]) -> None:
        """Refuse to resume a different campaign.

        Every key of ``campaign`` must match the stored identity block
        (the worker count is deliberately *not* part of the identity —
        resuming on a different pool size is supported and bit-exact).
        """
        mismatches = {
            key: (self.campaign.get(key), value)
            for key, value in campaign.items()
            if self.campaign.get(key) != value
        }
        if mismatches:
            detail = "; ".join(
                f"{key}: checkpoint={stored!r} requested={wanted!r}"
                for key, (stored, wanted) in sorted(mismatches.items()))
            raise CheckpointMismatchError(
                f"checkpoint {self.path} belongs to a different campaign "
                f"({detail})")

    # -- chunk state ------------------------------------------------------

    def record(self, index: int, result: SimulationResult,
               telemetry: Optional[TelemetrySnapshot] = None) -> None:
        """Persist one committed chunk (atomic rewrite)."""
        self.chunks[index] = _ChunkEntry(result=result, telemetry=telemetry)
        self.save()
        journal_event("checkpoint.committed", chunk_index=int(index),
                      path=str(self.path), chunks_banked=len(self.chunks))

    def completed_results(self) -> Dict[int, SimulationResult]:
        return {index: entry.result
                for index, entry in sorted(self.chunks.items())}

    def completed_telemetry(self) -> Dict[int, Optional[TelemetrySnapshot]]:
        return {index: entry.telemetry
                for index, entry in sorted(self.chunks.items())}

    def units_done(self) -> float:
        """Exposure already banked (sum of restored chunks' hours)."""
        return math.fsum(entry.result.hours
                         for entry in self.chunks.values())

    def chunk_indices(self) -> "tuple[int, ...]":
        """The committed chunk indices, sorted."""
        return tuple(sorted(self.chunks))

    def progress(self) -> Dict[str, object]:
        """A cheap, JSON-ready progress summary (the campaign-service
        status hook: what a supervisor can say about a running or
        requeued job without touching the runner)."""
        return {
            "chunks_banked": len(self.chunks),
            "hours_banked": self.units_done(),
            "chunk_indices": list(self.chunk_indices()),
        }

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "created_utc": self.created_utc,
            "updated_utc": datetime.now(timezone.utc).isoformat(),
            "campaign": dict(self.campaign),
            "chunks": {str(index): entry.to_dict()
                       for index, entry in sorted(self.chunks.items())},
        }

    def save(self) -> None:
        """Atomic, digest-signed write through the I/O boundary.

        A crash at any point leaves either the previous complete
        checkpoint or the new complete checkpoint on disk — never a
        torn file — and the embedded payload digest lets :meth:`load`
        *detect* any later corruption of the bytes.  A filesystem
        failure (including the ``checkpoint-save`` fs-chaos point)
        surfaces as a typed :class:`CheckpointWriteError`, never a raw
        ``OSError`` traceback.
        """
        from ..testing.chaos import fs_chaos, fs_fault

        try:
            fault = fs_chaos("checkpoint-save")
            if fault is not None:
                raise fs_fault(fault, "checkpoint-save")
            ARTIFACTS.save(self.path, CHECKPOINT_SCHEMA_NAME, self)
        except OSError as exc:
            raise CheckpointWriteError(
                f"cannot flush checkpoint: {exc.strerror or exc}",
                source=self.path, schema=CHECKPOINT_SCHEMA) from exc


def read_checkpoint_progress(path: "Path | str",
                             ) -> Optional[Dict[str, object]]:
    """Load a checkpoint read-only and report its banked progress.

    Returns ``None`` when no checkpoint exists yet (a campaign that has
    not committed its first chunk).  Corruption still raises the typed
    :class:`~repro.errors.ArtifactError` taxonomy — a monitoring path
    must *detect* a damaged checkpoint, not shrug at it.
    """
    path = Path(path)
    if not path.exists():
        return None
    return CampaignCheckpoint.load(path).progress()


# -- artifact schema registration ----------------------------------------

def _load_checkpoint(data: Mapping[str, object]) -> CampaignCheckpoint:
    chunks = {
        int(index): _ChunkEntry.from_dict(entry)
        for index, entry in dict(data.get("chunks", {})).items()  # type: ignore[call-overload]
    }
    return CampaignCheckpoint(Path("<unsaved>"), dict(data["campaign"]),  # type: ignore[call-overload]
                              chunks,
                              created_utc=str(data.get("created_utc", "")))


def _checkpoints_equal(a: object, b: object) -> bool:
    """Loaded-state equality (the ``updated_utc`` stamp is volatile)."""
    assert isinstance(a, CampaignCheckpoint)
    assert isinstance(b, CampaignCheckpoint)
    return (a.campaign == b.campaign and a.created_utc == b.created_utc
            and a.chunks == b.chunks)


def _example_checkpoint() -> CampaignCheckpoint:
    """A small deterministic checkpoint for the fuzz tier."""
    result = SimulationResult(
        policy_name="nominal", hours=2.0,
        context_hours={"urban": 1.5, "highway": 0.5},
        records=[
            IncidentRecord(counterpart=ActorClass.VRU, is_collision=False,
                           min_distance_m=0.8, approach_speed_kmh=12.5,
                           time_h=0.25, context="urban"),
            IncidentRecord(counterpart=ActorClass.CAR, is_collision=True,
                           delta_v_kmh=7.25, approach_speed_kmh=31.0,
                           time_h=1.75, context="highway", induced=False),
        ],
        encounters_resolved=41, hard_braking_demands=3,
        hard_braking_threshold_ms2=4.0)
    checkpoint = CampaignCheckpoint(
        Path("<example>"),
        {"seed": 2020, "hours": 4.0, "chunk_hours": 2.0,
         "policy": "nominal", "engine": "vectorized",
         "mix": {"urban": 0.75, "highway": 0.25}},
        created_utc="2026-01-01T00:00:00+00:00")
    checkpoint.chunks[0] = _ChunkEntry(result=result)
    return checkpoint


_RECORD_SPEC = Record(required={
    "counterpart": Str(), "is_collision": Bool(), "delta_v_kmh": Number(),
    "min_distance_m": Number(), "approach_speed_kmh": Number(),
    "time_h": Number(), "context": Str(), "induced": Bool(),
})

#: The structural contract of :func:`result_to_dict`'s payload — public
#: because every artifact embedding a serialised chunk/campaign result
#: (checkpoints here, the service's ``repro.job-result/v1``) must pin
#: the *same* shape, or resume and cache-load drift apart.
RESULT_SPEC = Record(required={
    "policy_name": Str(), "hours": Number(),
    "context_hours": MapOf(Number()),
    "encounters_resolved": Int(), "hard_braking_demands": Int(),
    "hard_braking_threshold_ms2": Number(),
    "records": ListOf(_RECORD_SPEC),
})

_RESULT_SPEC = RESULT_SPEC

_CHUNK_SPEC = Record(required={
    "result": _RESULT_SPEC,
    "telemetry": NullOr(Json()),
})

_CHECKPOINT_SPEC = Record(required={
    "created_utc": Str(),
    "updated_utc": Str(),
    "campaign": MapOf(Json()),
    "chunks": MapOf(_CHUNK_SPEC, keys=(str.isdigit, "a chunk index")),
})

register_artifact(ArtifactSchema(
    name=CHECKPOINT_SCHEMA_NAME,
    version=1,
    spec=_CHECKPOINT_SPEC,
    load=_load_checkpoint,
    dump=CampaignCheckpoint.to_dict,
    label="checkpoint",
    example=_example_checkpoint,
    equal=_checkpoints_equal,
    volatile=("updated_utc",),
))
