"""From simulation output to QRN inputs.

The glue between the substrate and the core: bucket simulated incident
records by incident type, estimate per-type rates with confidence bounds,
and derive empirical contribution splits (Δv distributions per type pushed
through the injury model).  This is the pipeline a real programme would
run against fleet data; here it runs against :mod:`repro.traffic.simulator`
output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..core.consequence import ConsequenceScale
from ..core.incident import (ContributionSplit, IncidentType,
                             SpeedBand, classify_records)
from ..injury.risk_curves import InjuryRiskModel, severity_distribution
from ..injury.classifier import split_for_proximity, _severity_to_class
from ..stats.poisson import RateEstimate, rate_confidence_interval
from .records import classify_block_counts
from .simulator import SimulationResult

__all__ = [
    "TypeRates",
    "estimate_type_rates",
    "empirical_splits",
    "type_counts",
    "weighted_type_counts",
]


@dataclass(frozen=True)
class TypeRates:
    """Per-incident-type rate estimates from one simulation campaign."""

    exposure_hours: float
    estimates: Mapping[str, RateEstimate]
    unclassified: int

    def rate(self, type_id: str) -> RateEstimate:
        try:
            return self.estimates[type_id]
        except KeyError:
            raise KeyError(f"no estimate for incident type {type_id!r}; "
                           f"known: {sorted(self.estimates)}") from None

    def counts(self) -> Dict[str, int]:
        return {type_id: est.count for type_id, est in self.estimates.items()}


def type_counts(result: SimulationResult,
                types: Sequence[IncidentType]) -> Tuple[Dict[str, int], int]:
    """Observed occurrences per incident type, plus the unclassified count.

    A nonzero unclassified count means the incident-type set does not
    cover everything the simulation produced — for MECE-derived type sets
    over the simulated record space this must be zero, and the QRN
    verification treats it as a completeness failure upstream.
    """
    if result.has_block:
        # Columnar fast path: whole-column masks per type, no record
        # materialisation.  Same multi-match error, same counts.
        return classify_block_counts(result.record_block, list(types))
    buckets = classify_records(result.records, types)
    unclassified = len(buckets.pop("<unclassified>"))
    return {type_id: len(records) for type_id, records in buckets.items()}, \
        unclassified


def weighted_type_counts(records: Sequence,
                         weights: Sequence[float],
                         types: Sequence[IncidentType],
                         ) -> Tuple[Dict[str, float], float]:
    """Importance-weighted occurrences per incident type.

    The likelihood-ratio analogue of :func:`type_counts`: each record
    contributes its Campbell weight instead of 1, so the totals are
    unbiased nominal-law expected counts even though the records were
    sampled under a proposal.  Returns the per-type weighted counts and
    the weighted unclassified mass.
    """
    if len(records) != len(weights):
        raise ValueError(
            f"got {len(records)} records but {len(weights)} weights")
    totals: Dict[str, float] = {itype.type_id: 0.0 for itype in types}
    unclassified = 0.0
    type_list = list(types)
    for record, weight in zip(records, weights):
        weight = float(weight)
        if weight < 0 or not np.isfinite(weight):
            raise ValueError(
                f"record weights must be finite and >= 0, got {weight}")
        buckets = classify_records([record], type_list)
        if buckets.pop("<unclassified>"):
            unclassified += weight
            continue
        for type_id, bucket in buckets.items():
            if bucket:
                totals[type_id] += weight
                break
    return totals, unclassified


def estimate_type_rates(result: SimulationResult,
                        types: Sequence[IncidentType],
                        *, confidence: float = 0.95) -> TypeRates:
    """Exact Poisson rate estimates per incident type."""
    counts, unclassified = type_counts(result, types)
    estimates = {
        type_id: rate_confidence_interval(count, result.hours, confidence)
        for type_id, count in counts.items()
    }
    return TypeRates(exposure_hours=result.hours, estimates=estimates,
                     unclassified=unclassified)


def empirical_splits(result: SimulationResult,
                     types: Sequence[IncidentType],
                     model: InjuryRiskModel,
                     scale: ConsequenceScale,
                     *, min_samples: int = 5,
                     ) -> Dict[str, ContributionSplit]:
    """Contribution splits from *observed* Δv distributions.

    For collision types with at least ``min_samples`` observed records,
    the split is the injury model's severity distribution averaged over
    the observed impact speeds — the data-grounded version of Fig. 5's
    70/30.  Types with too few observations fall back to a uniform grid
    over their speed band (the same computation as
    :func:`repro.injury.classifier.split_for_speed_band`), so rare severe
    types still get a defensible split.  Near-miss types use the
    behavioural proximity split.
    """
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    buckets = classify_records(result.records, types)
    splits: Dict[str, ContributionSplit] = {}
    for itype in types:
        if isinstance(itype.margin, SpeedBand):
            observed = [r.delta_v_kmh for r in buckets[itype.type_id]
                        if r.is_collision]
            if len(observed) >= min_samples:
                samples = observed
            else:
                band = itype.margin
                samples = list(np.linspace(band.low_kmh, band.high_kmh, 51)[1:])
            distribution = severity_distribution(model, itype.counterpart,
                                                 samples)
            fractions: Dict[str, float] = {}
            for severity, mass in distribution.items():
                if mass <= 1e-9:
                    continue
                class_id = _severity_to_class(scale, severity)
                if class_id is not None:
                    fractions[class_id] = fractions.get(class_id, 0.0) + mass
            if not fractions:
                raise ValueError(
                    f"no modelled class receives mass for type {itype.type_id}")
            splits[itype.type_id] = ContributionSplit(fractions)
        else:
            splits[itype.type_id] = split_for_proximity(itype.margin, scale)
    return splits
