"""Perception model: when the ego actually sees the conflict.

Encounter outcomes hinge on the distance at which the counterpart is
detected.  The model is deliberately simple but captures the two failure
shapes that matter to the QRN arguments:

* *range limitation*: detection distance is a random fraction of the
  geometric sight distance, degraded by context (night, rain) — a
  "performance limitation" in ISO 21448 terms, which Sec. V insists can
  share one budget with faults;
* *missed detection*: with small probability the counterpart is detected
  only at a fraction of the remaining distance (late detection), standing
  in for both sensor faults and algorithmic misses — cause-agnostic, as
  the quantitative framework wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["PerceptionModel", "default_perception", "degraded_perception"]


@dataclass(frozen=True)
class PerceptionModel:
    """Stochastic detection-distance model.

    ``nominal_fraction`` is the mean fraction of the sight distance at
    which detection happens; ``fraction_std`` its spread;
    ``miss_probability`` the chance of a late detection, in which case
    detection happens at ``late_fraction`` of the sight distance.
    ``context_factors`` multiply the nominal fraction per context label.
    Labels are whatever the calling pipeline uses as contexts — the
    simulator passes road types (urban/suburban/rural/highway), so keys
    like ``night``/``rain`` only take effect in pipelines whose contexts
    carry lighting/weather (e.g. custom encounter profiles); unknown
    labels default to factor 1.
    """

    nominal_fraction: float = 0.9
    fraction_std: float = 0.08
    miss_probability: float = 1e-3
    late_fraction: float = 0.25
    context_factors: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.nominal_fraction <= 1.0):
            raise ValueError("nominal fraction must be in (0, 1]")
        if self.fraction_std < 0:
            raise ValueError("fraction std must be >= 0")
        if not (0.0 <= self.miss_probability <= 1.0):
            raise ValueError("miss probability must be in [0, 1]")
        if not (0.0 < self.late_fraction <= 1.0):
            raise ValueError("late fraction must be in (0, 1]")
        for context, factor in self.context_factors.items():
            if factor <= 0 or factor > 1.0:
                raise ValueError(
                    f"context factor for {context!r} must be in (0, 1], "
                    f"got {factor}")

    def detection_distance(self, sight_distance_m: float, context: str,
                           rng: np.random.Generator) -> float:
        """Sample the distance at which the counterpart is detected.

        Never exceeds the sight distance and never collapses below 1 % of
        it (the counterpart is eventually unmissable).
        """
        if sight_distance_m <= 0:
            raise ValueError("sight distance must be positive")
        factor = self.context_factors.get(context, 1.0)
        if rng.uniform() < self.miss_probability:
            fraction = self.late_fraction * factor
        else:
            fraction = rng.normal(self.nominal_fraction * factor,
                                  self.fraction_std)
        fraction = min(max(fraction, 0.01), 1.0)
        return sight_distance_m * fraction

    def detection_distance_array(self, sight_distance_m: np.ndarray,
                                 context: str,
                                 rng: np.random.Generator) -> np.ndarray:
        """Vectorized :meth:`detection_distance` over a batch of encounters.

        Draw layout (part of the vectorized engine's documented RNG
        contract, see DESIGN §6): one uniform per encounter (the miss
        test) followed by one normal per encounter (the nominal
        fraction).  Unlike the scalar path — which skips the normal on a
        miss — the normal is drawn for *every* element so the layout is a
        pure function of the batch length; the unused draws are
        independent of everything they are ``where``-d out of, so the
        outcome distribution is identical.  A size-1 batch yields the
        scalar value bit-for-bit on the non-miss branch.
        """
        sight_distance_m = np.asarray(sight_distance_m, dtype=float)
        if sight_distance_m.size and np.any(sight_distance_m <= 0):
            raise ValueError("sight distance must be positive")
        factor = self.context_factors.get(context, 1.0)
        n = sight_distance_m.shape[0] if sight_distance_m.ndim else 1
        missed = rng.uniform(size=n) < self.miss_probability
        nominal = rng.normal(self.nominal_fraction * factor,
                             self.fraction_std, size=n)
        fraction = np.where(missed, self.late_fraction * factor, nominal)
        fraction = np.clip(fraction, 0.01, 1.0)
        return sight_distance_m * fraction


def default_perception() -> PerceptionModel:
    """Nominal sensor stack with mild night/rain degradation."""
    return PerceptionModel(
        nominal_fraction=0.9,
        fraction_std=0.08,
        miss_probability=1e-3,
        late_fraction=0.25,
        context_factors={"night": 0.7, "rain": 0.85, "snow": 0.75},
    )


def degraded_perception(miss_probability: float = 1e-2,
                        nominal_fraction: float = 0.75) -> PerceptionModel:
    """A worse stack for sensitivity studies and fault-injection tests."""
    return PerceptionModel(
        nominal_fraction=nominal_fraction,
        fraction_std=0.12,
        miss_probability=miss_probability,
        late_fraction=0.2,
        context_factors={"night": 0.6, "rain": 0.75, "snow": 0.6},
    )
