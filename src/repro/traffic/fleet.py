"""Parallel fleet execution: chunked, seed-stable `simulate_mix` at scale.

The QRN's verification argument (Sec. III / Eq. 1) needs incident-type
frequencies demonstrated from large simulated fleet exposure; the rare
tails that dominate the validation burden (cf. de Gelder & Op den Camp;
Putze et al.) make the required exposures enormous.  :func:`run_fleet`
shards a fleet campaign into fixed-size hour chunks and resolves them on
a process pool, with a hard determinism contract:

    ``run_fleet(seed=s, hours=H, workers=k)`` is **bit-for-bit
    identical for every k** (including the serial ``k=1`` path).

Three mechanisms carry the contract (see :mod:`repro.stats.parallel`):
the chunk plan depends only on ``(hours, chunk_hours)``; every chunk
draws from its own ``SeedSequence.spawn`` child; and chunk results are
merged in chunk-index order through the associative/commutative
:meth:`SimulationResult.merge_many`.  Chunks are stamped onto the global
fleet timeline via ``time_offset_h``, so pooled records keep absolute
times without any post-hoc shifting.

A :class:`FleetProgress` callback makes long campaigns observable
(chunks done, encounters resolved, incidents found) without perturbing
the result — progress arrives in completion order, the one surface the
determinism contract deliberately excludes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from ..obs.session import (TelemetrySnapshot, active_session, maybe_span,
                           telemetry_session)
from ..stats.parallel import Chunk, ChunkProgress, plan_chunks, run_chunked
from .encounters import EncounterGenerator
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy
from .simulator import (SimulationConfig, SimulationResult, _check_engine,
                        simulate_mix)

__all__ = ["FleetProgress", "run_fleet", "DEFAULT_CHUNK_HOURS"]

DEFAULT_CHUNK_HOURS = 250.0
"""Default shard size: large enough to amortise process-pool overhead,
small enough that a typical campaign yields tens of chunks to balance."""


@dataclass(frozen=True)
class FleetProgress:
    """Running totals reported after every completed chunk.

    ``hours_done``/``encounters_resolved``/``incidents_found``/
    ``hard_braking_demands`` accumulate over *completed* chunks, which
    finish in scheduling order — treat these as observability, not as
    part of the deterministic result.
    """

    chunk_index: int
    chunks_done: int
    chunks_total: int
    hours_done: float
    hours_total: float
    encounters_resolved: int
    incidents_found: int
    hard_braking_demands: int


@dataclass(frozen=True)
class _ChunkTask:
    """Everything a worker process needs to simulate one chunk.

    All fields are plain (frozen) dataclasses or mappings, so the task
    pickles once per chunk submission.
    """

    policy: TacticalPolicy
    generator: EncounterGenerator
    perception: PerceptionModel
    braking: BrakingSystem
    mix: Dict[str, float]
    config: Optional[SimulationConfig]
    engine: str = "scalar"
    telemetry: bool = False


@dataclass(frozen=True)
class _ChunkOutput:
    """What a worker ships back: the chunk result + optional telemetry.

    The telemetry snapshot rides alongside the simulation result instead
    of being smuggled through globals, so the pool path and the inline
    path use the identical per-chunk discipline: fresh session in, frozen
    snapshot out, merged once on the coordinator in chunk-index order.
    """

    result: SimulationResult
    telemetry: Optional[TelemetrySnapshot] = None


def _simulate_chunk(task: _ChunkTask, chunk: Chunk,
                    seed_seq: np.random.SeedSequence) -> _ChunkOutput:
    """Worker entry point: one chunk, one private generator.

    Module-level (hence picklable) and seeded exclusively from the
    chunk's own ``SeedSequence`` child — no state is shared with other
    chunks, so results cannot depend on which process ran what.

    When the coordinator requested telemetry, the chunk runs under its
    own fresh :func:`telemetry_session` (nested re-entrantly when inline)
    and returns the frozen snapshot — telemetry never touches the RNG
    stream, so the simulation result is bitwise independent of the flag.
    """
    rng = np.random.default_rng(seed_seq)
    if not task.telemetry:
        return _ChunkOutput(result=simulate_mix(
            task.policy, task.generator, task.perception, task.braking,
            task.mix, chunk.size, rng, task.config,
            time_offset_h=chunk.start, engine=task.engine))
    with telemetry_session() as session:
        result = simulate_mix(task.policy, task.generator, task.perception,
                              task.braking, task.mix, chunk.size, rng,
                              task.config, time_offset_h=chunk.start,
                              engine=task.engine)
    return _ChunkOutput(result=result, telemetry=session.snapshot())


def run_fleet(policy: TacticalPolicy,
              generator: EncounterGenerator,
              perception: PerceptionModel,
              braking: BrakingSystem,
              mix: Mapping[str, float],
              hours: float,
              seed: int,
              *,
              workers: Optional[int] = None,
              chunk_hours: float = DEFAULT_CHUNK_HOURS,
              config: Optional[SimulationConfig] = None,
              progress: Optional[Callable[[FleetProgress], None]] = None,
              engine: str = "vectorized",
              ) -> SimulationResult:
    """Run a fleet campaign of ``hours`` sharded across a worker pool.

    Parameters mirror :func:`~repro.traffic.simulator.simulate_mix`
    except that seeding is by integer ``seed`` (chunks spawn their own
    child streams — passing a live ``Generator`` would tie the draws to
    scheduling order) and ``workers``/``chunk_hours`` control the pool.

    ``workers=None`` uses every available core; ``workers=1`` runs
    serially through the identical chunk plan and seeding, so it is the
    bit-for-bit reference for any parallel run with the same ``seed``,
    ``hours`` and ``chunk_hours``.  Note the chunk size *is* part of the
    RNG layout: changing ``chunk_hours`` legitimately changes the draws
    (but never the statistics' distribution).

    ``engine`` selects the per-core resolution path and defaults to
    ``"vectorized"`` — the structure-of-arrays hot path, so the two
    optimisations (parallelism × vectorization) multiply.  The engine is
    part of the RNG layout (its per-(context × class) sub-streams differ
    from the scalar draw order), so switching engines changes the draws;
    the worker-count determinism contract holds identically for both.
    Pass ``engine="scalar"`` to reproduce pre-engine campaign pins.
    """
    _check_engine(engine)
    session = active_session()
    chunks = plan_chunks(hours, chunk_hours)
    task = _ChunkTask(policy=policy, generator=generator,
                      perception=perception, braking=braking,
                      mix=dict(mix), config=config, engine=engine,
                      telemetry=session is not None)

    adapter: Optional[Callable[[ChunkProgress], None]] = None
    if progress is not None:
        totals = {"encounters": 0, "incidents": 0, "demands": 0}

        def adapter(update: ChunkProgress) -> None:
            result: SimulationResult = update.result.result
            totals["encounters"] += result.encounters_resolved
            totals["incidents"] += len(result.records)
            totals["demands"] += result.hard_braking_demands
            progress(FleetProgress(
                chunk_index=update.chunk_index,
                chunks_done=update.chunks_done,
                chunks_total=update.chunks_total,
                hours_done=update.units_done,
                hours_total=update.units_total,
                encounters_resolved=totals["encounters"],
                incidents_found=totals["incidents"],
                hard_braking_demands=totals["demands"],
            ))

    with maybe_span("run_fleet"):
        outputs = run_chunked(functools.partial(_simulate_chunk, task),
                              chunks, seed, workers=workers,
                              progress=adapter)
        merged = SimulationResult.merge_many([o.result for o in outputs])
        if session is not None:
            gauge = session.metrics.gauge("fleet.chunks_total")
            gauge.set(max(gauge.value, float(len(chunks))))
            chunk_snapshots = [o.telemetry for o in outputs
                               if o.telemetry is not None]
            if chunk_snapshots:
                # One flat merge over all chunk snapshots, in chunk-index
                # order — the same order for every worker count — then a
                # single absorb, nested under "fleet.chunks".
                session.absorb(TelemetrySnapshot.merge_many(chunk_snapshots),
                               under="fleet.chunks")
        return merged
