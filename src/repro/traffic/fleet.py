"""Parallel fleet execution: chunked, seed-stable `simulate_mix` at scale.

The QRN's verification argument (Sec. III / Eq. 1) needs incident-type
frequencies demonstrated from large simulated fleet exposure; the rare
tails that dominate the validation burden (cf. de Gelder & Op den Camp;
Putze et al.) make the required exposures enormous.  :func:`run_fleet`
shards a fleet campaign into fixed-size hour chunks and resolves them on
a process pool, with a hard determinism contract:

    ``run_fleet(seed=s, hours=H, workers=k)`` is **bit-for-bit
    identical for every k** (including the serial ``k=1`` path).

Three mechanisms carry the contract (see :mod:`repro.stats.parallel`):
the chunk plan depends only on ``(hours, chunk_hours)``; every chunk
draws from its own ``SeedSequence.spawn`` child; and chunk results are
merged in chunk-index order through the associative/commutative
:meth:`SimulationResult.merge_many`.  Chunks are stamped onto the global
fleet timeline via ``time_offset_h``, so pooled records keep absolute
times without any post-hoc shifting.

Campaigns are fault tolerant by default (DESIGN §9): chunk execution
runs under a :class:`~repro.stats.fault_tolerance.RetryPolicy` (bounded
retry, per-chunk timeout, ``BrokenProcessPool`` recovery, quarantine →
:class:`~repro.stats.fault_tolerance.CampaignPartialFailure` instead of
total loss), every chunk output passes :func:`validate_chunk_output`
before it may enter the merge, and — because a retried chunk re-runs
from the same ``SeedSequence`` child — any mix of faults still yields
the bit-for-bit fault-free result.  ``checkpoint=``/``resume=`` add
kill-and-resume persistence through
:class:`~repro.traffic.checkpoint.CampaignCheckpoint`.

A :class:`FleetProgress` callback makes long campaigns observable
(chunks done, encounters resolved, incidents found) without perturbing
the result — progress arrives in completion order, the one surface the
determinism contract deliberately excludes.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from ..obs.events import journal_event
from ..obs.profiling import profile_chunk
from ..obs.session import (TelemetrySnapshot, active_session, maybe_span,
                           telemetry_session)
from ..stats.fault_tolerance import (CampaignPartialFailure, ChunkFailure,
                                     RetryPolicy)
from ..stats.parallel import (Chunk, ChunkProgress, default_worker_count,
                              plan_chunks, run_chunked)
from .checkpoint import CampaignCheckpoint
from .encounters import EncounterGenerator
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy
from .records import (RecordBlock, RecordSink, ShippedBlock, receive_block,
                      ship_block, shm_available)
from .simulator import (SimulationConfig, SimulationResult, _check_engine,
                        simulate_mix)

__all__ = ["FleetProgress", "run_fleet", "DEFAULT_CHUNK_HOURS",
           "DEFAULT_RETRY_POLICY", "DEFAULT_MIX", "validate_chunk_output",
           "CHUNK_TRANSPORTS", "policy_by_name", "POLICY_NAMES"]

CHUNK_TRANSPORTS = ("inline", "shm", "pickle")
"""How a worker ships its chunk result back to the coordinator.

* ``"inline"`` — no process boundary (``workers=1``): the result object
  is handed over directly, untouched.
* ``"shm"`` — the record block's bytes are parked in a
  ``multiprocessing.shared_memory`` segment and only a tiny
  :class:`~repro.traffic.records.ShippedBlock` handle is pickled; the
  coordinator copies the block out and unlinks the segment.  Any shm
  failure degrades that chunk to ``"pickle"`` — never aborts.
* ``"pickle"`` — the block-backed result is pickled whole; still
  columnar (numpy arrays pickle compactly), just not zero-copy.

The coordinator counts what actually crossed the boundary:
``parallel.bytes_shipped`` accumulates payload bytes and
``parallel.transport.shm`` / ``parallel.transport.pickle`` count chunks
per transport, so the shipping cost long claimed in this module's
docstrings is measurable in every run manifest."""

DEFAULT_CHUNK_HOURS = 250.0
"""Default shard size: large enough to amortise process-pool overhead,
small enough that a typical campaign yields tens of chunks to balance."""

DEFAULT_RETRY_POLICY = RetryPolicy()
"""The fleet default: 3 attempts per chunk, exponential backoff with
jitter, no per-chunk timeout (opt in via ``retry=RetryPolicy(timeout_s=…)``
— a sensible deadline depends on the chunk size and hardware), at most
2 pool rebuilds before degrading to inline execution."""

DEFAULT_MIX = {"urban": 0.5, "suburban": 0.2, "rural": 0.2, "highway": 0.1}
"""The default context mix every campaign entry point (CLI, dossier,
campaign service) shares.  Part of a campaign's RNG-layout identity, so
the one value must live in one place."""

POLICY_NAMES = ("cautious", "nominal", "aggressive")
"""The named tactical policies a campaign spec may reference."""


def policy_by_name(name: str) -> TacticalPolicy:
    """Resolve a spec/CLI policy name to its :class:`TacticalPolicy`.

    The one mapping both the CLI and the campaign-service runner use —
    a spec naming a policy means the same campaign everywhere.
    """
    from .policy import aggressive_policy, cautious_policy, nominal_policy

    factories = {"cautious": cautious_policy, "nominal": nominal_policy,
                 "aggressive": aggressive_policy}
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from "
                         f"{POLICY_NAMES}") from None
    return factory()

_VALIDATE_REL_TOL = 1e-6
"""Relative tolerance for the chunk validator's exposure cross-checks.
Loose enough for fsum rounding across contexts, tight enough that a
corrupted hour count (wrong chunk, truncated output) cannot pass."""


@dataclass(frozen=True)
class FleetProgress:
    """Running totals reported after every completed chunk.

    ``hours_done``/``encounters_resolved``/``incidents_found``/
    ``hard_braking_demands`` accumulate over *completed* chunks, which
    finish in scheduling order — treat these as observability, not as
    part of the deterministic result.

    On a checkpoint resume, ``chunks_resumed``/``hours_resumed`` report
    the restored baseline and the running totals cover the *whole*
    campaign (restored + this process), so completion fractions stay
    honest while rate/ETA displays can subtract the baseline (see
    ``repro fleet --progress``).

    ``transport``/``bytes_shipped`` surface the chunk-transport story
    live: which transport the campaign resolved to and the cumulative
    payload bytes that actually crossed the pool boundary so far
    (coordinator-side measurement, independent of the telemetry flag).
    ``result`` carries the just-committed chunk's own
    :class:`SimulationResult` so observers (the flight recorder) can
    classify it per chunk — all three are observability, never part of
    the deterministic result.
    """

    chunk_index: int
    chunks_done: int
    chunks_total: int
    hours_done: float
    hours_total: float
    encounters_resolved: int
    incidents_found: int
    hard_braking_demands: int
    chunks_resumed: int = 0
    hours_resumed: float = 0.0
    transport: Optional[str] = None
    bytes_shipped: int = 0
    result: Optional[SimulationResult] = None


@dataclass(frozen=True)
class _ChunkTask:
    """Everything a worker process needs to simulate one chunk.

    All fields are plain (frozen) dataclasses or mappings, so the task
    pickles once per chunk submission — and the return leg is measured,
    not claimed: ``parallel.bytes_shipped`` / ``parallel.transport.*``
    count what actually crosses back (see :data:`CHUNK_TRANSPORTS`).
    """

    policy: TacticalPolicy
    generator: EncounterGenerator
    perception: PerceptionModel
    braking: BrakingSystem
    mix: Dict[str, float]
    config: Optional[SimulationConfig]
    engine: str = "scalar"
    telemetry: bool = False
    transport: str = "inline"


@dataclass(frozen=True)
class _ChunkOutput:
    """What a worker ships back: the chunk result + optional telemetry.

    The telemetry snapshot rides alongside the simulation result instead
    of being smuggled through globals, so the pool path and the inline
    path use the identical per-chunk discipline: fresh session in, frozen
    snapshot out, merged once on the coordinator in chunk-index order.

    Under a non-inline transport the output is in *shipped* form until
    :func:`_receive_chunk_output` rehydrates it on the coordinator:
    ``transport`` names what crossed the boundary, and for ``"shm"``
    ``result`` carries an empty record block with the real one parked in
    the shared-memory segment ``shipped`` points at.  Rehydrated (and
    checkpoint-restored) outputs have ``transport=None``.
    """

    result: SimulationResult
    telemetry: Optional[TelemetrySnapshot] = None
    shipped: Optional[ShippedBlock] = None
    transport: Optional[str] = None


def _simulate_chunk(task: _ChunkTask, chunk: Chunk,
                    seed_seq: np.random.SeedSequence) -> _ChunkOutput:
    """Worker entry point: one chunk, one private generator.

    Module-level (hence picklable) and seeded exclusively from the
    chunk's own ``SeedSequence`` child — no state is shared with other
    chunks, so results cannot depend on which process ran what.  A
    *retried* chunk re-enters here with the same ``seed_seq`` and
    produces the identical output, which is what makes fault recovery
    invisible in the merged statistics.

    When the coordinator requested telemetry, the chunk runs under its
    own fresh :func:`telemetry_session` (nested re-entrantly when inline)
    and returns the frozen snapshot — telemetry never touches the RNG
    stream, so the simulation result is bitwise independent of the flag.
    """
    rng = np.random.default_rng(seed_seq)
    if not task.telemetry:
        result = simulate_mix(
            task.policy, task.generator, task.perception, task.braking,
            task.mix, chunk.size, rng, task.config,
            time_offset_h=chunk.start, engine=task.engine)
        return _pack_output(result, None, task.transport)
    with telemetry_session() as session:
        with profile_chunk():
            result = simulate_mix(task.policy, task.generator,
                                  task.perception, task.braking, task.mix,
                                  chunk.size, rng, task.config,
                                  time_offset_h=chunk.start,
                                  engine=task.engine)
    return _pack_output(result, session.snapshot(), task.transport)


def _pack_output(result: SimulationResult,
                 telemetry: Optional[TelemetrySnapshot],
                 transport: str) -> _ChunkOutput:
    """Worker side of the chunk transport: choose what crosses the pool.

    ``"inline"`` hands the result over untouched (no process boundary).
    Otherwise the record stream goes columnar: under ``"shm"`` the block
    bytes are parked in a shared-memory segment and the pickled output
    carries only the handle (plus a block-less result stub); any shm
    failure — platform without segments, exhausted ``/dev/shm`` —
    degrades this one chunk to ``"pickle"``, which ships the block-backed
    result whole.  Either way no per-record Python objects are pickled.
    """
    if transport == "inline":
        return _ChunkOutput(result=result, telemetry=telemetry)
    block = result.record_block
    if transport == "shm" and len(block):
        try:
            shipped = ship_block(block)
        except Exception:  # noqa: BLE001 - degrade to pickle, never abort
            shipped = None
        if shipped is not None:
            return _ChunkOutput(
                result=result.replaced(records=RecordBlock.empty()),
                telemetry=telemetry, shipped=shipped, transport="shm")
    return _ChunkOutput(result=result.replaced(records=block),
                        telemetry=telemetry, transport="pickle")


def _receive_chunk_output(output: object,
                          stats: Optional[Dict[str, int]] = None) -> object:
    """Coordinator side of the chunk transport (the ``unpack`` hook).

    Rehydrates a shipped :class:`_ChunkOutput` — for ``"shm"`` that
    means attaching, copying out and unlinking the segment — and records
    the transfer telemetry (``parallel.bytes_shipped``,
    ``parallel.transport.*``).  ``stats`` (coordinator-local, optional)
    accumulates the same measurements session-independently so progress
    displays can surface them without requiring ``--telemetry``.
    Anything that is not a shipped output (inline results, restored
    checkpoints, chaos-harness garbage) passes through untouched; the
    returned output has ``transport=None``, so a second unpack is a
    no-op.
    """
    if not isinstance(output, _ChunkOutput) or output.transport is None:
        return output
    result = output.result
    if output.shipped is not None:
        result = result.replaced(records=receive_block(output.shipped))
        nbytes = output.shipped.nbytes
    else:
        nbytes = result.record_block.nbytes
    if stats is not None:
        stats["bytes"] = stats.get("bytes", 0) + int(nbytes)
        stats[output.transport] = stats.get(output.transport, 0) + 1
    session = active_session()
    if session is not None:
        session.metrics.counter("parallel.bytes_shipped").inc(nbytes)
        session.metrics.counter(
            f"parallel.transport.{output.transport}").inc()
    return _ChunkOutput(result=result, telemetry=output.telemetry)


def validate_chunk_output(chunk: Chunk, output: object) -> Optional[str]:
    """The fleet's :class:`ChunkValidator`: accept or reject one chunk.

    Returns ``None`` to accept, or a human-readable rejection reason.
    Rejected outputs never reach the merge — the runner routes them
    through the retry path (failure kind ``invalid``).  Checks, in
    order of cheapness:

    * shape — the output is a ``_ChunkOutput`` holding a
      :class:`SimulationResult` (catches deserialisation garbage);
    * counters — encounter/demand counts are non-negative integers and
      incident counts cannot exceed resolved encounters by construction;
    * exposure — ``hours`` is finite, positive, matches the chunk plan
      (``chunk.size``) to relative tolerance, and the per-context hour
      split sums back to it (the "hour-sum mismatch" corruption);
    * placement — every record's absolute time stamp lies inside this
      chunk's window on the global timeline (catches results written for
      the *wrong* chunk index) and all record floats are finite.
    """
    if not isinstance(output, _ChunkOutput):
        return (f"chunk output has unexpected type "
                f"{type(output).__name__} (expected _ChunkOutput)")
    result = output.result
    if not isinstance(result, SimulationResult):
        return (f"chunk output carries {type(result).__name__} "
                f"(expected SimulationResult)")
    if output.telemetry is not None and \
            not isinstance(output.telemetry, TelemetrySnapshot):
        return (f"chunk telemetry has unexpected type "
                f"{type(output.telemetry).__name__}")
    if not isinstance(result.encounters_resolved, (int, np.integer)) or \
            result.encounters_resolved < 0:
        return (f"encounters_resolved must be a non-negative int, got "
                f"{result.encounters_resolved!r}")
    if not isinstance(result.hard_braking_demands, (int, np.integer)) or \
            result.hard_braking_demands < 0:
        return (f"hard_braking_demands must be a non-negative int, got "
                f"{result.hard_braking_demands!r}")
    if not math.isfinite(result.hours) or result.hours <= 0:
        return f"hours must be finite and positive, got {result.hours!r}"
    tol = _VALIDATE_REL_TOL * max(chunk.size, 1.0)
    if abs(result.hours - chunk.size) > tol:
        return (f"hour-sum mismatch: chunk planned {chunk.size!r} h but "
                f"result reports {result.hours!r} h")
    context_sum = math.fsum(result.context_hours.values())
    for context, hours in result.context_hours.items():
        if not math.isfinite(hours) or hours < 0:
            return (f"context_hours[{context!r}] must be finite and >= 0, "
                    f"got {hours!r}")
    if abs(context_sum - result.hours) > tol:
        return (f"hour-sum mismatch: context hours sum to {context_sum!r} "
                f"but hours is {result.hours!r}")
    window_lo = chunk.start - tol
    window_hi = chunk.start + chunk.size + tol
    if result.has_block:
        # Columnar fast path: whole-column finiteness and window checks,
        # no record materialisation.  Same checks, same messages.
        array = result.record_block.array
        for name in ("time_h", "delta_v_kmh", "min_distance_m",
                     "approach_speed_kmh"):
            finite = np.isfinite(array[name])
            if not finite.all():
                value = float(array[name][int(np.argmin(finite))])
                return f"record field {name} is not finite: {value!r}"
        times = array["time_h"]
        inside = (window_lo <= times) & (times <= window_hi)
        if not inside.all():
            time_h = float(times[int(np.argmin(inside))])
            return (f"record at t={time_h!r} h falls outside this "
                    f"chunk's window [{chunk.start!r}, "
                    f"{chunk.start + chunk.size!r}] — result for the "
                    f"wrong chunk index?")
        return None
    for record in result.records:
        for name in ("time_h", "delta_v_kmh", "min_distance_m",
                     "approach_speed_kmh"):
            value = getattr(record, name)
            if not math.isfinite(value):
                return f"record field {name} is not finite: {value!r}"
        if not window_lo <= record.time_h <= window_hi:
            return (f"record at t={record.time_h!r} h falls outside this "
                    f"chunk's window [{chunk.start!r}, "
                    f"{chunk.start + chunk.size!r}] — result for the "
                    f"wrong chunk index?")
    return None


def _campaign_identity(policy: TacticalPolicy, mix: Mapping[str, float],
                       hours: float, seed: int, chunk_hours: float,
                       engine: str) -> Dict[str, object]:
    """The checkpoint identity block: what *defines* the campaign's draws.

    Worker count is deliberately absent — it is outside the RNG layout,
    so resuming on a different pool size is sound.
    """
    return {
        "seed": seed,
        "hours": hours,
        "chunk_hours": chunk_hours,
        "engine": engine,
        "policy": policy.name,
        "mix": {str(k): float(v) for k, v in sorted(mix.items())},
        "n_chunks": len(plan_chunks(hours, chunk_hours)),
    }


def _open_checkpoint(path: Path, identity: Mapping[str, object],
                     resume: bool) -> CampaignCheckpoint:
    path = Path(path)
    if path.exists():
        if not resume:
            raise FileExistsError(
                f"checkpoint {path} already exists; pass resume=True "
                f"(CLI: --resume) to continue it, or remove it to start "
                f"over")
        checkpoint = CampaignCheckpoint.load(path)
        checkpoint.ensure_matches(identity)
        return checkpoint
    # No file yet: start fresh (with resume=True this is an empty resume).
    return CampaignCheckpoint.new(path, identity)


def run_fleet(policy: TacticalPolicy,
              generator: EncounterGenerator,
              perception: PerceptionModel,
              braking: BrakingSystem,
              mix: Mapping[str, float],
              hours: float,
              seed: int,
              *,
              workers: Optional[int] = None,
              chunk_hours: float = DEFAULT_CHUNK_HOURS,
              config: Optional[SimulationConfig] = None,
              progress: Optional[Callable[[FleetProgress], None]] = None,
              engine: str = "vectorized",
              retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
              validate: bool = True,
              checkpoint: Optional[Union[str, Path]] = None,
              resume: bool = False,
              failure_sink: Optional[List[ChunkFailure]] = None,
              wrap_worker: Optional[Callable[[Callable], Callable]] = None,
              record_sink: Optional[RecordSink] = None,
              transport: Optional[str] = None,
              ) -> SimulationResult:
    """Run a fleet campaign of ``hours`` sharded across a worker pool.

    Parameters mirror :func:`~repro.traffic.simulator.simulate_mix`
    except that seeding is by integer ``seed`` (chunks spawn their own
    child streams — passing a live ``Generator`` would tie the draws to
    scheduling order) and ``workers``/``chunk_hours`` control the pool.

    ``workers=None`` uses every available core; ``workers=1`` runs
    serially through the identical chunk plan and seeding, so it is the
    bit-for-bit reference for any parallel run with the same ``seed``,
    ``hours`` and ``chunk_hours``.  Note the chunk size *is* part of the
    RNG layout: changing ``chunk_hours`` legitimately changes the draws
    (but never the statistics' distribution).

    ``engine`` selects the per-core resolution path and defaults to
    ``"vectorized"`` — the structure-of-arrays hot path, so the two
    optimisations (parallelism × vectorization) multiply.  The engine is
    part of the RNG layout (its per-(context × class) sub-streams differ
    from the scalar draw order), so switching engines changes the draws;
    the worker-count determinism contract holds identically for both.
    Pass ``engine="scalar"`` to reproduce pre-engine campaign pins.

    Fault tolerance (DESIGN §9):

    * ``retry`` (default :data:`DEFAULT_RETRY_POLICY`) bounds per-chunk
      retries, enables ``BrokenProcessPool``/timeout recovery and
      quarantines poison chunks — a campaign with quarantined chunks
      raises :class:`~repro.stats.fault_tolerance.CampaignPartialFailure`
      whose ``completed`` maps chunk index →
      :class:`SimulationResult` for everything that *did* finish.
      ``retry=None`` together with ``validate=False`` restores the
      legacy strict path (first worker exception aborts the campaign).
    * ``validate`` (default on) runs :func:`validate_chunk_output` on
      every chunk before it may be merged (validate-then-commit).
    * ``checkpoint`` names a :class:`~repro.traffic.checkpoint.CampaignCheckpoint`
      JSON file: every committed chunk is persisted atomically, and with
      ``resume=True`` an existing checkpoint's chunks are restored
      instead of re-simulated — the merged result is bit-for-bit the
      uninterrupted run's, for any worker count on either side.
    * ``failure_sink`` collects every recovered
      :class:`~repro.stats.fault_tolerance.ChunkFailure` for manifests.
    * ``wrap_worker`` is the chaos-harness seam
      (:mod:`repro.testing.chaos`): it wraps the per-chunk worker with
      fault injection in tests; production code leaves it ``None``.

    Columnar transport and bounded memory (DESIGN §12):

    * ``transport`` picks how chunk results cross the pool boundary
      (:data:`CHUNK_TRANSPORTS`).  The default (``None``) auto-selects:
      ``"inline"`` for single-worker runs, ``"shm"`` where
      ``multiprocessing.shared_memory`` is available, ``"pickle"``
      otherwise.  Transport never changes results — only how their
      bytes move — and the auto choice is therefore outside the
      determinism contract's identity (checkpoints resume across
      transports).
    * ``record_sink`` streams every committed chunk's record block into
      a :class:`~repro.traffic.records.RecordSink` (one digest-signed
      ``repro.record-block/v1`` part per chunk, atomic writes), keyed
      by chunk index so the on-disk layout is deterministic whatever
      the completion order.  On a checkpoint resume the restored chunks
      are fed to the sink up front, so the spill directory is complete
      even when no chunk re-runs.  The sink bounds what the *caller*
      must keep resident; the merged in-memory result is still
      returned.

    None of this touches the determinism contract — retried chunks
    re-run from the same ``SeedSequence`` child, and only validated
    results are committed, so faulted and fault-free campaigns merge
    identically.
    """
    _check_engine(engine)
    if transport is not None and transport not in CHUNK_TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r}; "
                         f"expected one of {CHUNK_TRANSPORTS}")
    session = active_session()
    chunks = plan_chunks(hours, chunk_hours)
    if transport is None:
        effective_workers = (workers if workers is not None
                             else default_worker_count(len(chunks)))
        if effective_workers <= 1:
            transport = "inline"
        elif shm_available():
            transport = "shm"
        else:
            transport = "pickle"
    task = _ChunkTask(policy=policy, generator=generator,
                      perception=perception, braking=braking,
                      mix=dict(mix), config=config, engine=engine,
                      telemetry=session is not None,
                      transport=transport)

    campaign_checkpoint: Optional[CampaignCheckpoint] = None
    completed: Optional[Dict[int, _ChunkOutput]] = None
    restored_results: List[SimulationResult] = []
    if checkpoint is not None:
        identity = _campaign_identity(policy, mix, hours, seed, chunk_hours,
                                      engine)
        campaign_checkpoint = _open_checkpoint(Path(checkpoint), identity,
                                               resume)
        restored_telemetry = campaign_checkpoint.completed_telemetry()
        completed = {
            index: _ChunkOutput(result=result,
                                telemetry=restored_telemetry.get(index))
            for index, result
            in campaign_checkpoint.completed_results().items()
        }
        for index in completed:
            if not 0 <= index < len(chunks):
                raise ValueError(
                    f"checkpoint chunk index {index} outside the plan "
                    f"0..{len(chunks) - 1}")
        restored_results = [completed[i].result for i in sorted(completed)]

    if record_sink is not None and completed:
        # A resumed campaign never re-runs its restored chunks, so feed
        # them to the sink up front; keyed parts make the re-append of
        # an already-spilled chunk an idempotent overwrite.
        for index in sorted(completed):
            record_sink.append(completed[index].result.record_block,
                               key=index)

    on_commit: Optional[Callable[[Chunk, _ChunkOutput], None]] = None
    if campaign_checkpoint is not None or record_sink is not None:
        def on_commit(chunk: Chunk, output: _ChunkOutput) -> None:
            if campaign_checkpoint is not None:
                campaign_checkpoint.record(chunk.index, output.result,
                                           output.telemetry)
            if record_sink is not None:
                record_sink.append(output.result.record_block,
                                   key=chunk.index)

    # Coordinator-local transfer measurements (bytes + chunks per
    # transport kind) — fed by the unpack hook, surfaced via progress.
    transfer: Dict[str, int] = {}

    adapter: Optional[Callable[[ChunkProgress], None]] = None
    if progress is not None:
        totals = {
            "encounters": sum(r.encounters_resolved
                              for r in restored_results),
            "incidents": sum(r.num_records for r in restored_results),
            "demands": sum(r.hard_braking_demands
                           for r in restored_results),
        }

        def adapter(update: ChunkProgress) -> None:
            result: SimulationResult = update.result.result
            totals["encounters"] += result.encounters_resolved
            totals["incidents"] += result.num_records
            totals["demands"] += result.hard_braking_demands
            progress(FleetProgress(
                chunk_index=update.chunk_index,
                chunks_done=update.chunks_done,
                chunks_total=update.chunks_total,
                hours_done=update.units_done,
                hours_total=update.units_total,
                encounters_resolved=totals["encounters"],
                incidents_found=totals["incidents"],
                hard_braking_demands=totals["demands"],
                chunks_resumed=update.chunks_resumed,
                hours_resumed=update.units_resumed,
                transport=transport,
                bytes_shipped=transfer.get("bytes", 0),
                result=result,
            ))

    worker = functools.partial(_simulate_chunk, task)
    if wrap_worker is not None:
        worker = wrap_worker(worker)

    journal_event("campaign.started", seed=int(seed), hours=float(hours),
                  chunk_hours=float(chunk_hours), engine=engine,
                  policy=policy.name,
                  mix={str(k): float(v) for k, v in sorted(mix.items())},
                  n_chunks=len(chunks),
                  workers=None if workers is None else int(workers),
                  transport=transport,
                  chunks_restored=len(restored_results))
    with maybe_span("run_fleet"):
        try:
            outputs = run_chunked(
                worker, chunks, seed, workers=workers, progress=adapter,
                retry=retry,
                validator=validate_chunk_output if validate else None,
                completed=completed, on_commit=on_commit,
                failure_sink=failure_sink,
                unpack=functools.partial(_receive_chunk_output,
                                         stats=transfer))
        except CampaignPartialFailure as exc:
            journal_event("campaign.failed",
                          quarantined=[int(i) for i in exc.quarantined],
                          chunks_total=exc.chunks_total,
                          chunks_completed=len(exc.completed),
                          failure_count=len(exc.failures))
            # Re-raise with domain results (not private _ChunkOutput
            # wrappers) so callers can merge/report what survived.
            raise CampaignPartialFailure(
                completed={index: output.result
                           for index, output in exc.completed.items()},
                failures=exc.failures,
                quarantined=exc.quarantined,
                chunks_total=exc.chunks_total) from None
        merged = SimulationResult.merge_many([o.result for o in outputs])
        journal_event("campaign.finished", hours=float(merged.hours),
                      encounters=int(merged.encounters_resolved),
                      records=int(merged.num_records),
                      collisions=int(merged.collision_count()),
                      hard_braking_demands=int(merged.hard_braking_demands),
                      chunks=len(chunks),
                      bytes_shipped=transfer.get("bytes", 0))
        if session is not None:
            gauge = session.metrics.gauge("fleet.chunks_total")
            gauge.set(max(gauge.value, float(len(chunks))))
            chunk_snapshots = [o.telemetry for o in outputs
                               if o.telemetry is not None]
            if chunk_snapshots:
                # One flat merge over all chunk snapshots, in chunk-index
                # order — the same order for every worker count — then a
                # single absorb, nested under "fleet.chunks".
                session.absorb(TelemetrySnapshot.merge_many(chunk_snapshots),
                               under="fleet.chunks")
        return merged
