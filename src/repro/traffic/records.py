"""Columnar incident-record blocks: the zero-copy record path.

Fleet-scale QRN campaigns (1e5–1e6+ simulated hours, cf. de Gelder &
Op den Camp; Putze et al.) produce incident streams whose dominant cost
is not the kinematics but the *bookkeeping*: materialising one
:class:`~repro.core.incident.IncidentRecord` Python object per incident,
pickling those objects across the process pool, and re-sorting them
row-by-row at every merge.  A :class:`RecordBlock` keeps the records in
a single structured-numpy array instead:

* **fixed dtype** (:data:`RECORD_DTYPE`) covering every
  ``IncidentRecord`` dataclass field — a reflection test pins the
  one-to-one field coverage, so adding a field without updating the
  columnar path fails loudly;
* **explicit string-enum encoding tables**: counterpart classes encode
  through the process-wide :data:`ACTOR_TABLE` (every
  :class:`~repro.core.taxonomy.ActorClass`, sorted by name so code
  order equals name order), contexts through a per-block sorted
  ``context_table`` — both directions are total and loss-free;
* **canonical form**: a block's context table is always sorted and
  pruned to the contexts actually present, so two blocks holding the
  same logical records are array-equal, and the canonical record sort
  (:meth:`RecordBlock.canonical_sort`) is a pure ``np.lexsort`` over
  the same field precedence as
  :func:`~repro.traffic.simulator._record_sort_key`;
* **O(1)-per-block merge**: :meth:`RecordBlock.concat` concatenates
  arrays and remaps context codes — no per-row Python objects anywhere.

Two transports move blocks between processes (DESIGN §12):

* :func:`ship_block` / :func:`receive_block` pass the raw block bytes
  through ``multiprocessing.shared_memory`` — the worker copies once
  into a named segment and ships only a tiny :class:`ShippedBlock`
  handle; the coordinator attaches, copies out, closes and **unlinks**.
  Both sides unregister the segment from the ``resource_tracker``
  (creation *and* attachment register on POSIX, and the explicit
  unlink below would otherwise race the trackers at interpreter exit).
* the pickle fallback: a block-backed result pickles as one numpy
  array, still far cheaper than per-record objects.  Any shm failure
  (platform without ``/dev/shm``, exhausted segments) degrades to it
  per chunk, never aborting the campaign.

For bounded-memory campaigns a :class:`RecordSink` spills blocks to
disk behind the :mod:`repro.io` boundary: each part is an atomic,
digest-signed ``repro.record-block/v1`` artifact, so a spilled campaign
re-loads with the same corruption detection as checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.incident import IncidentRecord, IncidentType
from ..core.taxonomy import ActorClass
from ..io.artifact import ARTIFACTS, ArtifactSchema, register_artifact
from ..io.validate import Bool, Int, ListOf, Number, Record, Str

__all__ = [
    "RECORD_DTYPE", "ACTOR_TABLE", "RecordBlock", "ShippedBlock",
    "ship_block", "receive_block", "shm_available", "block_type_masks",
    "classify_block_counts", "RecordSink", "iter_record_blocks",
    "load_record_blocks", "RECORD_BLOCK_SCHEMA", "RECORD_BLOCK_SCHEMA_NAME",
    "SHM_NAME_PREFIX",
]

ACTOR_TABLE: Tuple[ActorClass, ...] = tuple(
    sorted(ActorClass, key=lambda cls: cls.name))
"""The fixed counterpart encoding table: every :class:`ActorClass`,
sorted by enum name.  Code order therefore equals name order, which is
what lets the canonical sort compare raw ``uint8`` codes where the
object path compares ``counterpart.name`` strings."""

_ACTOR_CODES: Dict[ActorClass, int] = {
    cls: code for code, cls in enumerate(ACTOR_TABLE)}
_ACTOR_CODES_BY_NAME: Dict[str, int] = {
    cls.name: code for code, cls in enumerate(ACTOR_TABLE)}

RECORD_DTYPE = np.dtype([
    ("counterpart", np.uint8),       # code into ACTOR_TABLE
    ("is_collision", np.bool_),
    ("delta_v_kmh", np.float64),
    ("min_distance_m", np.float64),
    ("approach_speed_kmh", np.float64),
    ("time_h", np.float64),
    ("context", np.uint16),          # code into the block's context_table
    ("induced", np.bool_),
])
"""One column per :class:`IncidentRecord` field, in declaration order.
``tests/traffic/test_records.py`` asserts the coverage reflectively."""

_FLOAT_COLUMNS = ("delta_v_kmh", "min_distance_m", "approach_speed_kmh",
                  "time_h")

SHM_NAME_PREFIX = "repro-blk-"
"""Shared-memory segments are named ``repro-blk-<pid>-<seq>`` so an
operator can recognise (and, after a hard kill, clean) them in
``/dev/shm``."""

_shm_sequence = 0


def actor_code(counterpart: ActorClass) -> int:
    """The fixed ``uint8`` code of one counterpart class."""
    return _ACTOR_CODES[counterpart]


class RecordBlock:
    """An immutable-by-convention columnar batch of incident records.

    ``array`` is a structured array of :data:`RECORD_DTYPE`;
    ``context_table`` decodes the ``context`` column.  Construction
    canonicalises: the table is sorted and pruned to the codes actually
    present (re-coding the column as needed), so logical equality of
    record content implies array equality — the property both
    :meth:`__eq__` and the digest-signed spill format rely on.
    """

    __slots__ = ("array", "context_table")

    def __init__(self, array: np.ndarray,
                 context_table: Sequence[str]) -> None:
        if array.dtype != RECORD_DTYPE:
            raise ValueError(
                f"record block array must have RECORD_DTYPE, got "
                f"{array.dtype}")
        if array.ndim != 1:
            raise ValueError("record block array must be one-dimensional")
        table = tuple(str(context) for context in context_table)
        if len(set(table)) != len(table):
            raise ValueError(f"context table has duplicates: {table}")
        if len(array):
            codes = array["context"]
            max_code = int(codes.max())
            if max_code >= len(table):
                raise ValueError(
                    f"context code {max_code} outside table of "
                    f"{len(table)} entries")
            used = np.unique(codes)
            canonical = tuple(sorted(table[int(code)] for code in used))
            if canonical != table:
                remap = np.zeros(len(table), dtype=np.uint16)
                new_codes = {context: code
                             for code, context in enumerate(canonical)}
                for old_code in used:
                    remap[int(old_code)] = \
                        new_codes[table[int(old_code)]]
                array = array.copy()
                array["context"] = remap[codes]
                table = canonical
        else:
            table = ()
        self.array = array
        self.context_table = table

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "RecordBlock":
        return cls(np.empty(0, dtype=RECORD_DTYPE), ())

    @classmethod
    def from_columns(cls, *, counterpart: np.ndarray,
                     is_collision: np.ndarray, delta_v_kmh: np.ndarray,
                     min_distance_m: np.ndarray,
                     approach_speed_kmh: np.ndarray, time_h: np.ndarray,
                     context: np.ndarray,
                     context_table: Sequence[str],
                     induced: np.ndarray) -> "RecordBlock":
        """Assemble a block from ready-made column arrays (hot path)."""
        n = len(time_h)
        array = np.empty(n, dtype=RECORD_DTYPE)
        array["counterpart"] = counterpart
        array["is_collision"] = is_collision
        array["delta_v_kmh"] = delta_v_kmh
        array["min_distance_m"] = min_distance_m
        array["approach_speed_kmh"] = approach_speed_kmh
        array["time_h"] = time_h
        array["context"] = context
        array["induced"] = induced
        return cls(array, context_table)

    @classmethod
    def from_records(cls, records: Iterable[IncidentRecord]) -> "RecordBlock":
        """Encode materialised records (compat path, not the hot path)."""
        records = list(records)
        if not records:
            return cls.empty()
        table = tuple(sorted({record.context for record in records}))
        codes = {context: code for code, context in enumerate(table)}
        array = np.empty(len(records), dtype=RECORD_DTYPE)
        for i, record in enumerate(records):
            array[i] = (_ACTOR_CODES[record.counterpart],
                        record.is_collision, record.delta_v_kmh,
                        record.min_distance_m, record.approach_speed_kmh,
                        record.time_h, codes[record.context],
                        record.induced)
        return cls(array, table)

    @classmethod
    def concat(cls, blocks: Sequence["RecordBlock"]) -> "RecordBlock":
        """Concatenate blocks, remapping context codes into one table.

        O(total rows) array work, zero per-row Python objects — this is
        the merge primitive behind ``SimulationResult.merge_many``.
        """
        blocks = [block for block in blocks if len(block)]
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        table = tuple(sorted(
            {context for block in blocks for context in block.context_table}))
        codes = {context: code for code, context in enumerate(table)}
        parts: List[np.ndarray] = []
        for block in blocks:
            part = block.array
            if block.context_table != table:
                remap = np.array(
                    [codes[context] for context in block.context_table],
                    dtype=np.uint16)
                part = part.copy()
                part["context"] = remap[part["context"]]
            parts.append(part)
        return cls(np.concatenate(parts), table)

    # -- core protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self.array.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBlock):
            return NotImplemented
        return (self.context_table == other.context_table
                and np.array_equal(self.array, other.array))

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"RecordBlock(<{len(self)} records>, "
                f"contexts={list(self.context_table)})")

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def collision_count(self) -> int:
        return int(np.count_nonzero(self.array["is_collision"]))

    # -- canonical order --------------------------------------------------

    def canonical_sort(self) -> "RecordBlock":
        """The columnar ``_record_sort_key`` order.

        ``np.lexsort`` keys run least- to most-significant, so the list
        below is the sort key's field precedence reversed.  Context and
        counterpart compare by *code*, which equals comparing by string
        because both tables are sorted.  The key covers every field, so
        ties are bit-identical rows and stability is moot.
        """
        if len(self) <= 1:
            return self
        a = self.array
        order = np.lexsort((a["approach_speed_kmh"], a["min_distance_m"],
                            a["delta_v_kmh"], a["induced"],
                            a["is_collision"], a["counterpart"],
                            a["context"], a["time_h"]))
        return RecordBlock(a[order], self.context_table)

    # -- decode -----------------------------------------------------------

    def to_records(self) -> List[IncidentRecord]:
        """Materialise the lazy object view (decode every row)."""
        if not len(self):
            return []
        table = self.context_table
        rows = self.array.tolist()  # list of plain-python tuples, fast
        return [
            IncidentRecord(
                counterpart=ACTOR_TABLE[counterpart_code],
                is_collision=is_collision,
                delta_v_kmh=delta_v_kmh,
                min_distance_m=min_distance_m,
                approach_speed_kmh=approach_speed_kmh,
                time_h=time_h,
                context=table[context_code],
                induced=induced,
            )
            for (counterpart_code, is_collision, delta_v_kmh,
                 min_distance_m, approach_speed_kmh, time_h, context_code,
                 induced) in rows
        ]

    # -- invariants -------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``ValueError`` unless every row is a valid record.

        The columnar mirror of ``IncidentRecord.__post_init__`` plus
        finiteness — the spill-format loader runs this so a corrupted
        (but re-signed) part cannot materialise invalid records later.
        """
        a = self.array
        for name in _FLOAT_COLUMNS:
            if not np.isfinite(a[name]).all():
                raise ValueError(f"record column {name} has non-finite "
                                 f"values")
        collision = a["is_collision"]
        if np.any(collision & (a["delta_v_kmh"] <= 0.0)):
            raise ValueError("a collision record needs a positive delta_v")
        if np.any(~collision & (a["min_distance_m"] <= 0.0)):
            raise ValueError(
                "a non-collision record needs a positive distance")


def _record_fields() -> Tuple[str, ...]:
    return tuple(field.name for field in dataclass_fields(IncidentRecord))


assert set(RECORD_DTYPE.names) == set(_record_fields()), (
    "RECORD_DTYPE must cover every IncidentRecord field; update "
    "repro.traffic.records alongside repro.core.incident")


# -- columnar classification ---------------------------------------------

def _type_mask(block: RecordBlock, itype: IncidentType) -> np.ndarray:
    """Vectorised :meth:`IncidentType.matches` over one block."""
    a = block.array
    mask = ((a["induced"] == itype.induced)
            & (a["counterpart"] == _ACTOR_CODES[itype.counterpart]))
    margin = itype.margin
    if itype.is_collision_type:
        dv = a["delta_v_kmh"]
        return (mask & a["is_collision"]
                & (margin.low_kmh < dv) & (dv <= margin.high_kmh))
    distance = a["min_distance_m"]
    return (mask & ~a["is_collision"]
            & (0.0 < distance) & (distance < margin.max_distance_m)
            & (a["approach_speed_kmh"] > margin.min_approach_speed_kmh))


def block_type_masks(block: RecordBlock,
                     types: Sequence[IncidentType],
                     ) -> Dict[str, np.ndarray]:
    """Per-type membership masks, plus ``"<unclassified>"``.

    The columnar :func:`~repro.core.incident.classify_records`: same
    buckets, same mutual-exclusivity failure (a record matching several
    types raises ``ValueError`` naming the owners), no per-record
    object construction.
    """
    types = list(types)
    masks = {itype.type_id: _type_mask(block, itype) for itype in types}
    if masks:
        owners = np.zeros(len(block), dtype=np.int64)
        for mask in masks.values():
            owners += mask
        if np.any(owners > 1):
            index = int(np.argmax(owners > 1))
            record = block.to_records()[index]
            owner_ids = [itype.type_id for itype in types
                         if masks[itype.type_id][index]]
            raise ValueError(
                f"record {record} matches multiple incident types "
                f"{owner_ids}; types must be mutually exclusive")
        masks["<unclassified>"] = owners == 0
    else:
        masks["<unclassified>"] = np.ones(len(block), dtype=bool)
    return masks


def classify_block_counts(block: RecordBlock,
                          types: Sequence[IncidentType],
                          ) -> Tuple[Dict[str, int], int]:
    """``(per-type counts, unclassified count)`` for one block."""
    masks = block_type_masks(block, types)
    unclassified = int(np.count_nonzero(masks.pop("<unclassified>")))
    return {type_id: int(np.count_nonzero(mask))
            for type_id, mask in masks.items()}, unclassified


# -- shared-memory transport ----------------------------------------------

def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is importable here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all POSIX builds have it
        return False
    return True


def _untrack_shm(shm: object) -> None:
    """Opt one segment out of the per-process ``resource_tracker``.

    Creation *and* attachment register on POSIX; our lifecycle unlinks
    explicitly on the coordinator, so tracker registrations only add
    exit-time double-unlink noise.  The tracker stores the *internal*
    name (``_name``, leading slash included on most platforms), so that
    is what must be unregistered — ``shm.name`` strips the slash.
    Best-effort: a tracker refactor degrades to warnings, never to lost
    data.
    """
    try:  # pragma: no cover - interpreter-internals dependent
        from multiprocessing import resource_tracker
        name = getattr(shm, "_name", None) or shm.name  # type: ignore[attr-defined]
        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class ShippedBlock:
    """Handle to a record block parked in a shared-memory segment.

    What actually crosses the process boundary under shm transport: the
    segment name plus the metadata needed to reconstruct the block
    (row count and context table).  ``nbytes`` is the payload size, for
    the ``parallel.bytes_shipped`` telemetry counter.
    """

    shm_name: str
    length: int
    context_table: Tuple[str, ...]
    nbytes: int


def ship_block(block: RecordBlock) -> ShippedBlock:
    """Copy one block into a fresh shared-memory segment (worker side).

    The segment is closed but **not** unlinked here — ownership passes
    to the coordinator, whose :func:`receive_block` unlinks after
    copying out.  Raises on any shm failure; callers fall back to
    pickle transport.
    """
    from multiprocessing import shared_memory
    import os

    global _shm_sequence
    _shm_sequence += 1
    name = f"{SHM_NAME_PREFIX}{os.getpid()}-{_shm_sequence}"
    shm = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(block.nbytes, 1))
    try:
        _untrack_shm(shm)
        view = np.ndarray(len(block), dtype=RECORD_DTYPE, buffer=shm.buf)
        view[:] = block.array
        del view
    finally:
        shm.close()
    return ShippedBlock(shm_name=name, length=len(block),
                        context_table=block.context_table,
                        nbytes=block.nbytes)


def receive_block(shipped: ShippedBlock) -> RecordBlock:
    """Attach, copy out, close and unlink (coordinator side)."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shipped.shm_name)
    try:
        view = np.ndarray(shipped.length, dtype=RECORD_DTYPE,
                          buffer=shm.buf)
        array = np.array(view, dtype=RECORD_DTYPE)
        del view
    finally:
        shm.close()
        try:
            # unlink() also unregisters this process's attach-time
            # resource_tracker registration, balancing the books.
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            _untrack_shm(shm)
    return RecordBlock(array, shipped.context_table)


# -- spill-to-disk record sink --------------------------------------------

RECORD_BLOCK_SCHEMA_NAME = "repro.record-block"
RECORD_BLOCK_SCHEMA = f"{RECORD_BLOCK_SCHEMA_NAME}/v1"


class RecordSink:
    """Spill incident-record blocks to digest-signed part files.

    The bounded-resident-memory leg of ROADMAP item 5: a campaign feeds
    each committed chunk's block to :meth:`append`; the sink either
    writes it straight to its own part file (when ``key`` is given —
    the fleet passes the chunk index, making the file layout
    deterministic regardless of completion order) or buffers until
    ``max_resident_records`` and flushes one sequence-numbered part.
    Every part is one ``repro.record-block/v1`` artifact written
    atomically through :data:`~repro.io.ARTIFACTS`, so spilled records
    get the same corruption detection as checkpoints.

    The sink keeps O(chunk) resident memory and running totals
    (:meth:`summary`), so a caller that drops the in-memory records
    entirely still reports counts.
    """

    def __init__(self, directory: "Path | str", *,
                 max_resident_records: int = 65536,
                 prefix: str = "records") -> None:
        if max_resident_records < 1:
            raise ValueError(
                f"max_resident_records must be >= 1, got "
                f"{max_resident_records}")
        if not prefix or "/" in prefix:
            raise ValueError(f"invalid sink prefix {prefix!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_resident_records = int(max_resident_records)
        self.prefix = prefix
        self._buffer: List[RecordBlock] = []
        self._buffered = 0
        self._sequence = 0
        self._parts: List[Path] = []
        self.total_records = 0
        self.total_collisions = 0
        self.bytes_written = 0

    # -- writing ----------------------------------------------------------

    def _write_part(self, name: str, block: RecordBlock) -> None:
        path = self.directory / f"{name}.json"
        ARTIFACTS.save(path, RECORD_BLOCK_SCHEMA_NAME, block)
        self._parts.append(path)
        self.bytes_written += path.stat().st_size

    def append(self, block: RecordBlock,
               *, key: Optional[int] = None) -> None:
        """Accept one block; spill immediately (keyed) or via buffer."""
        if not isinstance(block, RecordBlock):
            raise TypeError(
                f"expected RecordBlock, got {type(block).__name__}")
        self.total_records += len(block)
        self.total_collisions += block.collision_count
        if key is not None:
            if key < 0:
                raise ValueError(f"sink key must be >= 0, got {key}")
            self._write_part(f"{self.prefix}-chunk-{int(key):06d}", block)
            return
        if not len(block):
            return
        self._buffer.append(block)
        self._buffered += len(block)
        if self._buffered >= self.max_resident_records:
            self.flush()

    def flush(self) -> None:
        """Spill any buffered (un-keyed) blocks as one part."""
        if not self._buffer:
            return
        block = RecordBlock.concat(self._buffer)
        self._buffer = []
        self._buffered = 0
        self._write_part(f"{self.prefix}-part-{self._sequence:06d}", block)
        self._sequence += 1

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "RecordSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- inspection -------------------------------------------------------

    @property
    def parts(self) -> Tuple[Path, ...]:
        return tuple(self._parts)

    def summary(self) -> Dict[str, object]:
        return {
            "directory": str(self.directory),
            "parts": len(self._parts),
            "records": self.total_records,
            "collisions": self.total_collisions,
            "bytes_written": self.bytes_written,
        }


def iter_record_blocks(directory: "Path | str",
                       prefix: str = "records",
                       ) -> Iterator[RecordBlock]:
    """Load every sink part under ``directory``, in filename order.

    Filename order is chunk-index order for keyed parts and flush order
    for buffered parts, so re-merging iterated blocks reproduces the
    campaign's canonical record stream after one
    :meth:`RecordBlock.concat` + :meth:`RecordBlock.canonical_sort`.
    """
    directory = Path(directory)
    for path in sorted(directory.glob(f"{prefix}-*.json")):
        block = ARTIFACTS.load(path, RECORD_BLOCK_SCHEMA_NAME)
        assert isinstance(block, RecordBlock)
        yield block


def load_record_blocks(directory: "Path | str",
                       prefix: str = "records") -> RecordBlock:
    """All spilled records as one canonically sorted block."""
    blocks = list(iter_record_blocks(directory, prefix))
    return RecordBlock.concat(blocks).canonical_sort()


# -- artifact schema registration ----------------------------------------

def _dump_block(block: RecordBlock) -> Dict[str, object]:
    a = block.array
    return {
        "length": len(block),
        "actor_table": [cls.name for cls in ACTOR_TABLE],
        "context_table": list(block.context_table),
        "columns": {
            "counterpart": a["counterpart"].tolist(),
            "is_collision": a["is_collision"].tolist(),
            "delta_v_kmh": a["delta_v_kmh"].tolist(),
            "min_distance_m": a["min_distance_m"].tolist(),
            "approach_speed_kmh": a["approach_speed_kmh"].tolist(),
            "time_h": a["time_h"].tolist(),
            "context": a["context"].tolist(),
            "induced": a["induced"].tolist(),
        },
    }


def _load_block(data: "Dict[str, object]") -> RecordBlock:
    length = int(data["length"])  # type: ignore[arg-type]
    actor_table = [str(name) for name in data["actor_table"]]  # type: ignore[union-attr]
    context_table = [str(ctx) for ctx in data["context_table"]]  # type: ignore[union-attr]
    columns: Dict[str, list] = dict(data["columns"])  # type: ignore[call-overload]
    for name, column in columns.items():
        if len(column) != length:
            raise ValueError(
                f"column {name} has {len(column)} entries, expected "
                f"{length}")
    # The stored actor table is authoritative for the stored codes:
    # remap through names so a table written by a different build (or a
    # fuzzer permutation) either decodes faithfully or fails loudly.
    try:
        actor_remap = np.array(
            [_ACTOR_CODES_BY_NAME[name] for name in actor_table],
            dtype=np.uint8)
    except KeyError as exc:
        raise ValueError(f"unknown actor class {exc.args[0]!r} in "
                         f"actor_table") from None
    counterpart_codes = np.asarray(columns["counterpart"], dtype=np.int64)
    if length and (counterpart_codes.min() < 0
                   or counterpart_codes.max() >= len(actor_table)):
        raise ValueError("counterpart code outside actor_table")
    context_codes = np.asarray(columns["context"], dtype=np.int64)
    if length and (context_codes.min() < 0
                   or context_codes.max() >= len(context_table)):
        raise ValueError("context code outside context_table")
    for name in _FLOAT_COLUMNS:
        values = np.asarray(columns[name], dtype=np.float64)
        if not np.isfinite(values).all():
            raise ValueError(f"column {name} has non-finite values")
    block = RecordBlock.from_columns(
        counterpart=actor_remap[counterpart_codes],
        is_collision=np.asarray(columns["is_collision"], dtype=bool),
        delta_v_kmh=np.asarray(columns["delta_v_kmh"], dtype=np.float64),
        min_distance_m=np.asarray(columns["min_distance_m"],
                                  dtype=np.float64),
        approach_speed_kmh=np.asarray(columns["approach_speed_kmh"],
                                      dtype=np.float64),
        time_h=np.asarray(columns["time_h"], dtype=np.float64),
        context=context_codes.astype(np.uint16),
        context_table=context_table,
        induced=np.asarray(columns["induced"], dtype=bool))
    block.check_invariants()
    return block


def _example_block() -> RecordBlock:
    """A small deterministic block for the fuzz tier."""
    return RecordBlock.from_records([
        IncidentRecord(counterpart=ActorClass.VRU, is_collision=False,
                       min_distance_m=0.75, approach_speed_kmh=14.5,
                       time_h=0.125, context="urban"),
        IncidentRecord(counterpart=ActorClass.CAR, is_collision=True,
                       delta_v_kmh=6.5, approach_speed_kmh=28.0,
                       time_h=1.5, context="highway"),
        IncidentRecord(counterpart=ActorClass.CAR, is_collision=False,
                       min_distance_m=2.25, approach_speed_kmh=33.0,
                       time_h=2.75, context="urban", induced=True),
    ])


_BLOCK_SPEC = Record(required={
    "length": Int(),
    "actor_table": ListOf(Str()),
    "context_table": ListOf(Str()),
    "columns": Record(required={
        "counterpart": ListOf(Int()),
        "is_collision": ListOf(Bool()),
        "delta_v_kmh": ListOf(Number()),
        "min_distance_m": ListOf(Number()),
        "approach_speed_kmh": ListOf(Number()),
        "time_h": ListOf(Number()),
        "context": ListOf(Int()),
        "induced": ListOf(Bool()),
    }),
})

register_artifact(ArtifactSchema(
    name=RECORD_BLOCK_SCHEMA_NAME,
    version=1,
    spec=_BLOCK_SPEC,
    load=_load_block,
    dump=_dump_block,
    label="record block",
    example=_example_block,
))
