"""Tactical policies: the ADS's exposure-shaping decisions.

The heart of the paper's Sec. II-B-2/3 argument: "an important part of an
ADS feature's safety strategy is to avoid hazardous situations instead of
making sure they can be handled" — exposure is a *design choice*.  A
:class:`TacticalPolicy` captures the levers the paper names:

* target speed per context ("set a speed that is adjusted to safely
  taking care of predicted possible incidents");
* comfort-braking limit (the "braking harder than 3 m/s² is considered
  uncomfortable" instruction);
* proactive slowdown on hazard cues (the proactive-vs-reactive balance:
  "more focus on proactive capability would result in less frequent
  situations where we need to brake significantly harder than 4 m/s²");
* capability awareness ("as long as the tactical decisions know about the
  current actual braking capability, it should be possible to safely
  adjust the driving style accordingly").

Three presets span the design space for the benchmarks; everything is a
plain dataclass so sweeps can interpolate freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

import numpy as np

from .dynamics import kmh_to_ms

__all__ = ["TacticalPolicy", "cautious_policy", "nominal_policy",
           "aggressive_policy"]


_DEFAULT_SPEEDS_KMH: Dict[str, float] = {
    "urban": 40.0,
    "suburban": 60.0,
    "rural": 80.0,
    "highway": 110.0,
}


@dataclass(frozen=True)
class TacticalPolicy:
    """One tactical driving configuration.

    Attributes
    ----------
    name:
        Label for reports and sweeps.
    target_speeds_kmh:
        Cruise speed per context; contexts the policy does not know
        raise, rather than silently defaulting (an unknown context is an
        ODD violation).
    comfort_braking_ms2:
        Preferred deceleration ceiling; harder braking is counted as a
        reactive emergency measure.
    reaction_time_s:
        Perception-to-actuation latency of the ADS stack.
    proactive_slowdown:
        Fraction in [0, 1] by which the ego pre-emptively reduces speed
        when a hazard cue precedes an encounter (0 = purely reactive).
    cue_probability:
        Probability an encounter is preceded by a usable cue (visible
        pedestrian near kerb, brake lights ahead).  A property of the
        policy's situational-awareness investment, per Sec. IV.
    capability_aware:
        Whether the policy adapts speed to degraded braking capability
        (the paper's "know about the current actual braking capability").
    sight_margin:
        Fraction of the visible sight distance within which a comfort-
        braking stop must fit; the ego slows below its target speed when
        road geometry closes in.  Values above 1 model overdriving the
        sight line.  This is the paper's "set a speed that is adjusted to
        safely taking care of predicted possible incidents" made concrete.
    """

    name: str
    target_speeds_kmh: Mapping[str, float]
    comfort_braking_ms2: float = 3.0
    reaction_time_s: float = 0.5
    proactive_slowdown: float = 0.3
    cue_probability: float = 0.6
    capability_aware: bool = True
    sight_margin: float = 0.7

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy must be named")
        if not self.target_speeds_kmh:
            raise ValueError("policy needs at least one context speed")
        for context, speed in self.target_speeds_kmh.items():
            if speed <= 0 or not math.isfinite(speed):
                raise ValueError(
                    f"target speed for {context!r} must be positive, got {speed}")
        if self.comfort_braking_ms2 <= 0:
            raise ValueError("comfort braking limit must be positive")
        if self.reaction_time_s < 0:
            raise ValueError("reaction time must be >= 0")
        if not (0.0 <= self.proactive_slowdown <= 1.0):
            raise ValueError("proactive slowdown must be in [0, 1]")
        if not (0.0 <= self.cue_probability <= 1.0):
            raise ValueError("cue probability must be in [0, 1]")
        if self.sight_margin <= 0:
            raise ValueError("sight margin must be positive")

    def target_speed_ms(self, context: str) -> float:
        """Cruise speed (m/s) for a context; unknown contexts raise."""
        try:
            return kmh_to_ms(self.target_speeds_kmh[context])
        except KeyError:
            raise KeyError(
                f"policy {self.name!r} has no speed for context {context!r}; "
                f"known: {sorted(self.target_speeds_kmh)}") from None

    def approach_speed_ms(self, context: str, cued: bool,
                          braking_capability_ms2: float,
                          nominal_capability_ms2: float) -> float:
        """The speed actually carried into an encounter.

        Applies the proactive slowdown when a cue was available, and — if
        capability-aware — scales speed down with degraded braking so the
        achievable stopping distance is preserved (speed scales with the
        square root of the capability ratio).
        """
        if braking_capability_ms2 <= 0 or nominal_capability_ms2 <= 0:
            raise ValueError("braking capabilities must be positive")
        speed = self.target_speed_ms(context)
        if cued:
            speed *= 1.0 - self.proactive_slowdown
        if self.capability_aware and braking_capability_ms2 < nominal_capability_ms2:
            speed *= math.sqrt(braking_capability_ms2 / nominal_capability_ms2)
        return speed

    def sight_limited_speed_ms(self, sight_distance_m: float,
                               braking_capability_ms2: float) -> float:
        """Max speed whose comfort stop fits inside the sight margin.

        Solves ``v·t_r + v²/(2a) = sight_margin · d`` for ``v`` with
        ``a = min(comfort, capability)`` — the geometric speed limit the
        tactical layer derives from how far it can see.  The *actor* may
        still be detected later than the geometry (perception tail), which
        is where residual risk comes from.
        """
        if sight_distance_m <= 0:
            raise ValueError("sight distance must be positive")
        decel = min(self.comfort_braking_ms2, braking_capability_ms2)
        if decel <= 0:
            raise ValueError("braking capability must be positive")
        budgeted = self.sight_margin * sight_distance_m
        t_r = self.reaction_time_s
        # Quadratic v²/(2a) + v·t_r − budgeted = 0, positive root.
        return (-t_r * decel
                + math.sqrt((t_r * decel) ** 2 + 2.0 * decel * budgeted))

    def encounter_speed_ms(self, context: str, cued: bool,
                           sight_distance_m: float,
                           braking_capability_ms2: float,
                           nominal_capability_ms2: float) -> float:
        """The speed carried into a concrete encounter.

        The minimum of the context/cue/capability speed and the
        sight-geometry limit.
        """
        return min(
            self.approach_speed_ms(context, cued, braking_capability_ms2,
                                   nominal_capability_ms2),
            self.sight_limited_speed_ms(sight_distance_m,
                                        braking_capability_ms2),
        )

    def approach_speed_ms_array(self, context: str, cued: np.ndarray,
                                braking_capability_ms2: np.ndarray,
                                nominal_capability_ms2: float) -> np.ndarray:
        """Vectorized :meth:`approach_speed_ms` over a batch of encounters.

        Same multiplication order as the scalar path (target × cue factor
        × capability factor), so a size-1 batch reproduces the scalar
        value bit-for-bit.
        """
        braking_capability_ms2 = np.asarray(braking_capability_ms2,
                                            dtype=float)
        if nominal_capability_ms2 <= 0 or \
                (braking_capability_ms2.size
                 and np.any(braking_capability_ms2 <= 0)):
            raise ValueError("braking capabilities must be positive")
        speed = np.full(braking_capability_ms2.shape,
                        self.target_speed_ms(context))
        speed = np.where(np.asarray(cued, dtype=bool),
                         speed * (1.0 - self.proactive_slowdown), speed)
        if self.capability_aware:
            degraded = braking_capability_ms2 < nominal_capability_ms2
            scale = np.where(
                degraded,
                np.sqrt(braking_capability_ms2 / nominal_capability_ms2),
                1.0)
            speed = np.where(degraded, speed * scale, speed)
        return speed

    def sight_limited_speed_ms_array(self, sight_distance_m: np.ndarray,
                                     braking_capability_ms2: np.ndarray,
                                     ) -> np.ndarray:
        """Vectorized :meth:`sight_limited_speed_ms` (same quadratic root)."""
        sight_distance_m = np.asarray(sight_distance_m, dtype=float)
        braking_capability_ms2 = np.asarray(braking_capability_ms2,
                                            dtype=float)
        if sight_distance_m.size and np.any(sight_distance_m <= 0):
            raise ValueError("sight distance must be positive")
        if braking_capability_ms2.size and \
                np.any(braking_capability_ms2 <= 0):
            raise ValueError("braking capability must be positive")
        decel = np.minimum(self.comfort_braking_ms2, braking_capability_ms2)
        budgeted = self.sight_margin * sight_distance_m
        t_r = self.reaction_time_s
        return (-t_r * decel
                + np.sqrt((t_r * decel) ** 2 + 2.0 * decel * budgeted))

    def encounter_speed_ms_array(self, context: str, cued: np.ndarray,
                                 sight_distance_m: np.ndarray,
                                 braking_capability_ms2: np.ndarray,
                                 nominal_capability_ms2: float) -> np.ndarray:
        """Vectorized :meth:`encounter_speed_ms`: elementwise minimum of
        the context/cue/capability speed and the sight-geometry limit."""
        return np.minimum(
            self.approach_speed_ms_array(context, cued,
                                         braking_capability_ms2,
                                         nominal_capability_ms2),
            self.sight_limited_speed_ms_array(sight_distance_m,
                                              braking_capability_ms2),
        )

    def with_proactivity(self, proactive_slowdown: float,
                         cue_probability: Optional[float] = None,
                         *, sight_margin: Optional[float] = None,
                         name: Optional[str] = None) -> "TacticalPolicy":
        """A swept copy with different proactive behaviour.

        Proactivity in this model has two levers: how strongly the ego
        slows on hazard cues (``proactive_slowdown`` / ``cue_probability``)
        and how conservatively it budgets its sight line
        (``sight_margin`` — above 1 means relying on reactive braking).
        The Sec. II-B-3 sweeps move both together.
        """
        return replace(
            self,
            name=name if name is not None else
            f"{self.name}(proactivity={proactive_slowdown:g})",
            proactive_slowdown=proactive_slowdown,
            cue_probability=(cue_probability if cue_probability is not None
                             else self.cue_probability),
            sight_margin=(sight_margin if sight_margin is not None
                          else self.sight_margin),
        )


def cautious_policy() -> TacticalPolicy:
    """Low speeds, strong proactive slowdown, good cue usage."""
    return TacticalPolicy(
        name="cautious",
        target_speeds_kmh={ctx: speed * 0.8
                           for ctx, speed in _DEFAULT_SPEEDS_KMH.items()},
        comfort_braking_ms2=2.5,
        reaction_time_s=0.4,
        proactive_slowdown=0.5,
        cue_probability=0.8,
        sight_margin=0.5,
    )


def nominal_policy() -> TacticalPolicy:
    """The reference configuration used throughout the benchmarks."""
    return TacticalPolicy(
        name="nominal",
        target_speeds_kmh=dict(_DEFAULT_SPEEDS_KMH),
        comfort_braking_ms2=3.0,
        reaction_time_s=0.5,
        proactive_slowdown=0.3,
        cue_probability=0.6,
        sight_margin=0.7,
    )


def aggressive_policy() -> TacticalPolicy:
    """High speeds, little proactivity — the reactive end of the spectrum."""
    return TacticalPolicy(
        name="aggressive",
        target_speeds_kmh={ctx: speed * 1.15
                           for ctx, speed in _DEFAULT_SPEEDS_KMH.items()},
        comfort_braking_ms2=3.5,
        reaction_time_s=0.6,
        proactive_slowdown=0.05,
        cue_probability=0.3,
        sight_margin=1.4,
    )
