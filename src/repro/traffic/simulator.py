"""Monte-Carlo driving simulation: encounters → incidents.

The repository's substitute for fleet operation.  One simulation run
drives a tactical policy for a number of hours across a context mix,
resolves every generated encounter through perception + kinematics, and
records the incidents that result.  The outputs feed three arguments:

* incident-type rates for QRN verification (Sec. III / Eq. 1);
* the hard-braking-demand frequency as a function of policy proactivity —
  the Sec. II-B-3 exposure-circularity demonstration (benchmark E7);
* contribution splits grounded in simulated Δv distributions instead of
  expert judgement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.incident import IncidentRecord
from ..core.taxonomy import ActorClass
from ..obs.session import active_session, maybe_span
from ..stats.counting import CountedEvent, CountingLog
from .dynamics import kmh_to_ms, ms_to_kmh, resolve_braking
from .encounters import Encounter, EncounterGenerator
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy
from .records import RecordBlock

__all__ = ["SimulationConfig", "SimulationResult", "simulate",
           "simulate_mix", "ENGINES"]

ENGINES = ("scalar", "vectorized")
"""Available encounter engines.  ``"scalar"`` resolves one encounter at
a time (the reference oracle, and the original RNG layout the scalar
goldens pin); ``"vectorized"`` is the structure-of-arrays hot path
(:mod:`.engine`) with its own documented per-(context × class)
sub-stream layout — statistically interchangeable, not bit-compatible."""


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")


def _record_sim_metrics(*, hours: float, encounters: int, incidents: int,
                        collisions: int, hard_demands: int) -> None:
    """Fold one completed run into the active telemetry session (if any).

    Called once per ``simulate``/``simulate_vectorized`` run — batch
    granularity, never per encounter (DESIGN §8).  A no-op (one global
    read, one ``None`` check) when telemetry is disabled, and RNG-free
    always.
    """
    session = active_session()
    if session is None:
        return
    metrics = session.metrics
    metrics.counter("sim.hours").inc(hours)
    metrics.counter("sim.encounters").inc(encounters)
    metrics.counter("sim.incidents").inc(incidents)
    metrics.counter("sim.collisions").inc(collisions)
    metrics.counter("sim.hard_braking_demands").inc(hard_demands)


def _record_sort_key(record: IncidentRecord) -> Tuple:
    """Total deterministic order over incident records.

    Used to canonicalise record order when pooling runs, so that merging
    is independent of the order in which chunks were produced.  The key
    covers every field; two distinct records practically never tie (all
    continuous quantities), and identical records sort stably anyway.
    """
    return (record.time_h, record.context, record.counterpart.name,
            record.is_collision, record.induced, record.delta_v_kmh,
            record.min_distance_m, record.approach_speed_kmh)


@dataclass(frozen=True)
class SimulationConfig:
    """Tunables that are properties of the *analysis*, not the vehicle.

    ``near_miss_distance_m`` / ``near_miss_speed_kmh`` bound which
    non-collision outcomes are recorded as quality incidents (cf. the
    paper's I₁ margin); ``hard_braking_threshold_ms2`` is the demand level
    counted for the Sec. II-B-3 statistic (the paper's 4 m/s²).
    """

    near_miss_distance_m: float = 2.0
    near_miss_speed_kmh: float = 5.0
    hard_braking_threshold_ms2: float = 4.0
    follower_presence_probability: float = 0.3
    """Probability a hard ego stop happens with a follower close enough
    to be forced into an emergency manoeuvre — the induced incidents of
    Fig. 4's lower half."""

    def __post_init__(self) -> None:
        if self.near_miss_distance_m <= 0:
            raise ValueError("near-miss distance must be positive")
        if self.near_miss_speed_kmh < 0:
            raise ValueError("near-miss speed threshold must be >= 0")
        if self.hard_braking_threshold_ms2 <= 0:
            raise ValueError("hard-braking threshold must be positive")
        if not (0.0 <= self.follower_presence_probability <= 1.0):
            raise ValueError("follower presence must be in [0, 1]")


class SimulationResult:
    """Everything one run observed.

    ``records`` are the incidents (collisions and near-misses);
    ``hard_braking_demands`` counts encounters whose *physical* demand
    exceeded the config threshold, regardless of outcome;
    ``encounters_resolved`` the total conflict count (the exposure the
    tactical policy shaped).

    Storage is dual-mode.  ``records`` may be passed (and held) either
    as a list of :class:`IncidentRecord` objects — the scalar engine's
    native form — or as a columnar
    :class:`~repro.traffic.records.RecordBlock`, the vectorized
    engine's native form.  Both sides stay lazy: ``.records`` on a
    block-backed result materialises the object view on first touch
    (then caches it), ``.record_block`` on a list-backed result encodes
    once on demand.  Every accessor returns identical values either
    way, and equality compares content, not storage mode.
    """

    __slots__ = ("policy_name", "hours", "context_hours",
                 "encounters_resolved", "hard_braking_demands",
                 "hard_braking_threshold_ms2", "_records", "_block")

    def __init__(self, policy_name: str, hours: float,
                 context_hours: Dict[str, float],
                 records: "List[IncidentRecord] | RecordBlock",
                 encounters_resolved: int, hard_braking_demands: int,
                 hard_braking_threshold_ms2: float) -> None:
        self.policy_name = policy_name
        self.hours = hours
        self.context_hours = context_hours
        self.encounters_resolved = encounters_resolved
        self.hard_braking_demands = hard_braking_demands
        self.hard_braking_threshold_ms2 = hard_braking_threshold_ms2
        if isinstance(records, RecordBlock):
            self._records: Optional[List[IncidentRecord]] = None
            self._block: Optional[RecordBlock] = records
        else:
            self._records = list(records)
            self._block = None

    # -- dual-mode record storage -----------------------------------------

    @property
    def records(self) -> List[IncidentRecord]:
        """The object view; materialised (and cached) on first access."""
        if self._records is None:
            assert self._block is not None
            self._records = self._block.to_records()
        return self._records

    @property
    def record_block(self) -> RecordBlock:
        """The columnar view; encoded (and cached) on first access."""
        if self._block is None:
            assert self._records is not None
            self._block = RecordBlock.from_records(self._records)
        return self._block

    @property
    def has_block(self) -> bool:
        """Whether the columnar form already exists (no encode needed)."""
        return self._block is not None

    @property
    def num_records(self) -> int:
        """Record count without materialising the object view."""
        if self._records is not None:
            return len(self._records)
        assert self._block is not None
        return len(self._block)

    def collision_count(self) -> int:
        """Collision count without materialising the object view."""
        if self._records is not None:
            return sum(1 for r in self._records if r.is_collision)
        assert self._block is not None
        return self._block.collision_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        if (self.policy_name != other.policy_name
                or self.hours != other.hours
                or self.context_hours != other.context_hours
                or self.encounters_resolved != other.encounters_resolved
                or self.hard_braking_demands != other.hard_braking_demands
                or self.hard_braking_threshold_ms2
                != other.hard_braking_threshold_ms2):
            return False
        if self._block is not None and other._block is not None:
            return self._block == other._block
        return self.records == other.records

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"SimulationResult(policy_name={self.policy_name!r}, "
                f"hours={self.hours!r}, "
                f"context_hours={self.context_hours!r}, "
                f"records=<{self.num_records} records"
                f"{' (columnar)' if self._records is None else ''}>, "
                f"encounters_resolved={self.encounters_resolved!r}, "
                f"hard_braking_demands={self.hard_braking_demands!r}, "
                f"hard_braking_threshold_ms2="
                f"{self.hard_braking_threshold_ms2!r})")

    def replaced(self, **changes: object) -> "SimulationResult":
        """A copy with named constructor arguments replaced
        (``dataclasses.replace`` for the dual-storage result)."""
        kwargs: Dict[str, object] = {
            "policy_name": self.policy_name,
            "hours": self.hours,
            "context_hours": self.context_hours,
            "records": self._block if self._records is None
            else self._records,
            "encounters_resolved": self.encounters_resolved,
            "hard_braking_demands": self.hard_braking_demands,
            "hard_braking_threshold_ms2": self.hard_braking_threshold_ms2,
        }
        unknown = set(changes) - set(kwargs)
        if unknown:
            raise TypeError(f"unknown result fields {sorted(unknown)}")
        kwargs.update(changes)
        return SimulationResult(**kwargs)  # type: ignore[arg-type]

    # -- accessors ---------------------------------------------------------

    def collisions(self) -> List[IncidentRecord]:
        return [r for r in self.records if r.is_collision]

    def near_misses(self) -> List[IncidentRecord]:
        return [r for r in self.records if not r.is_collision]

    def collision_rate_per_hour(self) -> float:
        return self.collision_count() / self.hours

    def hard_braking_rate_per_hour(self) -> float:
        """The Sec. II-B-3 observable: demand > threshold, per hour."""
        return self.hard_braking_demands / self.hours

    def counting_log(self, categorise) -> CountingLog:
        """Convert to a :class:`CountingLog` using a record→category map.

        ``categorise(record)`` returns a category string or ``None`` to
        skip the record.  Typically built from incident types via
        :func:`repro.core.incident.classify_records` semantics.
        """
        log = CountingLog(self.hours)
        for record in self.records:
            category = categorise(record)
            if category is None:
                continue
            log.record(CountedEvent(category, min(record.time_h, self.hours),
                                    record.context))
        return log

    @classmethod
    def merge_many(cls, results: Iterable["SimulationResult"],
                   ) -> "SimulationResult":
        """Pool any number of runs of the same policy, order-independently.

        The merge is **associative and commutative**: records carry
        absolute time stamps (chunks are stamped at generation time via
        ``time_offset_h``), so pooling concatenates and canonically sorts
        them instead of shifting; scalar exposures are summed with
        ``math.fsum`` (correctly rounded, hence input-order invariant);
        event counts are exact integer sums.  This is the property the
        parallel fleet runner relies on to be bit-for-bit identical for
        any worker count, and :mod:`tests.stats.test_parallel` enforces
        it over shuffled chunk orders.
        """
        results = list(results)
        if not results:
            raise ValueError("merge_many needs at least one result")
        first = results[0]
        for other in results[1:]:
            if other.policy_name != first.policy_name:
                raise ValueError(
                    f"cannot merge runs of policies {first.policy_name!r} "
                    f"and {other.policy_name!r}")
            if other.hard_braking_threshold_ms2 != \
                    first.hard_braking_threshold_ms2:
                raise ValueError(
                    "cannot merge runs with different demand thresholds")
        context_values: Dict[str, List[float]] = {}
        for result in results:
            for context, hours in result.context_hours.items():
                context_values.setdefault(context, []).append(hours)
        context_hours = {context: math.fsum(values)
                         for context, values in sorted(context_values.items())}
        if all(result.has_block for result in results):
            # Columnar merge: one O(total) concat + lexsort, no
            # IncidentRecord objects.  Produces the same canonical
            # order as the sorted() below (same key precedence), so
            # storage mode never changes merge content.
            records: "List[IncidentRecord] | RecordBlock" = \
                RecordBlock.concat(
                    [result.record_block for result in results]
                ).canonical_sort()
        else:
            records = sorted(
                (r for result in results for r in result.records),
                key=_record_sort_key)
        return cls(
            policy_name=first.policy_name,
            hours=math.fsum(r.hours for r in results),
            context_hours=context_hours,
            records=records,
            encounters_resolved=sum(r.encounters_resolved for r in results),
            hard_braking_demands=sum(r.hard_braking_demands for r in results),
            hard_braking_threshold_ms2=first.hard_braking_threshold_ms2,
        )

    def merged(self, other: "SimulationResult") -> "SimulationResult":
        """Pool two runs of the same policy (exposures add).

        Commutative: ``a.merged(b)`` equals ``b.merged(a)`` field for
        field (see :meth:`merge_many` for why).
        """
        return SimulationResult.merge_many([self, other])


def _closing_speed_ms(ego_speed_ms: float, encounter: Encounter) -> float:
    """Relative speed along the conflict course.

    Crossing actors (VRU, animal) and static objects block the ego's path:
    the closing speed is the ego's own speed.  Same-direction traffic
    (cars, trucks, other) closes at the speed difference; a non-positive
    difference dissolves the conflict.
    """
    if encounter.counterpart in (ActorClass.VRU, ActorClass.ANIMAL,
                                 ActorClass.STATIC_OBJECT):
        return ego_speed_ms
    return max(ego_speed_ms - kmh_to_ms(encounter.counterpart_speed_kmh), 0.0)


def _resolve_encounter(encounter: Encounter, policy: TacticalPolicy,
                       perception: PerceptionModel, braking: BrakingSystem,
                       config: SimulationConfig,
                       rng: np.random.Generator,
                       time_offset_h: float = 0.0,
                       ) -> Tuple[Optional[IncidentRecord], bool]:
    """Resolve one encounter; returns (incident or None, hard_demand_flag).

    ``time_offset_h`` shifts record stamps onto the caller's global
    timeline (the encounter's own stamp is chunk-local).
    """
    actual_capability = braking.sample_capability(rng)
    known_capability = braking.known_capability(actual_capability)
    ego_speed = policy.encounter_speed_ms(
        encounter.context, encounter.cue_available,
        encounter.sight_distance_m, known_capability, braking.nominal_ms2)
    closing = _closing_speed_ms(ego_speed, encounter)
    if closing <= 0.0:
        return None, False
    detection = perception.detection_distance(
        encounter.sight_distance_m, encounter.context, rng)
    comfort = min(policy.comfort_braking_ms2, actual_capability)
    outcome = resolve_braking(
        speed_ms=closing,
        distance_m=detection,
        comfort_deceleration=comfort,
        max_deceleration=actual_capability,
        reaction_time_s=policy.reaction_time_s,
    )
    hard_demand = (math.isfinite(outcome.demanded_deceleration)
                   and outcome.demanded_deceleration
                   > config.hard_braking_threshold_ms2) or \
        math.isinf(outcome.demanded_deceleration)
    if outcome.collided:
        return IncidentRecord(
            counterpart=encounter.counterpart,
            is_collision=True,
            delta_v_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_distance_m=0.0,
            approach_speed_kmh=ms_to_kmh(closing),
            time_h=encounter.time_h + time_offset_h,
            context=encounter.context,
        ), hard_demand
    near_miss = (outcome.stop_margin_m < config.near_miss_distance_m
                 and ms_to_kmh(closing) > config.near_miss_speed_kmh)
    if near_miss:
        return IncidentRecord(
            counterpart=encounter.counterpart,
            is_collision=False,
            delta_v_kmh=0.0,
            min_distance_m=max(outcome.stop_margin_m, 1e-3),
            approach_speed_kmh=ms_to_kmh(closing),
            time_h=encounter.time_h + time_offset_h,
            context=encounter.context,
        ), hard_demand
    return None, hard_demand


def simulate(policy: TacticalPolicy,
             generator: EncounterGenerator,
             perception: PerceptionModel,
             braking: BrakingSystem,
             context: str,
             hours: float,
             rng: np.random.Generator,
             config: Optional[SimulationConfig] = None,
             *,
             time_offset_h: float = 0.0,
             engine: str = "scalar") -> SimulationResult:
    """Drive ``hours`` in one context and record incidents.

    ``time_offset_h`` places this run's records on a global fleet
    timeline (record stamps become ``offset + local time``); exposure
    bookkeeping (``hours``) is unaffected.  The parallel fleet runner
    uses it so chunk results can be pooled without re-stamping.

    ``engine`` selects the resolution path (see :data:`ENGINES`).  The
    two engines draw the same distributions through different RNG
    layouts, so their runs agree statistically, not bit-for-bit —
    :mod:`tests.traffic.test_engine_equivalence` pins both properties.
    """
    _check_engine(engine)
    if engine == "vectorized":
        from .engine import simulate_vectorized
        return simulate_vectorized(policy, generator, perception, braking,
                                   context, hours, rng, config,
                                   time_offset_h=time_offset_h)
    if config is None:
        config = SimulationConfig()
    if time_offset_h < 0 or not math.isfinite(time_offset_h):
        raise ValueError(f"time offset must be finite and >= 0, got {time_offset_h}")
    with maybe_span("simulate.scalar"):
        encounters = generator.generate(context, hours,
                                        policy.cue_probability, rng)
        records: List[IncidentRecord] = []
        hard_demands = 0
        for encounter in encounters:
            record, hard = _resolve_encounter(encounter, policy, perception,
                                              braking, config, rng,
                                              time_offset_h)
            if hard:
                hard_demands += 1
                # Fig. 4's lower half: a hard ego stop with a close follower
                # induces an incident between third parties (here: the
                # follower's emergency manoeuvre behind the ego).
                if rng.uniform() < config.follower_presence_probability:
                    records.append(IncidentRecord(
                        counterpart=ActorClass.CAR,
                        is_collision=False,
                        min_distance_m=float(rng.uniform(0.3, 4.0)),
                        approach_speed_kmh=float(rng.uniform(10.0, 60.0)),
                        time_h=encounter.time_h + time_offset_h,
                        context=context,
                        induced=True,
                    ))
            if record is not None:
                records.append(record)
        result = SimulationResult(
            policy_name=policy.name,
            hours=hours,
            context_hours={context: hours},
            records=records,
            encounters_resolved=len(encounters),
            hard_braking_demands=hard_demands,
            hard_braking_threshold_ms2=config.hard_braking_threshold_ms2,
        )
        _record_sim_metrics(
            hours=hours, encounters=result.encounters_resolved,
            incidents=len(result.records),
            collisions=sum(1 for r in result.records if r.is_collision),
            hard_demands=hard_demands)
        return result


def _split_hours(hours: float, weights: Sequence[float]) -> List[float]:
    """Split ``hours`` by ``weights`` such that the parts sum back exactly.

    Naive ``hours * w`` parts can drop (or double-count) a few ulps of
    exposure when the weights don't divide ``hours`` evenly in binary —
    enough to make exposure bookkeeping (``sum(context_hours) == hours``)
    silently false.  The last part is therefore the exact remainder, with
    an ulp-correction loop so the *sequential* float sum of the returned
    parts reproduces ``hours`` bit-for-bit.
    """
    parts = [hours * w for w in weights[:-1]]
    last = hours - math.fsum(parts)
    for _ in range(8):
        total = 0.0
        for p in parts:
            total += p
        total += last
        if total == hours:
            break
        last += hours - total
    if last <= 0 or not math.isfinite(last):
        raise ValueError(
            f"context mix leaves no exposure for the final context "
            f"(remainder {last}); weights too small relative to float "
            f"precision")
    return parts + [last]


def simulate_mix(policy: TacticalPolicy,
                 generator: EncounterGenerator,
                 perception: PerceptionModel,
                 braking: BrakingSystem,
                 mix: Mapping[str, float],
                 hours: float,
                 rng: np.random.Generator,
                 config: Optional[SimulationConfig] = None,
                 *,
                 time_offset_h: float = 0.0,
                 engine: str = "scalar") -> SimulationResult:
    """Drive ``hours`` split across a context mix (weights sum to 1).

    Contexts are laid out back to back on one timeline (in sorted
    context order); exposure splitting is exact — the per-context hours
    sum back to ``hours`` bit-for-bit even for weights that don't divide
    it evenly (see :func:`_split_hours`).  ``time_offset_h`` shifts the
    whole run on a global fleet timeline, for chunked parallel execution.
    ``engine`` selects the per-context resolution path (:data:`ENGINES`).
    """
    _check_engine(engine)
    if not mix:
        raise ValueError("context mix must be non-empty")
    total = sum(mix.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"context mix must sum to 1, got {total}")
    if any(w < 0 for w in mix.values()):
        raise ValueError("context weights must be >= 0")
    contexts = [(c, w) for c, w in sorted(mix.items()) if w > 0.0]
    if not contexts:
        raise ValueError("context mix has no positive weights")
    part_hours = _split_hours(hours, [w for _, w in contexts])
    parts: List[SimulationResult] = []
    offset = time_offset_h
    with maybe_span("simulate_mix"):
        for (context, _), ctx_hours in zip(contexts, part_hours):
            parts.append(simulate(policy, generator, perception, braking,
                                  context, ctx_hours, rng, config,
                                  time_offset_h=offset, engine=engine))
            offset += ctx_hours
    if all(part.has_block for part in parts):
        records: "List[IncidentRecord] | RecordBlock" = RecordBlock.concat(
            [part.record_block for part in parts]).canonical_sort()
    else:
        records = sorted((r for part in parts for r in part.records),
                         key=_record_sort_key)
    # Construct directly (rather than via merge_many) so the result's
    # total is the *requested* hours bit-for-bit, not a re-summation.
    return SimulationResult(
        policy_name=policy.name,
        hours=hours,
        context_hours={context: ctx_hours
                       for (context, _), ctx_hours in zip(contexts, part_hours)},
        records=records,
        encounters_resolved=sum(p.encounters_resolved for p in parts),
        hard_braking_demands=sum(p.hard_braking_demands for p in parts),
        hard_braking_threshold_ms2=parts[0].hard_braking_threshold_ms2,
    )
