"""Monte-Carlo driving simulation: encounters → incidents.

The repository's substitute for fleet operation.  One simulation run
drives a tactical policy for a number of hours across a context mix,
resolves every generated encounter through perception + kinematics, and
records the incidents that result.  The outputs feed three arguments:

* incident-type rates for QRN verification (Sec. III / Eq. 1);
* the hard-braking-demand frequency as a function of policy proactivity —
  the Sec. II-B-3 exposure-circularity demonstration (benchmark E7);
* contribution splits grounded in simulated Δv distributions instead of
  expert judgement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.incident import IncidentRecord
from ..core.taxonomy import ActorClass
from ..stats.counting import CountedEvent, CountingLog
from .dynamics import kmh_to_ms, ms_to_kmh, resolve_braking
from .encounters import Encounter, EncounterGenerator
from .faults import BrakingSystem
from .perception import PerceptionModel
from .policy import TacticalPolicy

__all__ = ["SimulationConfig", "SimulationResult", "simulate", "simulate_mix"]


@dataclass(frozen=True)
class SimulationConfig:
    """Tunables that are properties of the *analysis*, not the vehicle.

    ``near_miss_distance_m`` / ``near_miss_speed_kmh`` bound which
    non-collision outcomes are recorded as quality incidents (cf. the
    paper's I₁ margin); ``hard_braking_threshold_ms2`` is the demand level
    counted for the Sec. II-B-3 statistic (the paper's 4 m/s²).
    """

    near_miss_distance_m: float = 2.0
    near_miss_speed_kmh: float = 5.0
    hard_braking_threshold_ms2: float = 4.0
    follower_presence_probability: float = 0.3
    """Probability a hard ego stop happens with a follower close enough
    to be forced into an emergency manoeuvre — the induced incidents of
    Fig. 4's lower half."""

    def __post_init__(self) -> None:
        if self.near_miss_distance_m <= 0:
            raise ValueError("near-miss distance must be positive")
        if self.near_miss_speed_kmh < 0:
            raise ValueError("near-miss speed threshold must be >= 0")
        if self.hard_braking_threshold_ms2 <= 0:
            raise ValueError("hard-braking threshold must be positive")
        if not (0.0 <= self.follower_presence_probability <= 1.0):
            raise ValueError("follower presence must be in [0, 1]")


@dataclass
class SimulationResult:
    """Everything one run observed.

    ``records`` are the incidents (collisions and near-misses);
    ``hard_braking_demands`` counts encounters whose *physical* demand
    exceeded the config threshold, regardless of outcome;
    ``encounters_resolved`` the total conflict count (the exposure the
    tactical policy shaped).
    """

    policy_name: str
    hours: float
    context_hours: Dict[str, float]
    records: List[IncidentRecord]
    encounters_resolved: int
    hard_braking_demands: int
    hard_braking_threshold_ms2: float

    def collisions(self) -> List[IncidentRecord]:
        return [r for r in self.records if r.is_collision]

    def near_misses(self) -> List[IncidentRecord]:
        return [r for r in self.records if not r.is_collision]

    def collision_rate_per_hour(self) -> float:
        return len(self.collisions()) / self.hours

    def hard_braking_rate_per_hour(self) -> float:
        """The Sec. II-B-3 observable: demand > threshold, per hour."""
        return self.hard_braking_demands / self.hours

    def counting_log(self, categorise) -> CountingLog:
        """Convert to a :class:`CountingLog` using a record→category map.

        ``categorise(record)`` returns a category string or ``None`` to
        skip the record.  Typically built from incident types via
        :func:`repro.core.incident.classify_records` semantics.
        """
        log = CountingLog(self.hours)
        for record in self.records:
            category = categorise(record)
            if category is None:
                continue
            log.record(CountedEvent(category, min(record.time_h, self.hours),
                                    record.context))
        return log

    def merged(self, other: "SimulationResult") -> "SimulationResult":
        """Pool two runs of the same policy (exposures add)."""
        if other.policy_name != self.policy_name:
            raise ValueError(
                f"cannot merge runs of policies {self.policy_name!r} and "
                f"{other.policy_name!r}")
        if other.hard_braking_threshold_ms2 != self.hard_braking_threshold_ms2:
            raise ValueError("cannot merge runs with different demand thresholds")
        context_hours = dict(self.context_hours)
        for context, hours in other.context_hours.items():
            context_hours[context] = context_hours.get(context, 0.0) + hours
        shifted = [
            IncidentRecord(
                counterpart=r.counterpart, is_collision=r.is_collision,
                delta_v_kmh=r.delta_v_kmh, min_distance_m=r.min_distance_m,
                approach_speed_kmh=r.approach_speed_kmh,
                time_h=r.time_h + self.hours, context=r.context,
                induced=r.induced)
            for r in other.records
        ]
        return SimulationResult(
            policy_name=self.policy_name,
            hours=self.hours + other.hours,
            context_hours=context_hours,
            records=self.records + shifted,
            encounters_resolved=self.encounters_resolved + other.encounters_resolved,
            hard_braking_demands=self.hard_braking_demands + other.hard_braking_demands,
            hard_braking_threshold_ms2=self.hard_braking_threshold_ms2,
        )


def _closing_speed_ms(ego_speed_ms: float, encounter: Encounter) -> float:
    """Relative speed along the conflict course.

    Crossing actors (VRU, animal) and static objects block the ego's path:
    the closing speed is the ego's own speed.  Same-direction traffic
    (cars, trucks, other) closes at the speed difference; a non-positive
    difference dissolves the conflict.
    """
    if encounter.counterpart in (ActorClass.VRU, ActorClass.ANIMAL,
                                 ActorClass.STATIC_OBJECT):
        return ego_speed_ms
    return max(ego_speed_ms - kmh_to_ms(encounter.counterpart_speed_kmh), 0.0)


def _resolve_encounter(encounter: Encounter, policy: TacticalPolicy,
                       perception: PerceptionModel, braking: BrakingSystem,
                       config: SimulationConfig,
                       rng: np.random.Generator,
                       ) -> Tuple[Optional[IncidentRecord], bool]:
    """Resolve one encounter; returns (incident or None, hard_demand_flag)."""
    actual_capability = braking.sample_capability(rng)
    known_capability = braking.known_capability(actual_capability)
    ego_speed = policy.encounter_speed_ms(
        encounter.context, encounter.cue_available,
        encounter.sight_distance_m, known_capability, braking.nominal_ms2)
    closing = _closing_speed_ms(ego_speed, encounter)
    if closing <= 0.0:
        return None, False
    detection = perception.detection_distance(
        encounter.sight_distance_m, encounter.context, rng)
    comfort = min(policy.comfort_braking_ms2, actual_capability)
    outcome = resolve_braking(
        speed_ms=closing,
        distance_m=detection,
        comfort_deceleration=comfort,
        max_deceleration=actual_capability,
        reaction_time_s=policy.reaction_time_s,
    )
    hard_demand = (math.isfinite(outcome.demanded_deceleration)
                   and outcome.demanded_deceleration
                   > config.hard_braking_threshold_ms2) or \
        math.isinf(outcome.demanded_deceleration)
    if outcome.collided:
        return IncidentRecord(
            counterpart=encounter.counterpart,
            is_collision=True,
            delta_v_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_distance_m=0.0,
            approach_speed_kmh=ms_to_kmh(closing),
            time_h=encounter.time_h,
            context=encounter.context,
        ), hard_demand
    near_miss = (outcome.stop_margin_m < config.near_miss_distance_m
                 and ms_to_kmh(closing) > config.near_miss_speed_kmh)
    if near_miss:
        return IncidentRecord(
            counterpart=encounter.counterpart,
            is_collision=False,
            delta_v_kmh=0.0,
            min_distance_m=max(outcome.stop_margin_m, 1e-3),
            approach_speed_kmh=ms_to_kmh(closing),
            time_h=encounter.time_h,
            context=encounter.context,
        ), hard_demand
    return None, hard_demand


def simulate(policy: TacticalPolicy,
             generator: EncounterGenerator,
             perception: PerceptionModel,
             braking: BrakingSystem,
             context: str,
             hours: float,
             rng: np.random.Generator,
             config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Drive ``hours`` in one context and record incidents."""
    if config is None:
        config = SimulationConfig()
    encounters = generator.generate(context, hours, policy.cue_probability, rng)
    records: List[IncidentRecord] = []
    hard_demands = 0
    for encounter in encounters:
        record, hard = _resolve_encounter(encounter, policy, perception,
                                          braking, config, rng)
        if hard:
            hard_demands += 1
            # Fig. 4's lower half: a hard ego stop with a close follower
            # induces an incident between third parties (here: the
            # follower's emergency manoeuvre behind the ego).
            if rng.uniform() < config.follower_presence_probability:
                records.append(IncidentRecord(
                    counterpart=ActorClass.CAR,
                    is_collision=False,
                    min_distance_m=float(rng.uniform(0.3, 4.0)),
                    approach_speed_kmh=float(rng.uniform(10.0, 60.0)),
                    time_h=encounter.time_h,
                    context=context,
                    induced=True,
                ))
        if record is not None:
            records.append(record)
    return SimulationResult(
        policy_name=policy.name,
        hours=hours,
        context_hours={context: hours},
        records=records,
        encounters_resolved=len(encounters),
        hard_braking_demands=hard_demands,
        hard_braking_threshold_ms2=config.hard_braking_threshold_ms2,
    )


def simulate_mix(policy: TacticalPolicy,
                 generator: EncounterGenerator,
                 perception: PerceptionModel,
                 braking: BrakingSystem,
                 mix: Mapping[str, float],
                 hours: float,
                 rng: np.random.Generator,
                 config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Drive ``hours`` split across a context mix (weights sum to 1)."""
    if not mix:
        raise ValueError("context mix must be non-empty")
    total = sum(mix.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"context mix must sum to 1, got {total}")
    if any(w < 0 for w in mix.values()):
        raise ValueError("context weights must be >= 0")
    result: Optional[SimulationResult] = None
    for context, weight in sorted(mix.items()):
        if weight == 0.0:
            continue
        part = simulate(policy, generator, perception, braking, context,
                        hours * weight, rng, config)
        result = part if result is None else result.merged(part)
    if result is None:
        raise ValueError("context mix has no positive weights")
    return result
