"""Vehicle-internal fault models: degraded braking capability.

Implements the substrate for the paper's Sec. II-B-3 example — "a
vehicle-internal fault leading to a reduced braking capacity of only
4 m/s² on dry asphalt".  The model is deliberately occupancy-based: at any
encounter the braking system is in its degraded state with a small
probability (fault rate × undetected-residence time), capturing both
random hardware faults and slow-detected systematic ones with one number,
in line with Sec. V's cause-agnostic budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

__all__ = ["BrakingSystem"]


@dataclass(frozen=True)
class BrakingSystem:
    """Braking capability with a stochastic degradation state.

    ``nominal_ms2`` is the healthy peak deceleration; ``degraded_ms2`` the
    capability in the faulted state (the paper's 4 m/s²);
    ``degradation_occupancy`` the probability of being degraded at any
    given moment.  ``reports_capability`` models whether the tactical
    layer is told about the degradation — the paper's argument needs both
    settings: an aware policy adapts speed, an unaware one drives into
    encounters with stale assumptions.
    """

    nominal_ms2: float = 8.0
    degraded_ms2: float = 4.0
    degradation_occupancy: float = 1e-4
    reports_capability: bool = True

    def __post_init__(self) -> None:
        if self.nominal_ms2 <= 0:
            raise ValueError("nominal capability must be positive")
        if not (0 < self.degraded_ms2 <= self.nominal_ms2):
            raise ValueError(
                f"degraded capability must be in (0, {self.nominal_ms2}]")
        if not (0.0 <= self.degradation_occupancy <= 1.0):
            raise ValueError("degradation occupancy must be in [0, 1]")

    def sample_capability(self, rng: np.random.Generator) -> float:
        """The actual peak deceleration available for one encounter."""
        if rng.uniform() < self.degradation_occupancy:
            return self.degraded_ms2
        return self.nominal_ms2

    def sample_capability_array(self, rng: np.random.Generator,
                                size: int) -> np.ndarray:
        """Actual peak decelerations for a batch of encounters.

        One uniform per encounter, compared against the degradation
        occupancy — the whole-array analogue of
        :meth:`sample_capability`, and the first resolution draw in the
        vectorized engine's per-(context, class) stream layout.
        """
        capability, _ = self.sample_capability_array_traced(rng, size)
        return capability

    def sample_capability_array_traced(self, rng: np.random.Generator,
                                       size: int,
                                       ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`sample_capability_array` plus the degraded-state mask.

        Same single whole-array uniform draw; the mask is the Bernoulli
        outcome itself, which the importance sampler needs to reweight a
        tilted ``degradation_occupancy`` exactly (inferring the state
        from the capability value would be ambiguous when degraded and
        nominal capabilities coincide).
        """
        if size < 0:
            raise ValueError("size must be >= 0")
        degraded = rng.uniform(size=size) < self.degradation_occupancy
        return np.where(degraded, self.degraded_ms2, self.nominal_ms2), \
            degraded

    def known_capability_array(self, actual_ms2: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`known_capability`."""
        actual_ms2 = np.asarray(actual_ms2, dtype=float)
        if actual_ms2.size and np.any(actual_ms2 <= 0):
            raise ValueError("actual capability must be positive")
        if self.reports_capability:
            return actual_ms2
        return np.full_like(actual_ms2, self.nominal_ms2)

    def with_occupancy(self, degradation_occupancy: float) -> "BrakingSystem":
        """The same braking system at a different degradation occupancy.

        Used by the importance sampler to propose fault states more often
        than the nominal occupancy; all other parameters (and therefore
        the physics of each state) are untouched.
        """
        return replace(self, degradation_occupancy=degradation_occupancy)

    def known_capability(self, actual_ms2: float) -> float:
        """What the tactical layer believes the capability to be.

        With ``reports_capability`` the truth; without it, the nominal
        value regardless of the actual state — the configuration in which
        a conventional braking-capacity safety goal earns its keep.
        """
        if actual_ms2 <= 0:
            raise ValueError("actual capability must be positive")
        return actual_ms2 if self.reports_capability else self.nominal_ms2
