"""Stochastic encounter generation per operating context.

An *encounter* is one potential conflict between the ego and another
actor: a pedestrian stepping towards the roadway, a car braking ahead, an
elk on a rural road.  Encounters arrive as a Poisson process whose rate
and composition depend on the operating context — this is where the
Sec. II-B-4 contextual variation lives in the substrate.

The generator produces geometry only (who, how far, what sight line);
resolution into incidents is the simulator's job, because the *outcome*
depends on the tactical policy — which is precisely the paper's
exposure-is-a-design-choice point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..core.taxonomy import ActorClass
from ..stats.importance import (clamped_lognormal_log_ratio,
                                floored_normal_log_ratio)

__all__ = ["Encounter", "EncounterBatch", "ContextProfile",
           "EncounterGenerator", "default_context_profiles",
           "ProposalTilt", "encounter_log_weights"]

SIGHT_DISTANCE_CLAMP_M = 1.0
"""Lower clamp applied to every sampled sight distance.  Part of the
encounter law (it puts a point mass at 1 m), so the importance-sampling
likelihood ratios must — and do — account for it."""


def _lognormal_params(mean: float, std: float) -> Tuple[float, float]:
    """(mu, sigma) of the lognormal with the given mean and std.

    The single derivation both sampling paths and the likelihood-ratio
    bookkeeping share; scaling ``(mean, std)`` by a common factor ``s``
    leaves ``sigma`` unchanged and shifts ``mu`` by ``ln s`` — which is
    why :class:`ProposalTilt` tilts sight distances multiplicatively.
    """
    sigma = math.sqrt(math.log(1.0 + (std / mean) ** 2))
    mu = math.log(mean) - sigma ** 2 / 2.0
    return mu, sigma


@dataclass(frozen=True)
class ProposalTilt:
    """An importance-sampling proposal over the encounter law.

    Three levers, chosen so every likelihood ratio is available in closed
    form against the *same* parametric family (DESIGN §11):

    * ``rate_scale`` multiplies every class's Poisson arrival rate —
      more encounters per simulated hour.  Under the per-record Campbell
      estimator each encounter's weight carries a flat ``1/rate_scale``.
    * ``sight_scale`` multiplies the (mean, std) of the lognormal sight
      distance — values below 1 make occluded, short-sight conflicts
      common.  Scaling both moments together keeps the log-space sigma
      fixed and shifts mu by ``ln(sight_scale)``, so the ratio is exact.
    * ``speed_shift_kmh`` shifts the mean of the floored-normal
      counterpart speed (same std).  Classes with zero speed spread
      (static objects) are point masses and are never shifted.

    A fourth lever targets the *resolution* law rather than the
    encounter law: ``degradation_scale`` multiplies the braking system's
    fault occupancy (the paper's Sec. II-B-3 degraded-braking channel,
    typically 1e-4 or rarer) so faulted encounters are proposed often;
    the realised fault states are reweighted by the exact Bernoulli
    ratio inside :func:`repro.traffic.engine.simulate_importance`.

    The identity tilt reproduces the nominal generator bit-for-bit with
    all weights exactly 1 — the oracle equivalence the statistical
    verification tier pins.
    """

    rate_scale: float = 1.0
    sight_scale: float = 1.0
    speed_shift_kmh: float = 0.0
    degradation_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_scale <= 0 or not math.isfinite(self.rate_scale):
            raise ValueError("rate scale must be positive and finite")
        if self.sight_scale <= 0 or not math.isfinite(self.sight_scale):
            raise ValueError("sight scale must be positive and finite")
        if not math.isfinite(self.speed_shift_kmh):
            raise ValueError("speed shift must be finite")
        if self.degradation_scale <= 0 or \
                not math.isfinite(self.degradation_scale):
            raise ValueError("degradation scale must be positive and finite")

    @property
    def is_identity(self) -> bool:
        return (self.rate_scale == 1.0 and self.sight_scale == 1.0
                and self.speed_shift_kmh == 0.0
                and self.degradation_scale == 1.0)


@dataclass(frozen=True)
class Encounter:
    """One potential conflict, before tactical resolution.

    ``sight_distance_m`` is the geometric distance at which the conflict
    is first observable; ``counterpart_speed_kmh`` the counterpart's speed
    along the conflict course (0 for static objects);  ``cue_available``
    whether an early-warning cue preceded the encounter (usable by
    proactive policies); ``time_h`` the arrival stamp within the simulated
    exposure.
    """

    counterpart: ActorClass
    context: str
    sight_distance_m: float
    counterpart_speed_kmh: float
    cue_available: bool
    time_h: float

    def __post_init__(self) -> None:
        if self.counterpart is ActorClass.EGO:
            raise ValueError("ego cannot encounter itself")
        if self.sight_distance_m <= 0:
            raise ValueError("sight distance must be positive")
        if self.counterpart_speed_kmh < 0:
            raise ValueError("counterpart speed must be >= 0")
        if self.time_h < 0:
            raise ValueError("time stamp must be >= 0")


@dataclass(frozen=True)
class EncounterBatch:
    """Structure-of-arrays form of all encounters of one (context, class).

    The vectorized engine's native format: parallel arrays over the
    encounters of a single counterpart class in one context, in arrival
    order.  ``cue_available`` is boolean; the rest are float arrays.  The
    class and context stay scalar because every encounter in the batch
    shares them — exactly the grouping the per-(context × class) RNG
    sub-stream layout works in.
    """

    counterpart: ActorClass
    context: str
    time_h: np.ndarray
    sight_distance_m: np.ndarray
    counterpart_speed_kmh: np.ndarray
    cue_available: np.ndarray

    def __post_init__(self) -> None:
        if self.counterpart is ActorClass.EGO:
            raise ValueError("ego cannot encounter itself")
        n = self.time_h.shape[0]
        for name in ("sight_distance_m", "counterpart_speed_kmh",
                     "cue_available"):
            if getattr(self, name).shape != (n,):
                raise ValueError(
                    f"batch arrays must share one length; {name} has shape "
                    f"{getattr(self, name).shape}, expected ({n},)")
        if n:
            if np.any(self.sight_distance_m <= 0):
                raise ValueError("sight distance must be positive")
            if np.any(self.counterpart_speed_kmh < 0):
                raise ValueError("counterpart speed must be >= 0")
            if np.any(self.time_h < 0):
                raise ValueError("time stamp must be >= 0")

    def __len__(self) -> int:
        return int(self.time_h.shape[0])

    def to_encounters(self) -> List[Encounter]:
        """Materialise scalar :class:`Encounter` objects (tests/debugging)."""
        return [Encounter(counterpart=self.counterpart, context=self.context,
                          sight_distance_m=float(self.sight_distance_m[i]),
                          counterpart_speed_kmh=float(
                              self.counterpart_speed_kmh[i]),
                          cue_available=bool(self.cue_available[i]),
                          time_h=float(self.time_h[i]))
                for i in range(len(self))]

    @classmethod
    def from_encounters(cls, encounters: List[Encounter]) -> "EncounterBatch":
        """Pack scalar encounters (one class, one context) into arrays."""
        if not encounters:
            raise ValueError("cannot infer class/context from an empty list")
        first = encounters[0]
        if any(e.counterpart is not first.counterpart
               or e.context != first.context for e in encounters):
            raise ValueError("a batch holds one (context, class) group")
        return cls(
            counterpart=first.counterpart,
            context=first.context,
            time_h=np.array([e.time_h for e in encounters]),
            sight_distance_m=np.array([e.sight_distance_m
                                       for e in encounters]),
            counterpart_speed_kmh=np.array([e.counterpart_speed_kmh
                                            for e in encounters]),
            cue_available=np.array([e.cue_available for e in encounters],
                                   dtype=bool),
        )


@dataclass(frozen=True)
class ContextProfile:
    """Encounter statistics for one operating context.

    ``encounter_rates`` are conflict arrivals per hour per counterpart
    class; ``sight_distance_m`` gives (mean, std) of the lognormal sight
    distance; ``counterpart_speed_kmh`` (mean, std) of the counterpart's
    conflict-course speed.  All synthetic, shaped per context (urban:
    frequent close VRU conflicts; highway: rare but fast car conflicts).
    """

    name: str
    encounter_rates: Mapping[ActorClass, float]
    sight_distance_m: Mapping[ActorClass, Tuple[float, float]]
    counterpart_speed_kmh: Mapping[ActorClass, Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("context profile must be named")
        if not self.encounter_rates:
            raise ValueError(f"context {self.name!r} generates no encounters")
        for counterpart, rate in self.encounter_rates.items():
            if rate < 0 or not math.isfinite(rate):
                raise ValueError(
                    f"context {self.name!r}: rate for {counterpart} must be "
                    f"finite and >= 0")
            if counterpart not in self.sight_distance_m:
                raise ValueError(
                    f"context {self.name!r}: no sight-distance parameters "
                    f"for {counterpart}")
            if counterpart not in self.counterpart_speed_kmh:
                raise ValueError(
                    f"context {self.name!r}: no speed parameters for "
                    f"{counterpart}")

    def total_rate(self) -> float:
        """Total conflict arrivals per hour in this context."""
        return sum(self.encounter_rates.values())

    def tilted(self, tilt: ProposalTilt) -> "ContextProfile":
        """This context's law under an importance-sampling proposal.

        Rates scale, sight-distance moments scale together, and speed
        means shift (point-mass speeds — std 0 — stay put).  The profile
        keeps its name so a tilted generator answers for the same
        contexts as the nominal one.
        """
        return ContextProfile(
            name=self.name,
            encounter_rates={c: rate * tilt.rate_scale
                             for c, rate in self.encounter_rates.items()},
            sight_distance_m={c: (mean * tilt.sight_scale,
                                  std * tilt.sight_scale)
                              for c, (mean, std)
                              in self.sight_distance_m.items()},
            counterpart_speed_kmh={
                c: ((mean + tilt.speed_shift_kmh, std) if std > 0.0
                    else (mean, std))
                for c, (mean, std) in self.counterpart_speed_kmh.items()},
        )


class EncounterGenerator:
    """Samples encounter streams from context profiles."""

    def __init__(self, profiles: Mapping[str, ContextProfile]):
        if not profiles:
            raise ValueError("generator needs at least one context profile")
        for name, profile in profiles.items():
            if profile.name != name:
                raise ValueError(
                    f"profile keyed {name!r} is named {profile.name!r}")
        self._profiles: Dict[str, ContextProfile] = dict(profiles)

    @property
    def contexts(self) -> Tuple[str, ...]:
        return tuple(self._profiles)

    def profile(self, context: str) -> ContextProfile:
        try:
            return self._profiles[context]
        except KeyError:
            raise KeyError(f"unknown context {context!r}; "
                           f"known: {sorted(self._profiles)}") from None

    def generate(self, context: str, hours: float, cue_probability: float,
                 rng: np.random.Generator) -> List[Encounter]:
        """Sample all encounters over ``hours`` of driving in ``context``.

        Arrivals per counterpart class are independent Poisson processes;
        sight distances are lognormal (strictly positive, right-skewed —
        occluded conflicts are the short left tail); speeds are truncated
        normal at 0.
        """
        if hours <= 0 or not math.isfinite(hours):
            raise ValueError(f"hours must be positive and finite, got {hours}")
        if not (0.0 <= cue_probability <= 1.0):
            raise ValueError("cue probability must be in [0, 1]")
        profile = self.profile(context)
        encounters: List[Encounter] = []
        for counterpart, rate in profile.encounter_rates.items():
            if rate == 0.0:
                continue
            count = int(rng.poisson(rate * hours))
            if count == 0:
                continue
            times = np.sort(rng.uniform(0.0, hours, size=count))
            mean_d, std_d = profile.sight_distance_m[counterpart]
            mean_v, std_v = profile.counterpart_speed_kmh[counterpart]
            mu, sigma = _lognormal_params(mean_d, std_d)
            distances = rng.lognormal(mu, sigma, size=count)
            speeds = np.maximum(rng.normal(mean_v, std_v, size=count), 0.0)
            cues = rng.uniform(size=count) < cue_probability
            for i in range(count):
                encounters.append(Encounter(
                    counterpart=counterpart,
                    context=context,
                    sight_distance_m=float(max(distances[i],
                                               SIGHT_DISTANCE_CLAMP_M)),
                    counterpart_speed_kmh=float(speeds[i]),
                    cue_available=bool(cues[i]),
                    time_h=float(times[i]),
                ))
        encounters.sort(key=lambda e: e.time_h)
        return encounters

    def active_classes(self, context: str) -> Tuple[ActorClass, ...]:
        """Counterpart classes with a positive rate, in canonical order.

        The canonical order — sorted by class name — is part of the
        vectorized engine's RNG contract: the k-th active class of a
        context always owns the k-th spawned sub-stream, independent of
        the insertion order of the profile's rate mapping.  Zero-rate
        classes own no stream, so adding one to a profile never shifts
        the draws of the others.
        """
        profile = self.profile(context)
        return tuple(sorted(
            (c for c, rate in profile.encounter_rates.items() if rate > 0.0),
            key=lambda c: c.name))

    def sample_class_batch(self, context: str, counterpart: ActorClass,
                           hours: float, cue_probability: float,
                           rng: np.random.Generator) -> EncounterBatch:
        """Sample one (context, class) group as a structure of arrays.

        Whole-array draw order on ``rng`` (the class's own sub-stream —
        documented in DESIGN §6, and fixed so results never depend on any
        internal batching): Poisson count, arrival times, sight
        distances, counterpart speeds, cue uniforms.  A zero count stops
        after the Poisson draw, mirroring the scalar generator.
        """
        if hours <= 0 or not math.isfinite(hours):
            raise ValueError(f"hours must be positive and finite, got {hours}")
        if not (0.0 <= cue_probability <= 1.0):
            raise ValueError("cue probability must be in [0, 1]")
        profile = self.profile(context)
        try:
            rate = profile.encounter_rates[counterpart]
        except KeyError:
            raise KeyError(
                f"context {context!r} has no rate for {counterpart}") from None
        empty = EncounterBatch(
            counterpart=counterpart, context=context,
            time_h=np.empty(0), sight_distance_m=np.empty(0),
            counterpart_speed_kmh=np.empty(0),
            cue_available=np.empty(0, dtype=bool))
        if rate == 0.0:
            return empty
        count = int(rng.poisson(rate * hours))
        if count == 0:
            return empty
        times = np.sort(rng.uniform(0.0, hours, size=count))
        mean_d, std_d = profile.sight_distance_m[counterpart]
        mean_v, std_v = profile.counterpart_speed_kmh[counterpart]
        mu, sigma = _lognormal_params(mean_d, std_d)
        distances = np.maximum(rng.lognormal(mu, sigma, size=count),
                               SIGHT_DISTANCE_CLAMP_M)
        speeds = np.maximum(rng.normal(mean_v, std_v, size=count), 0.0)
        cues = rng.uniform(size=count) < cue_probability
        return EncounterBatch(
            counterpart=counterpart, context=context, time_h=times,
            sight_distance_m=distances, counterpart_speed_kmh=speeds,
            cue_available=cues)

    def tilted(self, tilt: ProposalTilt) -> "EncounterGenerator":
        """A generator sampling every context under the proposal law.

        Active classes (and their canonical order, hence the RNG
        sub-stream layout) are preserved: a positive rate stays positive
        under any positive ``rate_scale``.  The identity tilt returns a
        generator that is bit-for-bit equivalent to this one.
        """
        return EncounterGenerator({name: profile.tilted(tilt)
                                   for name, profile
                                   in self._profiles.items()})


def encounter_log_weights(batch: EncounterBatch,
                          nominal_profile: ContextProfile,
                          tilt: ProposalTilt) -> np.ndarray:
    """Per-encounter log importance weights ``log p/q`` for one batch.

    ``batch`` was sampled under ``nominal_profile.tilted(tilt)``; the
    returned array aligns with the batch.  Each weight is the Campbell
    (marked-Poisson) per-record factor

        ``w_i = (1/rate_scale) · LR_sight(d_i) · LR_speed(v_i)``

    so that for any per-encounter statistic ``f``,
    ``E_nominal[Σ f] = E_proposal[Σ f·w]`` — the arrival-rate tilt is
    carried per event (the ``1/rate_scale``), and the mark ratios use the
    exact clamped/floored forms (atoms included) from
    :mod:`repro.stats.importance`.  Arrival times, cue draws, and every
    untilted resolution draw contribute ratio 1; the one resolution mark
    a tilt can touch — the degraded-braking state under
    ``degradation_scale`` — is reweighted by the engine, which alone sees
    the realised fault states.
    """
    counterpart = batch.counterpart
    if batch.context != nominal_profile.name:
        raise ValueError(
            f"batch context {batch.context!r} does not match profile "
            f"{nominal_profile.name!r}")
    try:
        mean_d, std_d = nominal_profile.sight_distance_m[counterpart]
        mean_v, std_v = nominal_profile.counterpart_speed_kmh[counterpart]
    except KeyError:
        raise KeyError(f"nominal profile {nominal_profile.name!r} has no "
                       f"parameters for {counterpart}") from None
    log_w = np.full(len(batch), -math.log(tilt.rate_scale))
    if not len(batch):
        return log_w
    mu_p, sigma = _lognormal_params(mean_d, std_d)
    mu_q, _ = _lognormal_params(mean_d * tilt.sight_scale,
                                std_d * tilt.sight_scale)
    log_w += clamped_lognormal_log_ratio(
        batch.sight_distance_m, mu_p=mu_p, mu_q=mu_q, sigma=sigma,
        clamp=SIGHT_DISTANCE_CLAMP_M)
    if std_v > 0.0:
        log_w += floored_normal_log_ratio(
            batch.counterpart_speed_kmh, mean_p=mean_v,
            mean_q=mean_v + tilt.speed_shift_kmh, std=std_v)
    return log_w


def default_context_profiles() -> Dict[str, ContextProfile]:
    """Synthetic but realistically shaped profiles for four contexts."""
    urban = ContextProfile(
        name="urban",
        encounter_rates={
            ActorClass.VRU: 6.0,
            ActorClass.CAR: 8.0,
            ActorClass.STATIC_OBJECT: 0.5,
            ActorClass.TRUCK: 0.8,
        },
        sight_distance_m={
            ActorClass.VRU: (35.0, 18.0),
            ActorClass.CAR: (50.0, 20.0),
            ActorClass.STATIC_OBJECT: (60.0, 25.0),
            ActorClass.TRUCK: (55.0, 20.0),
        },
        counterpart_speed_kmh={
            ActorClass.VRU: (5.0, 2.0),
            ActorClass.CAR: (30.0, 10.0),
            ActorClass.STATIC_OBJECT: (0.0, 0.0),
            ActorClass.TRUCK: (25.0, 8.0),
        },
    )
    suburban = ContextProfile(
        name="suburban",
        encounter_rates={
            ActorClass.VRU: 2.0,
            ActorClass.CAR: 5.0,
            ActorClass.STATIC_OBJECT: 0.3,
            ActorClass.TRUCK: 0.6,
        },
        sight_distance_m={
            ActorClass.VRU: (55.0, 22.0),
            ActorClass.CAR: (80.0, 30.0),
            ActorClass.STATIC_OBJECT: (90.0, 30.0),
            ActorClass.TRUCK: (85.0, 30.0),
        },
        counterpart_speed_kmh={
            ActorClass.VRU: (6.0, 3.0),
            ActorClass.CAR: (45.0, 12.0),
            ActorClass.STATIC_OBJECT: (0.0, 0.0),
            ActorClass.TRUCK: (40.0, 10.0),
        },
    )
    rural = ContextProfile(
        name="rural",
        encounter_rates={
            ActorClass.VRU: 0.3,
            ActorClass.CAR: 3.0,
            ActorClass.ANIMAL: 0.8,
            ActorClass.STATIC_OBJECT: 0.2,
            ActorClass.TRUCK: 0.8,
        },
        sight_distance_m={
            ActorClass.VRU: (80.0, 30.0),
            ActorClass.CAR: (120.0, 45.0),
            ActorClass.ANIMAL: (60.0, 30.0),
            ActorClass.STATIC_OBJECT: (120.0, 40.0),
            ActorClass.TRUCK: (120.0, 40.0),
        },
        counterpart_speed_kmh={
            ActorClass.VRU: (6.0, 3.0),
            ActorClass.CAR: (70.0, 15.0),
            ActorClass.ANIMAL: (15.0, 8.0),
            ActorClass.STATIC_OBJECT: (0.0, 0.0),
            ActorClass.TRUCK: (65.0, 12.0),
        },
    )
    highway = ContextProfile(
        name="highway",
        encounter_rates={
            ActorClass.CAR: 4.0,
            ActorClass.TRUCK: 1.5,
            ActorClass.STATIC_OBJECT: 0.1,
        },
        sight_distance_m={
            ActorClass.CAR: (180.0, 60.0),
            ActorClass.TRUCK: (180.0, 60.0),
            ActorClass.STATIC_OBJECT: (150.0, 50.0),
        },
        counterpart_speed_kmh={
            ActorClass.CAR: (95.0, 15.0),
            ActorClass.TRUCK: (80.0, 10.0),
            ActorClass.STATIC_OBJECT: (0.0, 0.0),
        },
    )
    return {"urban": urban, "suburban": suburban, "rural": rural,
            "highway": highway}
