"""Concrete scenario analysis — the solution-domain tool of Sec. IV.

The QRN banishes situation/scenario enumeration from the *problem* domain
(goal derivation), but the paper is explicit that it comes back in the
*solution* domain: "strategies how to adapt to different
situations/scenarios will likely play an important role; however, now
with the purpose of fulfilling the risk norm rather than defining the
risks" (Sec. IV).

This module provides that tool: a library of parameterised conflict
scenarios (the standard longitudinal ADS cases), each resolvable against
a tactical policy into an outcome, plus the bridge back to the QRN —
:func:`incident_rate_contributions` converts per-scenario encounter rates
and Monte-Carlo outcome statistics into per-incident-type rates, i.e.
*which scenario consumes how much of which safety-goal budget*.  That is
the FSC-level diagnostic the paper sketches: if SG-I3's budget is eaten
by occluded pedestrian crossings, the strategy work goes there.

Scenarios implemented:

* :class:`CrossingPedestrian` — a pedestrian emerges from occlusion and
  crosses; the ego may also clear the conflict point first.
* :class:`LeadVehicleBraking` — the lead car brakes hard to a stop from
  a time-headway gap.
* :class:`CutIn` — a slower vehicle inserts at a short gap.
* :class:`ObstacleBehindCurve` — a stationary obstacle at the limit of
  curve sight distance.
* :class:`AnimalRunOut` — the paper's elk: fast lateral intrusion on a
  rural road at generous but dark sight lines.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.incident import IncidentRecord, IncidentType
from ..core.quantities import Frequency
from ..core.taxonomy import ActorClass
from .dynamics import kmh_to_ms, ms_to_kmh, resolve_braking
from .faults import BrakingSystem
from .policy import TacticalPolicy

__all__ = [
    "ScenarioOutcome",
    "Scenario",
    "CrossingPedestrian",
    "LeadVehicleBraking",
    "CutIn",
    "ObstacleBehindCurve",
    "AnimalRunOut",
    "ScenarioStatistics",
    "run_scenario",
    "ScenarioSuite",
    "incident_rate_contributions",
]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Resolution of one scenario instance.

    ``conflict`` is False when the geometry dissolved (the pedestrian
    never reached the lane, the lead car was never closed on); such
    instances carry no incident potential at all.
    """

    conflict: bool
    collided: bool
    impact_speed_kmh: float
    min_gap_m: float
    approach_speed_kmh: float
    demanded_decel_ms2: float
    counterpart: ActorClass

    def to_record(self, time_h: float, context: str) -> Optional[IncidentRecord]:
        """The incident record this outcome produces, if any.

        Collisions always produce one; non-collision conflicts produce a
        near-miss record (margin + approach speed), which the incident
        types' tolerance margins then accept or ignore.  Non-conflicts
        produce nothing.
        """
        if not self.conflict:
            return None
        if self.collided:
            return IncidentRecord(
                counterpart=self.counterpart, is_collision=True,
                delta_v_kmh=max(self.impact_speed_kmh, 1e-6),
                approach_speed_kmh=self.approach_speed_kmh,
                time_h=time_h, context=context)
        return IncidentRecord(
            counterpart=self.counterpart, is_collision=False,
            min_distance_m=max(self.min_gap_m, 1e-3),
            approach_speed_kmh=self.approach_speed_kmh,
            time_h=time_h, context=context)


class Scenario(abc.ABC):
    """One parameterised conflict scenario."""

    name: str
    context: str
    counterpart: ActorClass

    @abc.abstractmethod
    def resolve(self, policy: TacticalPolicy, braking: BrakingSystem,
                rng: np.random.Generator) -> ScenarioOutcome:
        """Sample one instance and resolve it against the policy."""

    def _capabilities(self, braking: BrakingSystem,
                      rng: np.random.Generator) -> Tuple[float, float]:
        actual = braking.sample_capability(rng)
        return actual, braking.known_capability(actual)


@dataclass(frozen=True)
class CrossingPedestrian(Scenario):
    """A pedestrian steps out from occlusion and crosses the ego lane.

    The risk mechanism: the ego chooses speed from the *road* sight
    distance (generous — it cannot see behind the parked cars), but the
    pedestrian becomes visible only at the much shorter ``occlusion_m``.
    Walking at ``ped_speed_kmh`` across ``lateral_offset_m`` of clearance
    before entering the lane, the pedestrian may also arrive after the
    ego has cleared the conflict point, dissolving the conflict.
    """

    name: str = "crossing-pedestrian"
    context: str = "urban"
    counterpart: ActorClass = ActorClass.VRU
    road_sight_mean_m: float = 90.0
    occlusion_mean_m: float = 25.0
    occlusion_std_m: float = 10.0
    ped_speed_kmh: float = 5.5
    lateral_offset_m: float = 2.0

    def resolve(self, policy, braking, rng):
        actual, known = self._capabilities(braking, rng)
        sigma = math.sqrt(math.log(
            1.0 + (self.occlusion_std_m / self.occlusion_mean_m) ** 2))
        mu = math.log(self.occlusion_mean_m) - sigma ** 2 / 2.0
        occlusion = max(float(rng.lognormal(mu, sigma)), 2.0)
        road_sight = max(float(rng.normal(self.road_sight_mean_m,
                                          self.road_sight_mean_m * 0.3)),
                         occlusion)
        cued = rng.uniform() < policy.cue_probability
        speed = policy.encounter_speed_ms(self.context, cued, road_sight,
                                          known, braking.nominal_ms2)
        ped_speed = kmh_to_ms(self.ped_speed_kmh * float(rng.uniform(0.6, 1.4)))
        time_to_lane = self.lateral_offset_m / max(ped_speed, 0.1)
        time_to_clear = occlusion / max(speed, 0.1)
        if time_to_clear < time_to_lane * 0.8:
            # Ego passes the conflict point well before the pedestrian.
            return ScenarioOutcome(
                conflict=False, collided=False, impact_speed_kmh=0.0,
                min_gap_m=occlusion, approach_speed_kmh=ms_to_kmh(speed),
                demanded_decel_ms2=0.0, counterpart=self.counterpart)
        outcome = resolve_braking(speed, occlusion,
                                  min(policy.comfort_braking_ms2, actual),
                                  actual, policy.reaction_time_s)
        return ScenarioOutcome(
            conflict=True, collided=outcome.collided,
            impact_speed_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_gap_m=outcome.stop_margin_m,
            approach_speed_kmh=ms_to_kmh(speed),
            demanded_decel_ms2=outcome.demanded_deceleration,
            counterpart=self.counterpart)


@dataclass(frozen=True)
class LeadVehicleBraking(Scenario):
    """The lead vehicle brakes to a standstill from a time-headway gap.

    Both vehicles end at rest; collision iff the ego's stopping distance
    (with reaction roll-out) exceeds the initial gap plus the lead's
    stopping distance.  The margin/impact speed follow from the distance
    bookkeeping of the two stopping curves.
    """

    name: str = "lead-vehicle-braking"
    context: str = "highway"
    counterpart: ActorClass = ActorClass.CAR
    headway_mean_s: float = 1.6
    headway_std_s: float = 0.5
    lead_decel_ms2: float = 7.0
    late_detection_probability: float = 0.04
    late_extra_s: float = 1.5
    """Occasional perception lag — brake lights missed for a moment —
    modelled as extra reaction time.  Rear-end risk lives in this tail."""

    def resolve(self, policy, braking, rng):
        actual, known = self._capabilities(braking, rng)
        speed = policy.approach_speed_ms(self.context, False, known,
                                         braking.nominal_ms2)
        headway = max(float(rng.normal(self.headway_mean_s,
                                       self.headway_std_s)), 0.3)
        gap = speed * headway
        lead_stop = speed ** 2 / (2.0 * self.lead_decel_ms2)
        available = gap + lead_stop
        reaction = policy.reaction_time_s
        if rng.uniform() < self.late_detection_probability:
            reaction += float(rng.uniform(0.3, self.late_extra_s))
        outcome = resolve_braking(speed, available,
                                  min(policy.comfort_braking_ms2, actual),
                                  actual, reaction)
        return ScenarioOutcome(
            conflict=True, collided=outcome.collided,
            impact_speed_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_gap_m=outcome.stop_margin_m,
            approach_speed_kmh=ms_to_kmh(speed),
            demanded_decel_ms2=outcome.demanded_deceleration,
            counterpart=self.counterpart)


@dataclass(frozen=True)
class CutIn(Scenario):
    """A slower vehicle inserts ahead at a short gap.

    The conflict is the closing-speed problem: the ego approaches the
    cut-in vehicle at the speed difference over the insertion gap.  A
    non-positive speed difference dissolves the conflict.
    """

    name: str = "cut-in"
    context: str = "highway"
    counterpart: ActorClass = ActorClass.CAR
    gap_mean_m: float = 18.0
    gap_std_m: float = 8.0
    speed_deficit_mean_kmh: float = 25.0
    speed_deficit_std_kmh: float = 10.0

    def resolve(self, policy, braking, rng):
        actual, known = self._capabilities(braking, rng)
        deficit = kmh_to_ms(float(rng.normal(self.speed_deficit_mean_kmh,
                                             self.speed_deficit_std_kmh)))
        gap = max(float(rng.normal(self.gap_mean_m, self.gap_std_m)), 2.0)
        ego_speed = policy.approach_speed_ms(self.context, False, known,
                                             braking.nominal_ms2)
        if deficit <= 0.0:
            return ScenarioOutcome(
                conflict=False, collided=False, impact_speed_kmh=0.0,
                min_gap_m=gap, approach_speed_kmh=ms_to_kmh(ego_speed),
                demanded_decel_ms2=0.0, counterpart=self.counterpart)
        closing = min(deficit, ego_speed)
        outcome = resolve_braking(closing, gap,
                                  min(policy.comfort_braking_ms2, actual),
                                  actual, policy.reaction_time_s)
        return ScenarioOutcome(
            conflict=True, collided=outcome.collided,
            impact_speed_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_gap_m=outcome.stop_margin_m,
            approach_speed_kmh=ms_to_kmh(closing),
            demanded_decel_ms2=outcome.demanded_deceleration,
            counterpart=self.counterpart)


@dataclass(frozen=True)
class ObstacleBehindCurve(Scenario):
    """A stationary obstacle at the limit of curve sight distance."""

    name: str = "obstacle-behind-curve"
    context: str = "rural"
    counterpart: ActorClass = ActorClass.STATIC_OBJECT
    sight_mean_m: float = 70.0
    sight_std_m: float = 25.0
    detection_fraction_mean: float = 0.85
    detection_fraction_std: float = 0.12
    miss_probability: float = 2e-3
    late_fraction: float = 0.3
    """The obstacle is usually recognised near the geometric sight limit,
    occasionally much later (low-contrast debris)."""

    def resolve(self, policy, braking, rng):
        actual, known = self._capabilities(braking, rng)
        sight = max(float(rng.normal(self.sight_mean_m, self.sight_std_m)),
                    10.0)
        speed = policy.encounter_speed_ms(self.context, False, sight, known,
                                          braking.nominal_ms2)
        if rng.uniform() < self.miss_probability:
            fraction = self.late_fraction
        else:
            fraction = float(rng.normal(self.detection_fraction_mean,
                                        self.detection_fraction_std))
        fraction = min(max(fraction, 0.05), 1.0)
        detected_at = sight * fraction
        outcome = resolve_braking(speed, detected_at,
                                  min(policy.comfort_braking_ms2, actual),
                                  actual, policy.reaction_time_s)
        return ScenarioOutcome(
            conflict=True, collided=outcome.collided,
            impact_speed_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_gap_m=outcome.stop_margin_m,
            approach_speed_kmh=ms_to_kmh(speed),
            demanded_decel_ms2=outcome.demanded_deceleration,
            counterpart=self.counterpart)


@dataclass(frozen=True)
class AnimalRunOut(Scenario):
    """The paper's elk: a large animal intrudes fast on a rural road.

    Like the pedestrian case but faster, with longer nominal sight that
    a darkness factor erodes.
    """

    name: str = "animal-run-out"
    context: str = "rural"
    counterpart: ActorClass = ActorClass.ANIMAL
    sight_mean_m: float = 90.0
    sight_std_m: float = 35.0
    darkness_probability: float = 0.35
    darkness_factor: float = 0.5
    clear_probability: float = 0.65
    """Most animals turn back or clear the lane before the ego arrives."""

    def resolve(self, policy, braking, rng):
        actual, known = self._capabilities(braking, rng)
        sight = max(float(rng.normal(self.sight_mean_m, self.sight_std_m)),
                    10.0)
        if rng.uniform() < self.darkness_probability:
            sight *= self.darkness_factor
        speed = policy.encounter_speed_ms(self.context, False, sight, known,
                                          braking.nominal_ms2)
        if rng.uniform() < self.clear_probability:
            return ScenarioOutcome(
                conflict=False, collided=False, impact_speed_kmh=0.0,
                min_gap_m=sight, approach_speed_kmh=ms_to_kmh(speed),
                demanded_decel_ms2=0.0, counterpart=self.counterpart)
        # The animal commits: the conflict point is where its path meets
        # the lane, reached in a short intrusion time.
        intrusion_time = float(rng.uniform(0.8, 3.0))
        usable = min(sight, speed * intrusion_time + 0.1)
        outcome = resolve_braking(speed, usable,
                                  min(policy.comfort_braking_ms2, actual),
                                  actual, policy.reaction_time_s)
        return ScenarioOutcome(
            conflict=True, collided=outcome.collided,
            impact_speed_kmh=ms_to_kmh(outcome.impact_speed_ms),
            min_gap_m=outcome.stop_margin_m,
            approach_speed_kmh=ms_to_kmh(speed),
            demanded_decel_ms2=outcome.demanded_deceleration,
            counterpart=self.counterpart)


@dataclass(frozen=True)
class ScenarioStatistics:
    """Monte-Carlo outcome statistics for one scenario × one policy."""

    scenario: str
    replications: int
    conflict_probability: float
    collision_probability: float
    """P(collision | encounter) — includes dissolved conflicts in the
    denominator, because encounter rates count all instances."""
    mean_impact_speed_kmh: float
    """Mean Δv over collisions (0 when none occurred)."""
    near_miss_probability: float
    hard_braking_probability: float

    def describe(self) -> str:
        return (f"{self.scenario}: P(collision)={self.collision_probability:.4f}, "
                f"mean Δv={self.mean_impact_speed_kmh:.1f} km/h, "
                f"P(near conflict)={self.conflict_probability:.3f}")


def run_scenario(scenario: Scenario, policy: TacticalPolicy,
                 braking: BrakingSystem, rng: np.random.Generator,
                 *, replications: int = 1000,
                 near_miss_distance_m: float = 2.0,
                 hard_braking_threshold_ms2: float = 4.0,
                 ) -> Tuple[ScenarioStatistics, List[ScenarioOutcome]]:
    """Monte-Carlo one scenario against one policy."""
    if replications < 1:
        raise ValueError("replications must be >= 1")
    outcomes = [scenario.resolve(policy, braking, rng)
                for _ in range(replications)]
    conflicts = [o for o in outcomes if o.conflict]
    collisions = [o for o in conflicts if o.collided]
    near_misses = [o for o in conflicts
                   if not o.collided and o.min_gap_m < near_miss_distance_m]
    hard = [o for o in conflicts
            if (math.isinf(o.demanded_decel_ms2)
                or o.demanded_decel_ms2 > hard_braking_threshold_ms2)]
    stats = ScenarioStatistics(
        scenario=scenario.name,
        replications=replications,
        conflict_probability=len(conflicts) / replications,
        collision_probability=len(collisions) / replications,
        mean_impact_speed_kmh=(
            sum(o.impact_speed_kmh for o in collisions) / len(collisions)
            if collisions else 0.0),
        near_miss_probability=len(near_misses) / replications,
        hard_braking_probability=len(hard) / replications,
    )
    return stats, outcomes


class ScenarioSuite:
    """A set of scenarios with per-scenario encounter rates.

    The rates say how often each scenario arises per operating hour in
    the feature's ODD mix; the suite then answers the Sec. IV question:
    which scenario drives which incident-type rate.
    """

    def __init__(self, scenarios: Mapping[Scenario, Frequency]):
        if not scenarios:
            raise ValueError("suite needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            raise ValueError("duplicate scenario names")
        self._scenarios: Dict[Scenario, Frequency] = dict(scenarios)

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        return tuple(self._scenarios)

    def encounter_rate(self, scenario: Scenario) -> Frequency:
        return self._scenarios[scenario]

    def evaluate(self, policy: TacticalPolicy, braking: BrakingSystem,
                 rng: np.random.Generator, *, replications: int = 1000,
                 ) -> Dict[str, Tuple[ScenarioStatistics, List[ScenarioOutcome]]]:
        """Run every scenario; returns name → (stats, outcomes)."""
        return {scenario.name: run_scenario(scenario, policy, braking, rng,
                                            replications=replications)
                for scenario in self._scenarios}


def incident_rate_contributions(
        suite: ScenarioSuite,
        evaluation: Mapping[str, Tuple[ScenarioStatistics,
                                       List[ScenarioOutcome]]],
        types: Sequence[IncidentType],
) -> Dict[str, Dict[str, float]]:
    """Per-incident-type rate, broken down by contributing scenario.

    ``result[type_id][scenario_name]`` = encounter_rate(scenario) ×
    P(outcome matches the type | encounter), estimated from the
    evaluation's outcomes.  Summing over scenarios gives the total
    expected rate for each safety goal — and the breakdown says where
    the FSC's strategy effort buys the most budget headroom.
    """
    contributions: Dict[str, Dict[str, float]] = {
        itype.type_id: {} for itype in types}
    for scenario in suite.scenarios:
        stats, outcomes = evaluation[scenario.name]
        rate = suite.encounter_rate(scenario).rate
        n = len(outcomes)
        for itype in types:
            matched = 0
            for outcome in outcomes:
                record = outcome.to_record(0.0, scenario.context)
                if record is not None and itype.matches(record):
                    matched += 1
            if matched:
                contributions[itype.type_id][scenario.name] = \
                    rate * matched / n
    return contributions
