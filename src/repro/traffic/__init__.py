"""Traffic substrate: the Monte-Carlo driving world standing in for fleet data.

Encounters arrive per context (:mod:`.encounters`), the tactical policy
shapes the speed they are met at (:mod:`.policy` — the paper's
exposure-is-a-design-choice), perception decides when they are seen
(:mod:`.perception`), kinematics resolves the outcome (:mod:`.dynamics`,
including degraded braking from :mod:`.faults`), and the simulator
(:mod:`.simulator`) records incidents that :mod:`.incidents` turns into
QRN inputs: per-type rates and empirical contribution splits.
"""

from .dynamics import (KMH_PER_MS, BrakingArrays, BrakingOutcome,
                       impact_speed, impact_speed_array, kmh_to_ms,
                       ms_to_kmh, required_deceleration,
                       required_deceleration_array, resolve_braking,
                       resolve_braking_arrays, stopping_distance,
                       stopping_distance_array)
from .encounters import (ContextProfile, Encounter, EncounterBatch,
                         EncounterGenerator, ProposalTilt,
                         default_context_profiles, encounter_log_weights)
from .engine import (ImportanceRun, resolve_batch, simulate_importance,
                     simulate_vectorized)
from .faults import BrakingSystem
from .incidents import (TypeRates, empirical_splits, estimate_type_rates,
                        type_counts, weighted_type_counts)
from .acceleration import (ACCELERATORS, AcceleratedRate,
                           AdaptiveCampaignResult, AdaptiveCampaignRound,
                           SeverityChannel, accelerated_collision_rate,
                           adaptive_budget_campaign,
                           importance_collision_rate, naive_collision_rate,
                           severity_channels, splitting_collision_rate)
from .perception import (PerceptionModel, default_perception,
                         degraded_perception)
from .policy import (TacticalPolicy, aggressive_policy, cautious_policy,
                     nominal_policy)
from .scenarios import (AnimalRunOut, CrossingPedestrian, CutIn,
                        LeadVehicleBraking, ObstacleBehindCurve,
                        Scenario, ScenarioOutcome, ScenarioStatistics,
                        ScenarioSuite, incident_rate_contributions,
                        run_scenario)
from .checkpoint import (CHECKPOINT_SCHEMA, CampaignCheckpoint,
                         CheckpointMismatchError, CheckpointWriteError,
                         read_checkpoint_progress)
from .fleet import (CHUNK_TRANSPORTS, DEFAULT_CHUNK_HOURS, DEFAULT_MIX,
                    DEFAULT_RETRY_POLICY, POLICY_NAMES, FleetProgress,
                    policy_by_name, run_fleet, validate_chunk_output)
from .records import (RECORD_BLOCK_SCHEMA_NAME, RECORD_DTYPE, RecordBlock,
                      RecordSink, classify_block_counts, iter_record_blocks,
                      load_record_blocks, shm_available)
from .simulator import (ENGINES, SimulationConfig, SimulationResult,
                        simulate, simulate_mix)

__all__ = [
    "KMH_PER_MS", "kmh_to_ms", "ms_to_kmh", "stopping_distance",
    "required_deceleration", "impact_speed", "BrakingOutcome",
    "resolve_braking",
    "stopping_distance_array", "required_deceleration_array",
    "impact_speed_array", "BrakingArrays", "resolve_braking_arrays",
    "EncounterBatch", "resolve_batch", "simulate_vectorized", "ENGINES",
    "TacticalPolicy", "cautious_policy", "nominal_policy",
    "aggressive_policy",
    "PerceptionModel", "default_perception", "degraded_perception",
    "BrakingSystem",
    "Encounter", "ContextProfile", "EncounterGenerator",
    "default_context_profiles",
    "SimulationConfig", "SimulationResult", "simulate", "simulate_mix",
    "CHUNK_TRANSPORTS", "DEFAULT_CHUNK_HOURS", "DEFAULT_RETRY_POLICY",
    "FleetProgress", "run_fleet", "validate_chunk_output",
    "RECORD_BLOCK_SCHEMA_NAME", "RECORD_DTYPE", "RecordBlock", "RecordSink",
    "classify_block_counts", "iter_record_blocks", "load_record_blocks",
    "shm_available",
    "CHECKPOINT_SCHEMA", "CampaignCheckpoint", "CheckpointMismatchError",
    "CheckpointWriteError",
    "read_checkpoint_progress", "DEFAULT_MIX", "POLICY_NAMES",
    "policy_by_name",
    "TypeRates", "estimate_type_rates", "empirical_splits", "type_counts",
    "weighted_type_counts",
    "ProposalTilt", "encounter_log_weights", "ImportanceRun",
    "simulate_importance",
    "ACCELERATORS", "AcceleratedRate", "AdaptiveCampaignResult",
    "AdaptiveCampaignRound", "SeverityChannel",
    "accelerated_collision_rate", "adaptive_budget_campaign",
    "importance_collision_rate", "naive_collision_rate",
    "severity_channels", "splitting_collision_rate",
    "Scenario", "ScenarioOutcome", "ScenarioStatistics", "ScenarioSuite",
    "CrossingPedestrian", "LeadVehicleBraking", "CutIn",
    "ObstacleBehindCurve", "AnimalRunOut", "run_scenario",
    "incident_rate_contributions",
]
