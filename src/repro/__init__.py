"""repro — reproduction of "The Quantitative Risk Norm" (Warg et al., DSN-W 2020).

A production-quality implementation of the QRN tailoring of HARA for
automated driving systems, plus every substrate it presumes:

* :mod:`repro.core` — the QRN itself: consequence classes, MECE incident
  taxonomies, budget allocation (Eq. 1), safety-goal synthesis,
  statistical verification, quantitative refinement (Sec. V), product
  lines (Sec. VII).
* :mod:`repro.hara` — the ISO 26262:2018 HARA baseline the paper tailors:
  S/E/C rating, the ASIL determination table, situation enumeration,
  HAZOP-style hazard derivation, ASIL decomposition/inheritance.
* :mod:`repro.traffic` — a stochastic driving substrate standing in for
  fleet data: tactical policies, encounter generation, incident detection.
* :mod:`repro.injury` — injury-severity risk curves mapping collisions to
  consequence classes (contribution splits).
* :mod:`repro.stats` — Poisson inference, Monte-Carlo harness, stratified
  rare-event estimation.
* :mod:`repro.odd` — operational design domain model and contextual
  exposure.
* :mod:`repro.assurance` — architectures, fault trees, safety-case trees,
  quantitative-vs-ASIL comparison.
* :mod:`repro.reporting` — ASCII/markdown rendering of the paper's
  figures, shared by benchmarks and examples.
* :mod:`repro.errors` / :mod:`repro.io` — the typed error taxonomy
  (every CLI-visible failure maps to one diagnostic line and exit
  code 4) and the hardened artifact boundary: schema-tagged,
  digest-verified JSON loaders with declarative validation, atomic
  durable writes and versioned migrations (DESIGN.md §10).

Quickstart::

    from repro.core import (example_norm, figure5_incident_types,
                            allocate_lp, derive_safety_goals)

    norm = example_norm()
    types = list(figure5_incident_types())
    allocation = allocate_lp(norm, types)
    goals = derive_safety_goals(allocation)
    print(goals.render_all())
"""

__version__ = "1.0.0"

__all__ = ["core", "hara", "traffic", "injury", "stats", "odd",
           "assurance", "reporting", "errors", "io", "__version__"]
