"""Stratified estimation for rare incident rates.

Safety-class budgets sit many orders of magnitude below quality budgets
(Fig. 3), so naive Monte Carlo over operating hours rarely observes the
events that matter.  The repository's substitute for fleet data — the
traffic simulator — therefore estimates rates *stratified by context*:
simulate each operating context (urban night, highway rain, ...) with its
own replication budget, then recombine with the ODD's exposure mix.

This is textbook stratified sampling; the point of carrying it as a named
substrate is the paper's Sec. II-B-4 argument that situational frequencies
are context-dependent and should be composed at analysis time rather than
hard-coded as one global exposure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from .montecarlo import BatchMeans, MonteCarloResult, spawn_generators

__all__ = [
    "StratumEstimate",
    "StratifiedEstimate",
    "stratified_rate",
    "optimal_replication_split",
    "uncertainty_replication_split",
]


@dataclass(frozen=True)
class StratumEstimate:
    """Per-context estimate: mean rate, standard error, weight in the mix."""

    context: str
    weight: float
    result: MonteCarloResult


@dataclass(frozen=True)
class StratifiedEstimate:
    """Exposure-weighted combination of per-context estimates.

    ``mean = Σ w_c · mean_c`` and ``se² = Σ w_c² · se_c²`` — strata are
    simulated independently.
    """

    strata: Tuple[StratumEstimate, ...]

    @property
    def mean(self) -> float:
        return sum(s.weight * s.result.mean for s in self.strata)

    @property
    def std_error(self) -> float:
        return math.sqrt(sum((s.weight * s.result.std_error) ** 2
                             for s in self.strata))

    def as_result(self) -> MonteCarloResult:
        return MonteCarloResult(
            mean=self.mean,
            std_error=self.std_error,
            replications=sum(s.result.replications for s in self.strata),
        )

    def dominant_context(self) -> str:
        """The context contributing the most to the combined rate."""
        best = max(self.strata, key=lambda s: s.weight * s.result.mean)
        return best.context

    def reweighted(self, weights: Mapping[str, float]) -> "StratifiedEstimate":
        """The same per-context estimates under a different exposure mix.

        This is the paper's contextual-adaptation point made concrete: a
        different ODD usage profile (more night driving, a snowier region)
        changes the combined rate *without new simulation* — only the
        weights move.
        """
        _validate_weights(weights)
        missing = {s.context for s in self.strata} - set(weights)
        if missing:
            raise KeyError(f"weights missing for contexts: {sorted(missing)}")
        return StratifiedEstimate(tuple(
            StratumEstimate(s.context, float(weights[s.context]), s.result)
            for s in self.strata))


def _validate_weights(weights: Mapping[str, float]) -> None:
    if not weights:
        raise ValueError("at least one stratum weight is required")
    total = 0.0
    for context, weight in weights.items():
        if weight < 0 or not math.isfinite(weight):
            raise ValueError(f"weight for {context!r} must be finite and >= 0")
        total += weight
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
        raise ValueError(f"stratum weights must sum to 1, got {total}")


def stratified_rate(simulate: Callable[[str, np.random.Generator], float],
                    weights: Mapping[str, float],
                    *, seed: int,
                    replications_per_stratum: int | Mapping[str, int] = 64,
                    ) -> StratifiedEstimate:
    """Estimate an exposure-weighted rate across contexts.

    ``simulate(context, rng)`` returns one replication's rate observation
    for that context (e.g. incidents per simulated hour).  Contexts with
    zero weight are skipped entirely — no simulation effort outside the
    declared mix.
    """
    _validate_weights(weights)
    contexts = [c for c, w in sorted(weights.items()) if w > 0]
    if isinstance(replications_per_stratum, int):
        replication_map = {c: replications_per_stratum for c in contexts}
    else:
        replication_map = {c: int(replications_per_stratum[c]) for c in contexts}
    for context, reps in replication_map.items():
        if reps < 2:
            raise ValueError(
                f"stratum {context!r} needs >= 2 replications, got {reps}")
    strata = []
    stream = spawn_generators(seed, sum(replication_map.values()))
    cursor = 0
    for context in contexts:
        acc = BatchMeans()
        for _ in range(replication_map[context]):
            acc.add(float(simulate(context, stream[cursor])))
            cursor += 1
        strata.append(StratumEstimate(context, float(weights[context]),
                                      acc.result()))
    return StratifiedEstimate(tuple(strata))


def optimal_replication_split(weights: Mapping[str, float],
                              pilot_std: Mapping[str, float],
                              total_replications: int) -> Dict[str, int]:
    """Neyman allocation of replications across strata.

    Proportional to ``w_c · σ_c`` from a pilot run: contexts that are both
    heavily used and noisy get the simulation budget.  Each active stratum
    is guaranteed at least 2 replications so its variance is estimable.
    """
    _validate_weights(weights)
    scores = {}
    for context, weight in weights.items():
        if weight <= 0:
            continue
        sigma = pilot_std.get(context)
        if sigma is None:
            raise KeyError(f"pilot std missing for context {context!r}")
        if sigma < 0 or not math.isfinite(sigma):
            raise ValueError(f"pilot std for {context!r} must be finite and >= 0")
        scores[context] = weight * sigma
    return _exact_allocation(scores, total_replications)


def uncertainty_replication_split(weights: Mapping[str, float],
                                  uncertainty: Mapping[str, float],
                                  total_replications: int) -> Dict[str, int]:
    """Allocate replications proportional to remaining verdict uncertainty.

    The adaptive-campaign analogue of :func:`optimal_replication_split`:
    scores are ``w_c · u_c`` where ``u_c`` is a per-context uncertainty
    measure — in the accelerated tier, the budget monitor's unresolved CI
    width (:meth:`repro.obs.budget_monitor.BudgetUtilisationReport.verdict_uncertainty`)
    apportioned to the contexts producing those incidents.  Contexts whose
    verdicts are all settled score 0 and receive only the 2-replication
    floor; fresh effort flows where the budget question is still open.
    """
    _validate_weights(weights)
    scores = {}
    for context, weight in weights.items():
        if weight <= 0:
            continue
        u = uncertainty.get(context)
        if u is None:
            raise KeyError(f"uncertainty missing for context {context!r}")
        if u < 0 or not math.isfinite(u):
            raise ValueError(
                f"uncertainty for {context!r} must be finite and >= 0")
        scores[context] = weight * u
    return _exact_allocation(scores, total_replications)


def _exact_allocation(scores: Mapping[str, float],
                      total: int) -> Dict[str, int]:
    """Largest-remainder apportionment with a floor of 2 per stratum.

    Allocations sum to exactly ``total`` whenever ``total`` covers the
    floors (``2 × #strata``) — no drift in either direction.  A zero
    total score degrades to an even split.  Ties break on the sorted
    context name so the allocation is a pure function of its inputs.
    """
    if total < 2 * len(scores):
        raise ValueError("too few replications to cover all active strata")
    total_score = math.fsum(scores.values())
    if total_score == 0:
        # Degenerate scores (no signal anywhere): split evenly.
        targets = {context: total / len(scores) for context in scores}
    else:
        targets = {context: total * score / total_score
                   for context, score in scores.items()}
    allocation = {context: max(2, math.floor(target))
                  for context, target in targets.items()}
    # Floors can land above or below the total; walk to it one step at a
    # time, spending on the largest shortfall (target - allocated) and
    # reclaiming from the largest excess among strata above the floor.
    while sum(allocation.values()) < total:
        context = max(sorted(allocation),
                      key=lambda c: targets[c] - allocation[c])
        allocation[context] += 1
    while sum(allocation.values()) > total:
        eligible = [c for c in sorted(allocation) if allocation[c] > 2]
        context = max(eligible, key=lambda c: allocation[c] - targets[c])
        allocation[context] -= 1
    return allocation
