"""Bayesian rate estimation: simulation-supported demonstration.

Sec. IV's programme — precise run-time information plus simulation-backed
arguments — needs a principled way to *combine* evidence sources: a
frequentist bound over field hours alone recreates the 3e8-hour burden
(E6) no matter how much simulation preceded it.  The conjugate
Gamma-Poisson machinery here does the combination:

* a :class:`GammaRatePrior` ``(α, β)`` is the state of knowledge about an
  incident rate — equivalent to having already observed ``α`` events over
  ``β`` exposure units;
* :func:`~GammaRatePrior.updated` folds in observed counts (field data)
  exactly;
* :func:`prior_from_simulation` turns a simulation campaign into a
  *discounted* prior (a power prior): simulation hours count, but at a
  declared exchange rate < 1, because the simulator is not the world —
  the discount is exactly the model-validity claim the safety case must
  then defend;
* :func:`field_exposure_to_demonstrate` answers the planning question:
  given this prior, how many *field* hours until the posterior puts the
  required probability below the budget?

All numbers remain auditable: a posterior is just (α, β), i.e. "events
seen over exposure credited".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from scipy import stats as _st

__all__ = ["GammaRatePrior", "JEFFREYS", "prior_from_simulation",
           "field_exposure_to_demonstrate"]


@dataclass(frozen=True)
class GammaRatePrior:
    """Gamma(α, β) belief over a Poisson rate (β in exposure units)."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or not math.isfinite(self.alpha):
            raise ValueError(f"alpha must be positive and finite, got {self.alpha}")
        if self.beta < 0 or not math.isfinite(self.beta):
            raise ValueError(f"beta must be finite and >= 0, got {self.beta}")

    # -- belief queries -----------------------------------------------------

    def mean(self) -> float:
        if self.beta == 0:
            return math.inf
        return self.alpha / self.beta

    def credible_upper(self, confidence: float = 0.95) -> float:
        """Upper credible bound: P(λ ≤ bound) = confidence."""
        _check_confidence(confidence)
        if self.beta == 0:
            return math.inf
        return float(_st.gamma.ppf(confidence, self.alpha,
                                   scale=1.0 / self.beta))

    def credible_interval(self, confidence: float = 0.95,
                          ) -> Tuple[float, float]:
        """Equal-tailed credible interval."""
        _check_confidence(confidence)
        if self.beta == 0:
            return (0.0, math.inf)
        tail = (1.0 - confidence) / 2.0
        return (
            float(_st.gamma.ppf(tail, self.alpha, scale=1.0 / self.beta)),
            float(_st.gamma.ppf(1.0 - tail, self.alpha,
                                scale=1.0 / self.beta)),
        )

    def probability_below(self, budget_rate: float) -> float:
        """P(λ ≤ budget) under this belief — the demonstration statement."""
        if budget_rate <= 0:
            raise ValueError("budget rate must be positive")
        if self.beta == 0:
            return 0.0
        return float(_st.gamma.cdf(budget_rate, self.alpha,
                                   scale=1.0 / self.beta))

    def demonstrates(self, budget_rate: float,
                     confidence: float = 0.95) -> bool:
        """Whether the belief already supports the budget claim."""
        return self.probability_below(budget_rate) >= confidence

    # -- updating -------------------------------------------------------------

    def updated(self, events: int, exposure: float) -> "GammaRatePrior":
        """Exact conjugate update with observed field data."""
        if events < 0:
            raise ValueError("events must be >= 0")
        if exposure < 0:
            raise ValueError("exposure must be >= 0")
        return GammaRatePrior(self.alpha + events, self.beta + exposure)


JEFFREYS = GammaRatePrior(alpha=0.5, beta=0.0)
"""The Jeffreys prior for a Poisson rate — the no-information start.

Updating it with (0 events, T) gives an upper credible bound close to the
frequentist exact bound, so the Bayesian machinery reduces gracefully to
E6's numbers when no simulation evidence is claimed.
"""


def _check_confidence(confidence: float) -> None:
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def prior_from_simulation(sim_events: int, sim_exposure: float,
                          validity_discount: float,
                          *, base: Optional[GammaRatePrior] = None,
                          ) -> GammaRatePrior:
    """A power prior from a simulation campaign.

    ``validity_discount`` ∈ (0, 1] is the exchange rate between simulated
    and real exposure: 0.1 means ten simulated hours are credited as one
    real hour.  The discount is a *claim about the simulator* and belongs
    in the safety case next to the evidence it enables; 1.0 (simulation
    is the world) is allowed but should ring alarm bells in review.
    """
    if sim_events < 0:
        raise ValueError("sim_events must be >= 0")
    if sim_exposure <= 0:
        raise ValueError("sim_exposure must be positive")
    if not (0.0 < validity_discount <= 1.0):
        raise ValueError(
            f"validity discount must be in (0, 1], got {validity_discount}")
    start = base if base is not None else JEFFREYS
    return GammaRatePrior(
        start.alpha + sim_events * validity_discount,
        start.beta + sim_exposure * validity_discount,
    )


def field_exposure_to_demonstrate(prior: GammaRatePrior, budget_rate: float,
                                  confidence: float = 0.95,
                                  *, assumed_field_events: int = 0,
                                  ) -> float:
    """Clean field exposure needed until the posterior demonstrates.

    Returns 0 when the prior alone already demonstrates, and ``inf`` when
    no finite clean exposure can (possible when ``assumed_field_events``
    keeps pace with a very tight budget).  Solved by bisection on the
    monotone posterior probability.
    """
    if budget_rate <= 0:
        raise ValueError("budget rate must be positive")
    _check_confidence(confidence)
    if assumed_field_events < 0:
        raise ValueError("assumed_field_events must be >= 0")

    def demonstrated(exposure: float) -> bool:
        posterior = prior.updated(assumed_field_events, exposure)
        return posterior.probability_below(budget_rate) >= confidence

    if demonstrated(0.0):
        return 0.0
    low, high = 0.0, 1.0
    for _ in range(200):
        if demonstrated(high):
            break
        high *= 4.0
    else:
        return math.inf
    for _ in range(200):
        mid = (low + high) / 2.0
        if demonstrated(mid):
            high = mid
        else:
            low = mid
        if high - low <= max(1e-9, 1e-9 * high):
            break
    return high
