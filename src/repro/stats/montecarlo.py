"""Monte-Carlo estimation harness.

Shared machinery for every simulation-based estimate in the repository:
seeded run management, batching with batch-means error bars, and sequential
sampling until a target precision.  All stochastic components in the
repository take explicit :class:`numpy.random.Generator` instances; this
module is where generators are minted so that any experiment is exactly
reproducible from one seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..obs.session import active_session, maybe_span

__all__ = [
    "spawn_generators",
    "BatchMeans",
    "MonteCarloResult",
    "estimate_mean",
    "estimate_probability",
    "run_until_precision",
]


def spawn_generators(seed: int, count: int) -> List[np.random.Generator]:
    """Mint ``count`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so parallel replications never share
    streams — the standard numpy idiom for reproducible ensembles.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


@dataclass(frozen=True)
class MonteCarloResult:
    """A point estimate with standard error and replication count."""

    mean: float
    std_error: float
    replications: int

    def ci(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval at ``z`` sigmas."""
        half = z * self.std_error
        return (self.mean - half, self.mean + half)

    def relative_error(self) -> float:
        """Standard error / |mean|; ``inf`` for a zero mean."""
        if self.mean == 0:
            return math.inf
        return self.std_error / abs(self.mean)


class BatchMeans:
    """Streaming batch-means accumulator.

    Feeds per-replication outputs; exposes the grand mean and the
    between-replication standard error.  Numerically stable (Welford).
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"batch value must be finite, got {value}")
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no batches accumulated")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance across replications."""
        if self._n < 2:
            raise ValueError("variance needs at least two batches")
        return self._m2 / (self._n - 1)

    def result(self) -> MonteCarloResult:
        if self._n < 2:
            raise ValueError("a result needs at least two replications")
        return MonteCarloResult(
            mean=self._mean,
            std_error=math.sqrt(self.variance / self._n),
            replications=self._n,
        )


def estimate_mean(simulate: Callable[[np.random.Generator], float],
                  *, seed: int, replications: int) -> MonteCarloResult:
    """Estimate ``E[simulate(rng)]`` over independent replications."""
    if replications < 2:
        raise ValueError("need at least two replications")
    acc = BatchMeans()
    for rng in spawn_generators(seed, replications):
        acc.add(float(simulate(rng)))
    return acc.result()


def estimate_probability(trial: Callable[[np.random.Generator], bool],
                         *, seed: int, replications: int) -> MonteCarloResult:
    """Estimate ``P[trial(rng)]`` with binomial standard error."""
    if replications < 2:
        raise ValueError("need at least two replications")
    successes = 0
    for rng in spawn_generators(seed, replications):
        if trial(rng):
            successes += 1
    p = successes / replications
    se = math.sqrt(max(p * (1.0 - p), 0.0) / replications)
    return MonteCarloResult(mean=p, std_error=se, replications=replications)


def run_until_precision(simulate: Callable[[np.random.Generator], float],
                        *, seed: int,
                        target_relative_error: float,
                        min_replications: int = 16,
                        max_replications: int = 100_000,
                        ) -> MonteCarloResult:
    """Sample sequentially until the relative standard error hits target.

    Grows the replication count geometrically (×2) so the stopping check
    runs O(log) times; returns early once ``relative_error <= target`` or
    at ``max_replications`` (whichever first).
    """
    if not (0 < target_relative_error < 1):
        raise ValueError("target relative error must be in (0, 1)")
    if min_replications < 2:
        raise ValueError("min_replications must be >= 2")
    acc = BatchMeans()
    # Generators are minted lazily, one goal-doubling at a time:
    # ``SeedSequence.spawn`` continues its child counter across calls, so
    # incremental spawning yields exactly the same streams as spawning
    # all ``max_replications`` up front (the prefix-stability property
    # tests.stats.test_montecarlo pins) — but an early stop at, say, 16
    # replications no longer pays for 100 000 generator constructions.
    seq = np.random.SeedSequence(seed)
    generators: List[np.random.Generator] = []
    index = 0
    goal = min(min_replications, max_replications)
    session = active_session()
    with maybe_span("montecarlo.run_until_precision"):
        while index < max_replications:
            if goal > len(generators):
                generators.extend(
                    np.random.default_rng(child)
                    for child in seq.spawn(goal - len(generators)))
            added = 0
            while index < goal:
                acc.add(float(simulate(generators[index])))
                index += 1
                added += 1
            if session is not None:
                # Batch granularity: one counter update per goal-doubling,
                # never per replication (DESIGN §8).
                session.metrics.counter("montecarlo.replications").inc(added)
                session.metrics.counter("montecarlo.goal_doublings").inc()
            result = acc.result()
            if result.relative_error() <= target_relative_error:
                return result
            goal = min(max_replications, goal * 2)
            if index >= max_replications:
                break
    return acc.result()
