"""Multilevel splitting (subset simulation) for rare-event probabilities.

The second accelerator of the rare-event tier (DESIGN §11).  Where
importance sampling needs an explicit tilted law with computable
likelihood ratios, splitting only needs a *severity score*: a function
``S(state)`` whose exceedance of a threshold ``L*`` is the rare event.
The target probability is factored through a ladder of intermediate
levels ``L_1 < L_2 < ... < L* `` as

    ``P(S > L*) = P(S > L_1) · Π_k P(S > L_{k+1} | S > L_k)``,

and each conditional factor is estimated with a particle population:
survivors of level ``k`` are cloned back to full strength and decorrelated
with an MCMC kernel that leaves the *nominal* law invariant (conditioning
on ``S > L_k`` is enforced by rejection, which makes the kernel invariant
for the conditional law too).  Each factor is a common-or-garden fraction
instead of a 1e-7 needle, so the work scales with ``log(1/p)`` rather than
``1/p``.

The traffic layer supplies states, scores and kernels
(:mod:`repro.traffic.acceleration` maps encounters onto standard-normal /
uniform coordinates so Crank–Nicolson and mod-1 translation kernels are
exactly invariant); this module is the generic machinery plus the two
estimator flavours:

* :func:`multilevel_splitting` — one population run, with the standard
  independence-approximation error bar (good for sizing, optimistic for
  gating because survivors are correlated);
* :func:`replicated_splitting` — independent repetitions combined through
  :class:`~repro.stats.montecarlo.BatchMeans`, whose between-run standard
  error is honest and is what the 5σ statistical-verification gates use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

import numpy as np

from .montecarlo import BatchMeans, MonteCarloResult, spawn_generators

__all__ = [
    "LevelPassage",
    "SplittingEstimate",
    "multilevel_splitting",
    "adaptive_levels",
    "replicated_splitting",
]

State = TypeVar("State")


@dataclass(frozen=True)
class LevelPassage:
    """One rung of the ladder: how many particles cleared the level."""

    level: float
    passed: int
    total: int

    @property
    def fraction(self) -> float:
        return self.passed / self.total

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError("total must be >= 1")
        if not (0 <= self.passed <= self.total):
            raise ValueError("passed must be in [0, total]")


@dataclass(frozen=True)
class SplittingEstimate:
    """Product-of-fractions estimate of ``P(score > levels[-1])``.

    ``std_error`` uses the independence approximation
    ``relvar ≈ Σ_k (1 - p_k) / (N · p_k)`` — exact if the populations at
    each level were independent, an underestimate in practice because
    cloning correlates survivors.  Use :func:`replicated_splitting` when
    the error bar itself is load-bearing.
    """

    probability: float
    std_error: float
    particles: int
    passages: Tuple[LevelPassage, ...]

    def as_result(self) -> MonteCarloResult:
        return MonteCarloResult(mean=self.probability,
                                std_error=self.std_error,
                                replications=self.particles)

    @property
    def extinct(self) -> bool:
        """True when a level killed every particle (estimate is 0)."""
        return any(p.passed == 0 for p in self.passages)


def _validate_levels(levels: Sequence[float]) -> List[float]:
    levels = [float(level) for level in levels]
    if not levels:
        raise ValueError("at least one level is required")
    for level in levels:
        if not math.isfinite(level):
            raise ValueError("levels must be finite")
    for lo, hi in zip(levels, levels[1:]):
        if hi <= lo:
            raise ValueError(
                f"levels must be strictly increasing, got {lo} then {hi}")
    return levels


def _run_splitting(initial: Callable[[np.random.Generator], State],
                   score: Callable[[State], float],
                   mutate: Callable[[State, np.random.Generator], State],
                   levels: List[float],
                   rng: np.random.Generator,
                   particles: int,
                   mutations_per_level: int) -> SplittingEstimate:
    population = [initial(rng) for _ in range(particles)]
    scores = [float(score(state)) for state in population]
    passages: List[LevelPassage] = []
    probability = 1.0
    relvar = 0.0
    for index, level in enumerate(levels):
        survivor_indices = [i for i, s in enumerate(scores) if s > level]
        passed = len(survivor_indices)
        passages.append(LevelPassage(level=level, passed=passed,
                                     total=particles))
        if passed == 0:
            # Extinction: the estimate is 0.  There is no within-run error
            # bar for "saw nothing"; report the resolution floor — the
            # smallest probability one surviving particle could have
            # witnessed — so callers never mistake 0 ± 0 for certainty.
            floor = probability / particles
            return SplittingEstimate(probability=0.0, std_error=floor,
                                     particles=particles,
                                     passages=tuple(passages))
        fraction = passed / particles
        probability *= fraction
        relvar += (1.0 - fraction) / (particles * fraction)
        if index == len(levels) - 1:
            break
        # Rebuild a full-strength population conditioned on S > level:
        # round-robin cloning keeps every survivor's lineage alive, then
        # the rejection-wrapped kernel decorrelates the clones.
        population = [population[survivor_indices[i % passed]]
                      for i in range(particles)]
        scores = [scores[survivor_indices[i % passed]]
                  for i in range(particles)]
        for i in range(particles):
            state, value = population[i], scores[i]
            for _ in range(mutations_per_level):
                candidate = mutate(state, rng)
                candidate_score = float(score(candidate))
                if candidate_score > level:
                    state, value = candidate, candidate_score
            population[i], scores[i] = state, value
    std_error = probability * math.sqrt(relvar)
    return SplittingEstimate(probability=probability, std_error=std_error,
                             particles=particles, passages=tuple(passages))


def multilevel_splitting(initial: Callable[[np.random.Generator], State],
                         score: Callable[[State], float],
                         mutate: Callable[[State, np.random.Generator],
                                          State],
                         levels: Sequence[float],
                         *, seed: int,
                         particles: int = 256,
                         mutations_per_level: int = 3) -> SplittingEstimate:
    """Estimate ``P(score(X) > levels[-1])`` for ``X ~`` the nominal law.

    ``initial(rng)`` draws a state from the nominal law; ``score`` maps a
    state to its severity; ``mutate(state, rng)`` proposes a state from a
    kernel *invariant for the unconditioned nominal law* (level
    conditioning is applied here by rejection).  Comparisons are strict
    (``>``), matching the traffic layer's collision condition
    ``demanded deceleration > capability``.
    """
    levels = _validate_levels(levels)
    if particles < 2:
        raise ValueError("particles must be >= 2")
    if mutations_per_level < 0:
        raise ValueError("mutations_per_level must be >= 0")
    rng = spawn_generators(seed, 1)[0]
    return _run_splitting(initial, score, mutate, levels, rng, particles,
                          mutations_per_level)


def adaptive_levels(initial: Callable[[np.random.Generator], State],
                    score: Callable[[State], float],
                    mutate: Callable[[State, np.random.Generator], State],
                    *, seed: int,
                    final_level: float,
                    particles: int = 256,
                    level_fraction: float = 0.25,
                    max_levels: int = 12,
                    mutations_per_level: int = 3) -> List[float]:
    """Choose an intermediate-level ladder from pilot quantiles.

    Runs a pilot splitting pass in which each next level is placed at the
    population's ``(1 - level_fraction)`` score quantile, so roughly
    ``level_fraction`` of particles survive each rung — the textbook
    adaptive choice.  Returns strictly increasing levels ending exactly at
    ``final_level``, ready to pass to :func:`multilevel_splitting` (which
    should then be run with a *different* seed: reusing the pilot's
    levels on its own data biases the estimate).

    Stops placing rungs when the candidate quantile reaches
    ``final_level`` or fails to progress — score distributions with atoms
    (the traffic severity score has mass at 0 for never-closing
    encounters) would otherwise loop on a frozen quantile.
    """
    if not math.isfinite(final_level):
        raise ValueError("final_level must be finite")
    if particles < 2:
        raise ValueError("particles must be >= 2")
    if not (0.0 < level_fraction < 1.0):
        raise ValueError("level_fraction must be in (0, 1)")
    if max_levels < 1:
        raise ValueError("max_levels must be >= 1")
    rng = spawn_generators(seed, 1)[0]
    population = [initial(rng) for _ in range(particles)]
    scores = [float(score(state)) for state in population]
    levels: List[float] = []
    for _ in range(max_levels - 1):
        candidate = float(np.quantile(scores, 1.0 - level_fraction))
        if candidate >= final_level:
            break
        if levels and candidate <= levels[-1]:
            break
        levels.append(candidate)
        survivor_indices = [i for i, s in enumerate(scores) if s > candidate]
        if not survivor_indices:
            # Strict comparison emptied the rung (quantile atom); the
            # ladder so far is the best the pilot can certify.
            levels.pop()
            break
        passed = len(survivor_indices)
        population = [population[survivor_indices[i % passed]]
                      for i in range(particles)]
        scores = [scores[survivor_indices[i % passed]]
                  for i in range(particles)]
        for i in range(particles):
            state, value = population[i], scores[i]
            for _ in range(mutations_per_level):
                mutated = mutate(state, rng)
                mutated_score = float(score(mutated))
                if mutated_score > candidate:
                    state, value = mutated, mutated_score
            population[i], scores[i] = state, value
    levels.append(final_level)
    return levels


def replicated_splitting(initial: Callable[[np.random.Generator], State],
                         score: Callable[[State], float],
                         mutate: Callable[[State, np.random.Generator],
                                          State],
                         levels: Sequence[float],
                         *, seed: int,
                         runs: int = 8,
                         particles: int = 256,
                         mutations_per_level: int = 3) -> MonteCarloResult:
    """Independent splitting runs combined with batch means.

    Each run gets its own spawned generator, so the between-run standard
    error is an honest (correlation-free) error bar — this is the
    estimator the statistical-verification tier gates at 5σ.
    """
    levels = _validate_levels(levels)
    if runs < 2:
        raise ValueError("runs must be >= 2")
    if particles < 2:
        raise ValueError("particles must be >= 2")
    if mutations_per_level < 0:
        raise ValueError("mutations_per_level must be >= 0")
    acc = BatchMeans()
    for rng in spawn_generators(seed, runs):
        estimate = _run_splitting(initial, score, mutate, levels, rng,
                                  particles, mutations_per_level)
        acc.add(estimate.probability)
    return acc.result()
