"""Poisson rate estimation and demonstration statistics.

The QRN turns safety assurance into claims about *rates*: each safety goal
asserts an incident type occurs below ``f_I``.  Verifying such a claim from
operation or simulation is classical Poisson inference — incidents are rare
point events over exposure (operating hours).  This module provides:

* exact (gamma-quantile) confidence intervals for a Poisson rate;
* one-sided upper bounds — the safety-relevant direction (the claim
  "rate ≤ budget" is demonstrated when the *upper* confidence bound fits);
* demonstration planning: how much exposure is needed to demonstrate a
  budget, and the power of a demonstration campaign given a true rate.

These are the quantitative teeth behind Sec. V's "traditional mathematical
quantitative rules".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _st

__all__ = [
    "RateEstimate",
    "rate_mle",
    "rate_confidence_interval",
    "rate_upper_bound",
    "rate_lower_bound",
    "exposure_to_demonstrate",
    "demonstration_power",
    "max_acceptable_count",
]


def _check_inputs(count: int, exposure: float) -> None:
    if count < 0 or count != int(count):
        raise ValueError(f"count must be a non-negative integer, got {count}")
    if not (exposure > 0 and math.isfinite(exposure)):
        raise ValueError(f"exposure must be positive and finite, got {exposure}")


def _check_confidence(confidence: float) -> None:
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


@dataclass(frozen=True)
class RateEstimate:
    """A rate estimate with exact two-sided confidence bounds.

    ``point`` is the MLE ``count / exposure``; ``lower``/``upper`` the
    equal-tailed exact interval at ``confidence``.  All in events per one
    exposure unit.
    """

    count: int
    exposure: float
    point: float
    lower: float
    upper: float
    confidence: float

    def width_decades(self) -> float:
        """Interval width in decades; ``inf`` when the lower bound is 0."""
        if self.lower <= 0:
            return math.inf
        return math.log10(self.upper / self.lower)


def rate_mle(count: int, exposure: float) -> float:
    """Maximum-likelihood rate estimate ``count / exposure``."""
    _check_inputs(count, exposure)
    return count / exposure


def rate_upper_bound(count: int, exposure: float, confidence: float = 0.95) -> float:
    """Exact one-sided upper confidence bound for a Poisson rate.

    ``UCB = gamma.ppf(confidence, count + 1) / exposure`` — for zero
    observed events this is the familiar ``-ln(1 - confidence)/exposure``
    ("rule of three" at 95 %: ≈ 3/exposure).
    """
    _check_inputs(count, exposure)
    _check_confidence(confidence)
    return float(_st.gamma.ppf(confidence, count + 1)) / exposure


def rate_lower_bound(count: int, exposure: float, confidence: float = 0.95) -> float:
    """Exact one-sided lower confidence bound (0 when no events observed)."""
    _check_inputs(count, exposure)
    _check_confidence(confidence)
    if count == 0:
        return 0.0
    return float(_st.gamma.ppf(1.0 - confidence, count)) / exposure


def rate_confidence_interval(count: int, exposure: float,
                             confidence: float = 0.95) -> RateEstimate:
    """Exact equal-tailed two-sided interval for a Poisson rate."""
    _check_inputs(count, exposure)
    _check_confidence(confidence)
    alpha = 1.0 - confidence
    lower = 0.0
    if count > 0:
        lower = float(_st.gamma.ppf(alpha / 2.0, count)) / exposure
    upper = float(_st.gamma.ppf(1.0 - alpha / 2.0, count + 1)) / exposure
    return RateEstimate(count=count, exposure=exposure,
                        point=count / exposure,
                        lower=lower, upper=upper, confidence=confidence)


def exposure_to_demonstrate(budget_rate: float, confidence: float = 0.95,
                            observed_count: int = 0) -> float:
    """Exposure needed so ``observed_count`` events still demonstrate a budget.

    The minimum exposure ``T`` with ``rate_upper_bound(count, T) <=
    budget_rate``.  For zero events at 95 % this is ≈ ``3 / budget_rate``
    — e.g. demonstrating a 1e-8/h fatality budget needs ≈ 3e8 incident-free
    hours, the well-known ADS validation burden that motivates
    simulation-supported arguments.
    """
    if budget_rate <= 0:
        raise ValueError("budget rate must be positive")
    _check_confidence(confidence)
    if observed_count < 0:
        raise ValueError("observed_count must be >= 0")
    return float(_st.gamma.ppf(confidence, observed_count + 1)) / budget_rate


def max_acceptable_count(budget_rate: float, exposure: float,
                         confidence: float = 0.95) -> int:
    """Largest event count whose UCB still fits within the budget.

    Returns -1 when even zero events cannot demonstrate the budget at this
    exposure (the campaign is too short for any verdict).
    """
    if budget_rate <= 0:
        raise ValueError("budget rate must be positive")
    _check_inputs(0, exposure)
    _check_confidence(confidence)
    limit = budget_rate * exposure
    if float(_st.gamma.ppf(confidence, 1)) > limit:
        return -1
    # gamma.ppf(conf, n+1) grows ~linearly in n; binary search the cutoff.
    low, high = 0, max(8, int(2 * limit) + 8)
    while float(_st.gamma.ppf(confidence, high + 1)) <= limit:
        high *= 2
    while low < high:
        mid = (low + high + 1) // 2
        if float(_st.gamma.ppf(confidence, mid + 1)) <= limit:
            low = mid
        else:
            high = mid - 1
    return low


def demonstration_power(true_rate: float, budget_rate: float, exposure: float,
                        confidence: float = 0.95) -> float:
    """Probability a campaign demonstrates the budget, given the true rate.

    ``P[N ≤ n*]`` with ``N ~ Poisson(true_rate · exposure)`` and ``n*`` the
    :func:`max_acceptable_count`.  Used to plan verification effort: even a
    genuinely compliant system (true rate below budget) may fail to
    *demonstrate* compliance if exposure is too small.
    """
    if true_rate < 0:
        raise ValueError("true rate must be >= 0")
    cutoff = max_acceptable_count(budget_rate, exposure, confidence)
    if cutoff < 0:
        return 0.0
    return float(_st.poisson.cdf(cutoff, true_rate * exposure))
