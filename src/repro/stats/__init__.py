"""Statistical substrate: Poisson inference, counting logs, Monte Carlo.

The QRN's "quantitative" is carried by this package — rate estimation with
exact confidence bounds (:mod:`.poisson`), event logs over exposure
(:mod:`.counting`), reproducible Monte-Carlo harnesses (:mod:`.montecarlo`)
and stratified rare-event estimation (:mod:`.rare_event`).
"""

from .counting import CountedEvent, CountingLog
from .montecarlo import (BatchMeans, MonteCarloResult, estimate_mean,
                         estimate_probability, run_until_precision,
                         spawn_generators)
from .poisson import (RateEstimate, demonstration_power,
                      exposure_to_demonstrate, max_acceptable_count,
                      rate_confidence_interval, rate_lower_bound, rate_mle,
                      rate_upper_bound)
from .bayes import (JEFFREYS, GammaRatePrior,
                    field_exposure_to_demonstrate, prior_from_simulation)
from .sequential import (SprtDecision, SprtPlan, SprtState,
                         expected_acceptance_exposure)
from .rare_event import (StratifiedEstimate, StratumEstimate,
                         optimal_replication_split, stratified_rate,
                         uncertainty_replication_split)
from .importance import (ImportanceEstimate, WeightDegeneracyError,
                         WeightDiagnostics, bernoulli_log_ratio,
                         clamped_lognormal_log_ratio,
                         floored_normal_log_ratio, importance_estimate,
                         normal_cdf, normal_log_ratio,
                         poisson_count_log_ratio)
from .splitting import (LevelPassage, SplittingEstimate, adaptive_levels,
                        multilevel_splitting, replicated_splitting)
from .parallel import (Chunk, ChunkProgress, default_worker_count,
                       plan_chunks, run_chunked)
from .fault_tolerance import (FAILURE_KINDS, CampaignPartialFailure,
                              ChunkFailure, RetryPolicy)

__all__ = [
    "CountedEvent",
    "CountingLog",
    "BatchMeans",
    "MonteCarloResult",
    "estimate_mean",
    "estimate_probability",
    "run_until_precision",
    "spawn_generators",
    "RateEstimate",
    "demonstration_power",
    "exposure_to_demonstrate",
    "max_acceptable_count",
    "rate_confidence_interval",
    "rate_lower_bound",
    "rate_mle",
    "rate_upper_bound",
    "StratifiedEstimate",
    "StratumEstimate",
    "optimal_replication_split",
    "stratified_rate",
    "uncertainty_replication_split",
    "ImportanceEstimate",
    "WeightDegeneracyError",
    "WeightDiagnostics",
    "bernoulli_log_ratio",
    "clamped_lognormal_log_ratio",
    "floored_normal_log_ratio",
    "importance_estimate",
    "normal_cdf",
    "normal_log_ratio",
    "poisson_count_log_ratio",
    "LevelPassage",
    "SplittingEstimate",
    "adaptive_levels",
    "multilevel_splitting",
    "replicated_splitting",
    "SprtDecision",
    "SprtPlan",
    "SprtState",
    "expected_acceptance_exposure",
    "GammaRatePrior",
    "JEFFREYS",
    "prior_from_simulation",
    "field_exposure_to_demonstrate",
    "Chunk",
    "ChunkProgress",
    "default_worker_count",
    "plan_chunks",
    "run_chunked",
    "FAILURE_KINDS",
    "CampaignPartialFailure",
    "ChunkFailure",
    "RetryPolicy",
]
