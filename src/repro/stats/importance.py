"""Importance sampling with exact likelihood-ratio reweighting.

The expensive verification question behind the QRN (PAPER.md Sec. V, and
de Gelder & Op den Camp's foreseeable-collision quantification) is
demonstrating incident budgets in the 1e-7/h class: naive Monte Carlo
needs on the order of 1e9 simulated hours before the first confidence
bound tightens.  Importance sampling closes that gap by simulating under
a *proposal* distribution ``q`` that makes the rare outcome common, then
reweighting every observation by the exact likelihood ratio ``p/q`` so
the estimator stays unbiased under the *nominal* law ``p``:

    ``E_p[f(X)] = E_q[f(X) · p(X)/q(X)]``.

This module is the distribution-agnostic substrate:

* :class:`WeightDiagnostics` — streamed, associatively mergeable weight
  moments with the standard effective-sample-size (ESS) diagnostic
  ``(Σw)² / Σw²`` and a weight-degeneracy alarm
  (:class:`WeightDegeneracyError`).  A tilt that is *too* aggressive
  concentrates all mass in a handful of samples; the ESS fraction is the
  honest measure of how many nominal-law samples the weighted ensemble
  is worth.
* exact log-likelihood ratios for the tilted families the traffic layer
  uses (:func:`clamped_lognormal_log_ratio`,
  :func:`floored_normal_log_ratio`, :func:`poisson_count_log_ratio`) —
  including the point masses their clamps introduce, which naive density
  ratios silently get wrong.
* :func:`importance_estimate` — a seeded replication driver mirroring
  :func:`~repro.stats.montecarlo.estimate_mean`, for estimands that can
  be phrased as one ``(value, log_weight)`` pair per replication.

The traffic-specific proposal tilts (which parameters to shift, and the
per-encounter Campbell/marked-Poisson weights) live in
:mod:`repro.traffic.encounters` and :mod:`repro.traffic.acceleration`;
the statistical-verification tier (``pytest -m stats``) gates both
layers against analytic rates and the scalar oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple, Union

import numpy as np

from .montecarlo import BatchMeans, MonteCarloResult, spawn_generators

__all__ = [
    "WeightDegeneracyError",
    "WeightDiagnostics",
    "ImportanceEstimate",
    "importance_estimate",
    "normal_cdf",
    "normal_log_ratio",
    "clamped_lognormal_log_ratio",
    "floored_normal_log_ratio",
    "bernoulli_log_ratio",
    "poisson_count_log_ratio",
]

_SQRT2 = math.sqrt(2.0)


class WeightDegeneracyError(ValueError):
    """An importance-sampling weight ensemble failed its health gate.

    Raised by :meth:`WeightDiagnostics.check` when the effective sample
    size collapses (a few huge weights dominate) — the estimate is then
    formally unbiased but its error bars are fiction, so the accelerated
    tier refuses to report it.  Carries the offending diagnostics.
    """

    def __init__(self, message: str, diagnostics: "WeightDiagnostics"):
        super().__init__(message)
        self.diagnostics = diagnostics


@dataclass(frozen=True)
class WeightDiagnostics:
    """Weight-ensemble moments: count, Σw, Σw², max w.

    Associatively mergeable (plain sums and a max), so per-context or
    per-chunk diagnostics pool exactly like the telemetry counters.
    ``count`` includes *every* weighted sample — in the traffic layer
    that is every proposal-law encounter, not only the ones that became
    incidents, because each carries information about the tilt quality.
    """

    count: int = 0
    weight_sum: float = 0.0
    weight_sq_sum: float = 0.0
    max_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        for name in ("weight_sum", "weight_sq_sum", "max_weight"):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, "
                                 f"got {value}")

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "WeightDiagnostics":
        weights = np.asarray(weights, dtype=float)
        if weights.size == 0:
            return cls()
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and >= 0")
        return cls(count=int(weights.size),
                   weight_sum=float(np.sum(weights)),
                   weight_sq_sum=float(np.sum(weights ** 2)),
                   max_weight=float(np.max(weights)))

    def merged(self, other: "WeightDiagnostics") -> "WeightDiagnostics":
        return WeightDiagnostics(
            count=self.count + other.count,
            weight_sum=self.weight_sum + other.weight_sum,
            weight_sq_sum=self.weight_sq_sum + other.weight_sq_sum,
            max_weight=max(self.max_weight, other.max_weight))

    @classmethod
    def merge_many(cls, parts: Iterable["WeightDiagnostics"],
                   ) -> "WeightDiagnostics":
        merged = cls()
        for part in parts:
            merged = merged.merged(part)
        return merged

    @property
    def ess(self) -> float:
        """Effective sample size ``(Σw)² / Σw²`` (0 for an empty set)."""
        if self.weight_sq_sum == 0.0:
            return 0.0
        return self.weight_sum ** 2 / self.weight_sq_sum

    @property
    def ess_fraction(self) -> float:
        """ESS / count — 1.0 for uniform weights, → 0 when degenerate."""
        if self.count == 0:
            return 0.0
        return self.ess / self.count

    @property
    def max_weight_fraction(self) -> float:
        """Largest single weight's share of the total weight."""
        if self.weight_sum == 0.0:
            return 0.0
        return self.max_weight / self.weight_sum

    def check(self, *, min_ess_fraction: float = 0.01,
              max_weight_share: float = 0.5) -> "WeightDiagnostics":
        """Raise :class:`WeightDegeneracyError` on a degenerate ensemble.

        Default gates: the weighted ensemble must be worth at least 1 %
        of its sample count, and no single sample may carry more than
        half the total weight.  Empty ensembles pass (nothing to judge).
        Returns ``self`` so call sites can chain.
        """
        if not (0.0 <= min_ess_fraction <= 1.0):
            raise ValueError("min_ess_fraction must be in [0, 1]")
        if not (0.0 < max_weight_share <= 1.0):
            raise ValueError("max_weight_share must be in (0, 1]")
        if self.count == 0:
            return self
        if self.ess_fraction < min_ess_fraction:
            self._journal_alarm("ess_collapse",
                                threshold=min_ess_fraction)
            raise WeightDegeneracyError(
                f"importance weights are degenerate: ESS "
                f"{self.ess:.1f} of {self.count} samples "
                f"({self.ess_fraction:.2%} < {min_ess_fraction:.2%}) — "
                f"the proposal tilt is too aggressive for this workload",
                self)
        if self.max_weight_fraction > max_weight_share:
            self._journal_alarm("weight_concentration",
                                threshold=max_weight_share)
            raise WeightDegeneracyError(
                f"one sample carries {self.max_weight_fraction:.1%} of the "
                f"total importance weight (> {max_weight_share:.0%}) — "
                f"error bars on this estimate are unreliable", self)
        return self

    def _journal_alarm(self, reason: str, *, threshold: float) -> None:
        """Flight-recorder leg of a degeneracy gate trip.

        The alarm lands in the journal *before* the typed raise, so an
        aborted accelerated campaign still carries the diagnostics that
        killed it (a no-op without an active journal).
        """
        from ..obs.events import journal_event  # lazy: keep stats light
        journal_event("degeneracy.alarm", reason=reason,
                      threshold=float(threshold), **self.to_dict())

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "weight_sum": self.weight_sum,
            "weight_sq_sum": self.weight_sq_sum,
            "max_weight": self.max_weight,
            "ess": self.ess,
            "ess_fraction": self.ess_fraction,
            "max_weight_fraction": self.max_weight_fraction,
        }


@dataclass(frozen=True)
class ImportanceEstimate:
    """A reweighted estimate plus the weight health that qualifies it."""

    mean: float
    std_error: float
    replications: int
    diagnostics: WeightDiagnostics

    def as_result(self) -> MonteCarloResult:
        return MonteCarloResult(mean=self.mean, std_error=self.std_error,
                                replications=self.replications)

    def ci(self, z: float = 1.96) -> Tuple[float, float]:
        return self.as_result().ci(z)

    def relative_error(self) -> float:
        return self.as_result().relative_error()


def importance_estimate(sample: Callable[[np.random.Generator],
                                         Tuple[float, float]],
                        *, seed: int, replications: int,
                        min_ess_fraction: float = 0.0,
                        ) -> ImportanceEstimate:
    """Estimate ``E_p[f]`` from proposal-law replications.

    ``sample(rng)`` draws once under the proposal and returns
    ``(value, log_weight)`` with ``log_weight = log p(x) - log q(x)``
    (``-inf`` allowed: a sample impossible under the nominal law weighs
    zero).  The estimator is the unnormalised mean of ``value · w`` —
    exactly unbiased, unlike self-normalised variants.

    ``min_ess_fraction > 0`` arms the degeneracy alarm: the returned
    estimate is only released if the weight ensemble passes
    :meth:`WeightDiagnostics.check`.
    """
    if replications < 2:
        raise ValueError("need at least two replications")
    acc = BatchMeans()
    weights = np.empty(replications)
    for i, rng in enumerate(spawn_generators(seed, replications)):
        value, log_weight = sample(rng)
        if math.isnan(log_weight) or log_weight == math.inf:
            raise ValueError(
                f"log weight must be finite or -inf, got {log_weight}")
        weight = math.exp(log_weight)
        weights[i] = weight
        acc.add(float(value) * weight)
    diagnostics = WeightDiagnostics.from_weights(weights)
    if min_ess_fraction > 0.0:
        diagnostics.check(min_ess_fraction=min_ess_fraction)
    result = acc.result()
    return ImportanceEstimate(mean=result.mean, std_error=result.std_error,
                              replications=result.replications,
                              diagnostics=diagnostics)


# ---------------------------------------------------------------------------
# Exact log-likelihood ratios for the tilted families the traffic layer
# draws from.  Each mirrors the *sampling code* of its distribution —
# clamps and floors introduce point masses, and the ratio at an atom is
# the ratio of the atom probabilities, not of densities.
# ---------------------------------------------------------------------------

ArrayLike = Union[float, np.ndarray]


def normal_cdf(x: ArrayLike) -> ArrayLike:
    """Standard normal CDF via ``erfc`` (no scipy needed on hot paths).

    ``0.5·erfc(-x/√2)`` rather than ``0.5·(1 + erf(x/√2))``: the erf form
    cancels catastrophically in the lower tail, and tail masses are
    exactly what the clamp-atom likelihood ratios divide.
    """
    if isinstance(x, np.ndarray):
        # np has no erfc; vectorise the math one (weight paths are short).
        return np.vectorize(lambda v: 0.5 * math.erfc(-v / _SQRT2),
                            otypes=[float])(x)
    return 0.5 * math.erfc(-x / _SQRT2)


def normal_log_ratio(x: ArrayLike, *, mean_p: float, mean_q: float,
                     std: float) -> ArrayLike:
    """``log N(x; mean_p, std) - log N(x; mean_q, std)`` (shared std).

    The normalising constants cancel, so this is exact in one subtraction
    — the building block for mean-shift tilts.
    """
    if std <= 0:
        raise ValueError("std must be positive")
    x = np.asarray(x, dtype=float) if isinstance(x, np.ndarray) else x
    return (-((x - mean_p) ** 2) + (x - mean_q) ** 2) / (2.0 * std ** 2)


def clamped_lognormal_log_ratio(x: ArrayLike, *, mu_p: float, mu_q: float,
                                sigma: float, clamp: float) -> ArrayLike:
    """Log-LR for ``max(Lognormal(mu, sigma), clamp)`` under a ``mu`` shift.

    The sampler clamps from below, so the law has an atom at ``clamp``
    with mass ``Φ((ln clamp - mu)/sigma)``; samples *at* the clamp are
    reweighted by the atom-mass ratio, samples above by the density
    ratio (whose ``1/(xσ√2π)`` factor cancels).  Matches
    :meth:`repro.traffic.encounters.EncounterGenerator.sample_class_batch`
    exactly.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if clamp <= 0:
        raise ValueError("clamp must be positive")
    log_clamp = math.log(clamp)
    atom_p = normal_cdf((log_clamp - mu_p) / sigma)
    atom_q = normal_cdf((log_clamp - mu_q) / sigma)
    if isinstance(x, np.ndarray):
        x = np.asarray(x, dtype=float)
        if x.size and np.any(x < clamp):
            raise ValueError(f"samples below the clamp {clamp} are "
                             f"impossible under this law")
        log_x = np.log(np.maximum(x, clamp))  # guard: x==clamp exact
        density = normal_log_ratio(log_x, mean_p=mu_p, mean_q=mu_q,
                                   std=sigma)
        atom = _log_mass_ratio(atom_p, atom_q)
        return np.where(x == clamp, atom, density)
    if x < clamp:
        raise ValueError(f"samples below the clamp {clamp} are impossible "
                         f"under this law")
    if x == clamp:
        return _log_mass_ratio(atom_p, atom_q)
    return normal_log_ratio(math.log(x), mean_p=mu_p, mean_q=mu_q,
                            std=sigma)


def floored_normal_log_ratio(x: ArrayLike, *, mean_p: float, mean_q: float,
                             std: float) -> ArrayLike:
    """Log-LR for ``max(Normal(mean, std), 0)`` under a mean shift.

    The floor puts an atom at 0 with mass ``Φ(-mean/std)``; the ratio at
    the atom is the mass ratio, above it the density ratio.  A zero
    ``std`` means the law is a point mass — only an *identity* tilt is
    well defined there, and the ratio is 0 everywhere.
    """
    if std < 0:
        raise ValueError("std must be >= 0")
    if std == 0.0:
        if mean_p != mean_q:
            raise ValueError("a zero-std (point-mass) speed law cannot be "
                             "tilted: nominal and proposal means differ")
        return np.zeros_like(x, dtype=float) if isinstance(x, np.ndarray) \
            else 0.0
    atom_p = normal_cdf(-mean_p / std)
    atom_q = normal_cdf(-mean_q / std)
    if isinstance(x, np.ndarray):
        x = np.asarray(x, dtype=float)
        if x.size and np.any(x < 0):
            raise ValueError("samples below the floor 0 are impossible "
                             "under this law")
        density = normal_log_ratio(x, mean_p=mean_p, mean_q=mean_q, std=std)
        atom = _log_mass_ratio(atom_p, atom_q)
        return np.where(x == 0.0, atom, density)
    if x < 0:
        raise ValueError("samples below the floor 0 are impossible under "
                         "this law")
    if x == 0.0:
        return _log_mass_ratio(atom_p, atom_q)
    return normal_log_ratio(x, mean_p=mean_p, mean_q=mean_q, std=std)


def bernoulli_log_ratio(outcome: Union[bool, np.ndarray], *, p_p: float,
                        p_q: float) -> ArrayLike:
    """Log-LR of a Bernoulli mark under a success-probability tilt.

    ``log(p_p/p_q)`` for a success, ``log((1-p_p)/(1-p_q))`` for a
    failure — the reweighting for rare discrete states proposed more
    often than nominal (e.g. the degraded-braking occupancy tilt).
    """
    for name, p in (("p_p", p_p), ("p_q", p_q)):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    if isinstance(outcome, np.ndarray):
        outcome = np.asarray(outcome, dtype=bool)
        result = np.empty(outcome.shape, dtype=float)
        success = _log_mass_ratio(p_p, p_q) if outcome.any() else 0.0
        failure = _log_mass_ratio(1.0 - p_p, 1.0 - p_q) \
            if (~outcome).any() else 0.0
        result[outcome] = success
        result[~outcome] = failure
        return result
    if outcome:
        return _log_mass_ratio(p_p, p_q)
    return _log_mass_ratio(1.0 - p_p, 1.0 - p_q)


def poisson_count_log_ratio(count: int, *, mean_p: float,
                            mean_q: float) -> float:
    """``log P(N=count; mean_p) - log P(N=count; mean_q)`` for Poisson N.

    The whole-path arrival-count ratio used when a replication's weight
    must cover a tilted arrival *rate* (the per-record Campbell weights
    in the traffic layer fold the rate tilt in per event instead; this
    form is kept for path-level estimators and the verification tier).
    """
    if count < 0 or count != int(count):
        raise ValueError(f"count must be a non-negative integer, got {count}")
    if mean_p < 0 or mean_q <= 0:
        raise ValueError("Poisson means must be >= 0 (proposal > 0)")
    if mean_p == 0.0:
        return -math.inf if count > 0 else mean_q
    return (mean_q - mean_p) + count * math.log(mean_p / mean_q)


def _log_mass_ratio(mass_p: float, mass_q: float) -> float:
    """``log(mass_p / mass_q)`` with the 0-mass conventions spelled out."""
    if mass_q <= 0.0:
        # The proposal cannot produce this atom; a sample here is a bug.
        raise ValueError("sample landed on an atom the proposal gives zero "
                         "mass — inconsistent tilt bookkeeping")
    if mass_p <= 0.0:
        return -math.inf
    return math.log(mass_p) - math.log(mass_q)
