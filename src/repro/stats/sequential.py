"""Sequential demonstration of frequency budgets (Wald SPRT).

The fixed-exposure demonstration of :mod:`repro.stats.poisson` needs the
whole campaign planned up front (≈ 3/budget hours for a clean record).
A sequential probability ratio test decides *during* the campaign: accept
the safety claim, reject it, or keep driving.  Unlike the fixed plan — which
can only ever succeed or remain inconclusive — the SPRT also *rejects* bad
systems early, with both error rates bounded.  Directly relevant to the
paper's quantitative framework, where every safety goal is a rate claim
awaiting demonstration.

The test contrasts::

    H1 (claim):   λ ≤ budget / margin      (comfortably compliant)
    H0 (reject):  λ ≥ budget               (at or above the budget)

For a Poisson process observed over exposure ``t`` with ``n`` events, the
log-likelihood ratio is ``n·ln(λ1/λ0) − (λ1 − λ0)·t``.  Wald's bounds
``ln(β/(1−α))`` and ``ln((1−β)/α)`` give error rates ≤ (α, β) up to the
usual overshoot slack.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["SprtDecision", "SprtPlan", "SprtState", "expected_acceptance_exposure"]


class SprtDecision(enum.Enum):
    """Outcome of a sequential check."""

    ACCEPT = "accept"          #: claim demonstrated (λ ≤ budget/margin)
    REJECT = "reject"          #: claim rejected (λ ≥ budget)
    CONTINUE = "continue"      #: keep observing


@dataclass(frozen=True)
class SprtPlan:
    """A configured sequential test for one budget claim.

    ``budget_rate`` is the H0 (reject) rate; ``margin`` > 1 sets the H1
    (accept) rate at ``budget_rate / margin``.  ``alpha`` bounds the
    probability of accepting a system that is actually at the budget;
    ``beta`` bounds rejecting a system that is actually ``margin``×
    better.
    """

    budget_rate: float
    margin: float = 2.0
    alpha: float = 0.05
    beta: float = 0.05

    def __post_init__(self) -> None:
        if self.budget_rate <= 0 or not math.isfinite(self.budget_rate):
            raise ValueError("budget rate must be positive and finite")
        if self.margin <= 1.0:
            raise ValueError("margin must exceed 1 (H1 strictly below H0)")
        if not (0 < self.alpha < 0.5 and 0 < self.beta < 0.5):
            raise ValueError("alpha and beta must be in (0, 0.5)")

    @property
    def lambda0(self) -> float:
        """The reject-hypothesis rate (the budget itself)."""
        return self.budget_rate

    @property
    def lambda1(self) -> float:
        """The accept-hypothesis rate (comfortably compliant)."""
        return self.budget_rate / self.margin

    @property
    def lower_bound(self) -> float:
        """Accept H1 when the LLR falls to/below this (Wald's A)."""
        return math.log(self.beta / (1.0 - self.alpha))

    @property
    def upper_bound(self) -> float:
        """Reject (accept H0) when the LLR rises to/above this (Wald's B)."""
        return math.log((1.0 - self.beta) / self.alpha)

    def log_likelihood_ratio(self, events: int, exposure: float) -> float:
        """LLR of H0 vs H1 after ``events`` over ``exposure``.

        Positive values favour H0 (the system is at the budget);
        incident-free exposure drives the LLR down towards acceptance.
        """
        if events < 0:
            raise ValueError("events must be >= 0")
        if exposure < 0:
            raise ValueError("exposure must be >= 0")
        return (events * math.log(self.lambda0 / self.lambda1)
                - (self.lambda0 - self.lambda1) * exposure)

    def decide(self, events: int, exposure: float) -> SprtDecision:
        llr = self.log_likelihood_ratio(events, exposure)
        if llr <= self.lower_bound:
            return SprtDecision.ACCEPT
        if llr >= self.upper_bound:
            return SprtDecision.REJECT
        return SprtDecision.CONTINUE

    def acceptance_exposure_clean(self) -> float:
        """Exposure at which an incident-free campaign accepts.

        Solving ``-(λ0−λ1)·t = ln(β/(1−α))``.  Note this is *longer* than
        the fixed plan's ≈ 3/budget clean run: the SPRT buys a stronger
        conclusion (discriminating budget/margin from budget with bounded
        β) plus the ability to reject a bad system early — the fixed plan
        can only ever fail to conclude.
        """
        return -self.lower_bound / (self.lambda0 - self.lambda1)

    def state(self) -> "SprtState":
        return SprtState(self)


class SprtState:
    """Mutable accumulator for one running sequential test."""

    def __init__(self, plan: SprtPlan):
        self.plan = plan
        self._events = 0
        self._exposure = 0.0
        self._decision = SprtDecision.CONTINUE

    @property
    def events(self) -> int:
        return self._events

    @property
    def exposure(self) -> float:
        return self._exposure

    @property
    def decision(self) -> SprtDecision:
        return self._decision

    def observe(self, events: int, exposure: float) -> SprtDecision:
        """Fold in a new observation window; returns the updated decision.

        Once a terminal decision is reached further observations are
        rejected — a sequential test must stop at its boundary or its
        error guarantees are void.
        """
        if self._decision is not SprtDecision.CONTINUE:
            raise RuntimeError(
                f"test already decided: {self._decision.value}")
        if events < 0:
            raise ValueError("events must be >= 0")
        if exposure <= 0:
            raise ValueError("exposure must be positive")
        self._events += events
        self._exposure += exposure
        self._decision = self.plan.decide(self._events, self._exposure)
        return self._decision


def expected_acceptance_exposure(plan: SprtPlan, true_rate: float,
                                 *, seed: int = 0,
                                 replications: int = 200,
                                 step_exposure: Optional[float] = None,
                                 max_steps: int = 100_000,
                                 ) -> Tuple[float, float, float]:
    """Monte-Carlo expected decision exposure and acceptance probability.

    Simulates the sequential test against a true Poisson rate; returns
    ``(mean decision exposure, acceptance probability, mean events)``.
    ``step_exposure`` defaults to 1 % of the clean acceptance exposure.
    Runs hitting ``max_steps`` are counted as (censored) continues and
    excluded from the exposure mean.
    """
    if true_rate < 0:
        raise ValueError("true rate must be >= 0")
    if replications < 1:
        raise ValueError("replications must be >= 1")
    step = (step_exposure if step_exposure is not None
            else plan.acceptance_exposure_clean() / 100.0)
    rng = np.random.default_rng(seed)
    exposures: List[float] = []
    accepted = 0
    events_total = 0
    decided = 0
    for _ in range(replications):
        state = plan.state()
        for _ in range(max_steps):
            events = int(rng.poisson(true_rate * step))
            decision = state.observe(events, step)
            if decision is not SprtDecision.CONTINUE:
                exposures.append(state.exposure)
                events_total += state.events
                decided += 1
                if decision is SprtDecision.ACCEPT:
                    accepted += 1
                break
    if decided == 0:
        raise RuntimeError("no replication reached a decision; "
                           "raise max_steps or step_exposure")
    return (sum(exposures) / decided, accepted / decided,
            events_total / decided)
