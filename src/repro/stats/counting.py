"""Event-counting processes over operating exposure.

Thin substrate shared by the traffic simulator and the verification layer:
a :class:`CountingLog` accumulates timestamped events per category over a
known exposure, and converts to rate estimates.  Keeping the log as a
first-class object (instead of bare dicts) gives merging, windowing and
stratification by context — all needed for the contextual-exposure
arguments of Sec. II-B-4.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .poisson import RateEstimate, rate_confidence_interval

__all__ = ["CountedEvent", "CountingLog"]


@dataclass(frozen=True)
class CountedEvent:
    """One timestamped categorised event (time in exposure units)."""

    category: str
    time: float
    context: str = ""

    def __post_init__(self) -> None:
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError(f"event time must be finite and >= 0, got {self.time}")
        if not self.category:
            raise ValueError("event category must be non-empty")


class CountingLog:
    """Events over a fixed total exposure, queryable by category/context."""

    def __init__(self, exposure: float,
                 events: Iterable[CountedEvent] = ()):
        if not (exposure > 0 and math.isfinite(exposure)):
            raise ValueError(f"exposure must be positive and finite, got {exposure}")
        self.exposure = exposure
        self._events: List[CountedEvent] = []
        for event in events:
            self.record(event)

    def record(self, event: CountedEvent) -> None:
        if event.time > self.exposure:
            raise ValueError(
                f"event at {event.time} beyond log exposure {self.exposure}")
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CountedEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[CountedEvent, ...]:
        return tuple(self._events)

    def count(self, category: Optional[str] = None, *,
              context: Optional[str] = None) -> int:
        """Events matching the given category and/or context filters."""
        return sum(
            1 for e in self._events
            if (category is None or e.category == category)
            and (context is None or e.context == context)
        )

    def counts_by_category(self) -> Dict[str, int]:
        return dict(Counter(e.category for e in self._events))

    def categories(self) -> Tuple[str, ...]:
        return tuple(sorted({e.category for e in self._events}))

    def contexts(self) -> Tuple[str, ...]:
        return tuple(sorted({e.context for e in self._events}))

    def rate(self, category: str, confidence: float = 0.95) -> RateEstimate:
        """Exact rate estimate for one category over the full exposure."""
        return rate_confidence_interval(self.count(category), self.exposure,
                                        confidence)

    def rates(self, confidence: float = 0.95) -> Dict[str, RateEstimate]:
        return {cat: self.rate(cat, confidence) for cat in self.categories()}

    @classmethod
    def pooled(cls, logs: Iterable["CountingLog"]) -> "CountingLog":
        """Pool logs whose events already share one global timeline.

        Order-independent counterpart to :meth:`merged`: exposures are
        summed with ``math.fsum`` (correctly rounded, so input order
        cannot change the result) and events are kept at their absolute
        stamps and canonically sorted, instead of being shifted.  This is
        the merge the parallel fleet runner uses for per-chunk logs,
        whose events are stamped with the chunk's global offset at
        generation time.
        """
        logs = list(logs)
        if not logs:
            raise ValueError("pooled needs at least one log")
        pooled = cls(math.fsum(log.exposure for log in logs))
        events = sorted((e for log in logs for e in log._events),
                        key=lambda e: (e.time, e.category, e.context))
        for event in events:
            pooled.record(CountedEvent(event.category,
                                       min(event.time, pooled.exposure),
                                       event.context))
        return pooled

    def merged(self, other: "CountingLog") -> "CountingLog":
        """Pool two independent campaigns (exposures add, events offset).

        Event times of ``other`` are shifted by this log's exposure so the
        merged log remains a valid single timeline.
        """
        merged = CountingLog(self.exposure + other.exposure)
        for event in self._events:
            merged.record(event)
        for event in other._events:
            merged.record(CountedEvent(event.category,
                                       event.time + self.exposure,
                                       event.context))
        return merged

    def window(self, start: float, end: float) -> "CountingLog":
        """The sub-log over exposure window ``[start, end)``."""
        if not (0 <= start < end <= self.exposure):
            raise ValueError(
                f"window [{start}, {end}) outside exposure [0, {self.exposure}]")
        sub = CountingLog(end - start)
        for event in self._events:
            if start <= event.time < end:
                sub.record(CountedEvent(event.category, event.time - start,
                                        event.context))
        return sub

    def stratify_by_context(self, context_exposures: Mapping[str, float],
                            ) -> Dict[str, "CountingLog"]:
        """Split the log per context with caller-declared exposure shares.

        ``context_exposures`` must sum to the total exposure — the caller
        (typically the simulator) knows how operating time divided across
        contexts; the log only knows event stamps.
        """
        total = sum(context_exposures.values())
        if not math.isclose(total, self.exposure, rel_tol=1e-9):
            raise ValueError(
                f"context exposures sum to {total}, log exposure is {self.exposure}")
        strata: Dict[str, CountingLog] = {
            ctx: CountingLog(exp) for ctx, exp in context_exposures.items() if exp > 0}
        for event in self._events:
            if event.context not in strata:
                raise ValueError(
                    f"event context {event.context!r} has no declared exposure")
            log = strata[event.context]
            # Times are re-stamped sequentially within the stratum.
            log.record(CountedEvent(event.category,
                                    min(event.time, log.exposure),
                                    event.context))
        return strata
