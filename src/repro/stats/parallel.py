"""Seed-stable parallel chunk execution.

The fleet-scale Monte-Carlo runs behind every QRN verification argument
(Sec. III / Eq. 1) spend almost all their time resolving independent
encounters — an embarrassingly parallel workload.  This module supplies
the generic machinery the traffic layer builds on:

* :func:`plan_chunks` shards a total exposure into fixed-size chunks.
  The plan depends only on ``(total, chunk_size)`` — *never* on the
  worker count — which is the first leg of the determinism contract.
* :func:`run_chunked` executes one picklable worker per chunk, either
  inline (``workers=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  seeding every chunk from its own ``SeedSequence.spawn`` child (second
  leg: no RNG stream is shared between chunks, so scheduling order
  cannot leak into the draws).
* Results are returned **in chunk-index order** regardless of completion
  order (third leg: the caller's merge folds a fixed sequence).

Together the three legs give the bit-for-bit guarantee the test suite
enforces: ``run_chunked(seed, workers=k)`` is identical for every ``k``.

A :class:`ChunkProgress` callback streams observability (chunks done,
units simulated, the chunk's own result) without perturbing the result —
progress is reported in *completion* order, which is the only
nondeterministic surface and is explicitly excluded from the contract.
"""

from __future__ import annotations

import math
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..obs.session import active_session, maybe_span

__all__ = ["Chunk", "ChunkProgress", "plan_chunks", "run_chunked",
           "default_worker_count"]


@dataclass(frozen=True)
class Chunk:
    """One shard of the total exposure.

    ``start`` is the chunk's offset on the global timeline (so workers
    can stamp absolute event times) and ``size`` its extent, both in the
    caller's exposure units (hours, for the traffic layer).
    """

    index: int
    start: float
    size: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("chunk index must be >= 0")
        if self.start < 0 or not math.isfinite(self.start):
            raise ValueError("chunk start must be finite and >= 0")
        if self.size <= 0 or not math.isfinite(self.size):
            raise ValueError("chunk size must be positive and finite")


@dataclass(frozen=True)
class ChunkProgress:
    """Snapshot handed to the progress callback after each chunk.

    ``units_done``/``units_total`` are in the caller's exposure units.
    ``result`` is the completed chunk's own result so the caller can
    accumulate domain metrics (encounters, incidents, ...) without this
    module knowing about them.
    """

    chunk_index: int
    chunks_done: int
    chunks_total: int
    units_done: float
    units_total: float
    result: Any


def plan_chunks(total: float, chunk_size: float) -> List[Chunk]:
    """Shard ``total`` exposure into chunks of at most ``chunk_size``.

    The plan is a pure function of its arguments — crucially independent
    of worker count — and the final chunk absorbs any remainder, so no
    exposure is dropped or double-counted.  Chunk starts are computed as
    ``index * chunk_size`` (not accumulated) so they carry no summation
    drift.
    """
    if total <= 0 or not math.isfinite(total):
        raise ValueError(f"total exposure must be positive and finite, got {total}")
    if chunk_size <= 0 or not math.isfinite(chunk_size):
        raise ValueError(f"chunk size must be positive and finite, got {chunk_size}")
    chunks: List[Chunk] = []
    index = 0
    while True:
        start = index * chunk_size
        if start >= total:
            break
        chunks.append(Chunk(index=index, start=start,
                            size=min(chunk_size, total - start)))
        index += 1
    return chunks


def default_worker_count(n_chunks: int) -> int:
    """All available cores, capped by the number of chunks."""
    cpus = os.cpu_count() or 1
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    return max(1, min(cpus, n_chunks))


def _chunk_seeds(seed: int, n_chunks: int) -> List[np.random.SeedSequence]:
    """One independent child ``SeedSequence`` per chunk.

    ``SeedSequence.spawn`` is numpy's sanctioned way to mint
    non-overlapping streams; because the spawn count equals the chunk
    count (never the worker count), the streams are identical whatever
    the pool size.
    """
    return list(np.random.SeedSequence(seed).spawn(n_chunks))


def run_chunked(worker: Callable[[Chunk, np.random.SeedSequence], Any],
                chunks: Sequence[Chunk],
                seed: int,
                *,
                workers: Optional[int] = None,
                progress: Optional[Callable[[ChunkProgress], None]] = None,
                ) -> List[Any]:
    """Run ``worker(chunk, seed_sequence)`` for every chunk; results in chunk order.

    ``workers=None`` uses every available core (capped at the chunk
    count); ``workers=1`` runs inline with no executor, but through the
    *same* chunk plan and per-chunk seeding, which is what makes the
    serial and parallel paths bit-for-bit comparable.  ``worker`` must be
    picklable for ``workers > 1`` (a module-level function, optionally
    wrapped in :func:`functools.partial` with picklable arguments).

    The returned list is ordered by ``chunk.index`` no matter which
    worker finished first, so a deterministic merge is simply a fold over
    the return value.

    A raising ``progress`` callback **cannot** corrupt the result: the
    exception is downgraded to a :class:`RuntimeWarning` and execution
    continues — observability failures must never abort a campaign
    (DESIGN §8).
    """
    chunks = list(chunks)
    if not chunks:
        raise ValueError("run_chunked needs at least one chunk")
    indices = [c.index for c in chunks]
    if sorted(indices) != list(range(len(chunks))):
        raise ValueError(f"chunk indices must be 0..n-1, got {sorted(indices)}")
    seeds = _chunk_seeds(seed, len(chunks))
    units_total = math.fsum(c.size for c in chunks)
    if workers is None:
        workers = default_worker_count(len(chunks))
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    session = active_session()
    if session is not None:
        metrics = session.metrics
        gauge = metrics.gauge("parallel.workers")
        gauge.set(max(gauge.value, float(min(workers, len(chunks)))))
        for chunk in chunks:
            metrics.histogram("parallel.chunk_size").observe(chunk.size)

    results: List[Any] = [None] * len(chunks)
    done = 0
    units_done = 0.0

    def _report(chunk: Chunk, result: Any) -> None:
        nonlocal done, units_done
        done += 1
        units_done += chunk.size
        if session is not None:
            session.metrics.counter("parallel.chunks").inc()
        if progress is not None:
            try:
                progress(ChunkProgress(
                    chunk_index=chunk.index, chunks_done=done,
                    chunks_total=len(chunks), units_done=units_done,
                    units_total=units_total, result=result))
            except Exception as exc:  # noqa: BLE001 - observability only
                warnings.warn(
                    f"progress callback raised {type(exc).__name__}: {exc}; "
                    f"continuing (results are unaffected)",
                    RuntimeWarning, stacklevel=3)

    with maybe_span("run_chunked"):
        if workers == 1:
            for chunk in chunks:
                result = worker(chunk, seeds[chunk.index])
                results[chunk.index] = result
                _report(chunk, result)
            return results

        with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks))) as pool:
            future_chunk = {
                pool.submit(worker, chunk, seeds[chunk.index]): chunk
                for chunk in chunks}
            pending = set(future_chunk)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = future_chunk[future]
                    result = future.result()  # re-raises worker exceptions
                    results[chunk.index] = result
                    _report(chunk, result)
    return results
