"""Seed-stable parallel chunk execution with a fault-tolerance layer.

The fleet-scale Monte-Carlo runs behind every QRN verification argument
(Sec. III / Eq. 1) spend almost all their time resolving independent
encounters — an embarrassingly parallel workload.  This module supplies
the generic machinery the traffic layer builds on:

* :func:`plan_chunks` shards a total exposure into fixed-size chunks.
  The plan depends only on ``(total, chunk_size)`` — *never* on the
  worker count — which is the first leg of the determinism contract.
* :func:`run_chunked` executes one picklable worker per chunk, either
  inline (``workers=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  seeding every chunk from its own ``SeedSequence.spawn`` child (second
  leg: no RNG stream is shared between chunks, so scheduling order
  cannot leak into the draws).
* Results are returned **in chunk-index order** regardless of completion
  order (third leg: the caller's merge folds a fixed sequence).

Together the three legs give the bit-for-bit guarantee the test suite
enforces: ``run_chunked(seed, workers=k)`` is identical for every ``k``.

Fault tolerance (DESIGN §9) rides on top without touching the contract:
pass a :class:`~repro.stats.fault_tolerance.RetryPolicy` (or any other
fault-tolerance argument) and the runner gains bounded per-chunk retry
with backoff+jitter from a dedicated non-result RNG, per-chunk timeouts,
``BrokenProcessPool`` recovery (rebuild the pool, resubmit only
unfinished chunks), graceful degradation to inline execution after
repeated pool breakage, validate-then-commit via a caller-supplied
``validator``, and a quarantine list that converts "one poison chunk
aborts everything" into :class:`~repro.stats.fault_tolerance.CampaignPartialFailure`
carrying every completed result.  A retried chunk re-runs from the
*same* ``SeedSequence`` child, so any mix of faults yields bit-for-bit
identical merged results.

A :class:`ChunkProgress` callback streams observability (chunks done,
units simulated, the chunk's own result) without perturbing the result —
progress is reported in *completion* order, which is the only
nondeterministic surface and is explicitly excluded from the contract.
"""

from __future__ import annotations

import copy
import math
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

import numpy as np

from ..obs.events import journal_event
from ..obs.session import active_session, maybe_span
from .fault_tolerance import (CampaignPartialFailure, ChunkFailure,
                              RetryPolicy, journal_chunk_failure)

__all__ = ["Chunk", "ChunkProgress", "plan_chunks", "run_chunked",
           "default_worker_count"]

_SLIVER_REL_TOL = 1e-9
"""A planned final chunk smaller than ``chunk_size * _SLIVER_REL_TOL``
is a floating-point residue of ``index * chunk_size`` rounding (e.g.
``plan_chunks(2.1, 0.7)`` would otherwise emit a fourth chunk of
~4.4e-16 h), not exposure anyone asked for — the previous chunk absorbs
it instead."""

_MIN_POLL_S = 0.01
"""Lower bound on the pool wait() timeout so deadline polling cannot
busy-spin."""


@dataclass(frozen=True)
class Chunk:
    """One shard of the total exposure.

    ``start`` is the chunk's offset on the global timeline (so workers
    can stamp absolute event times) and ``size`` its extent, both in the
    caller's exposure units (hours, for the traffic layer).
    """

    index: int
    start: float
    size: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("chunk index must be >= 0")
        if self.start < 0 or not math.isfinite(self.start):
            raise ValueError("chunk start must be finite and >= 0")
        if self.size <= 0 or not math.isfinite(self.size):
            raise ValueError("chunk size must be positive and finite")


@dataclass(frozen=True)
class ChunkProgress:
    """Snapshot handed to the progress callback after each chunk.

    ``units_done``/``units_total`` are in the caller's exposure units.
    ``result`` is the completed chunk's own result so the caller can
    accumulate domain metrics (encounters, incidents, ...) without this
    module knowing about them.

    On a checkpoint resume, ``chunks_resumed``/``units_resumed`` carry
    the work restored from the checkpoint, and ``chunks_done``/
    ``units_done`` count the *whole campaign* (restored + this process)
    — so rate/ETA displays can subtract the baseline while completion
    fractions stay honest.
    """

    chunk_index: int
    chunks_done: int
    chunks_total: int
    units_done: float
    units_total: float
    result: Any
    chunks_resumed: int = 0
    units_resumed: float = 0.0


def plan_chunks(total: float, chunk_size: float) -> List[Chunk]:
    """Shard ``total`` exposure into chunks of at most ``chunk_size``.

    The plan is a pure function of its arguments — crucially independent
    of worker count — and the final chunk absorbs any remainder, so no
    exposure is dropped or double-counted.  Chunk starts are computed as
    ``index * chunk_size`` (not accumulated) so they carry no summation
    drift.

    Float edge case: when ``total`` is an exact multiple of
    ``chunk_size`` *in real arithmetic* but not representable exactly
    (``total = 2.1``, ``chunk_size = 0.7``), ``index * chunk_size`` for
    the last index can land one ulp below ``total`` and a sliver chunk of
    ~1e-16 would appear.  Any residue below ``chunk_size * 1e-9`` is
    absorbed into the preceding chunk instead — such a chunk is pure
    rounding noise, never planned exposure.
    """
    if total <= 0 or not math.isfinite(total):
        raise ValueError(f"total exposure must be positive and finite, got {total}")
    if chunk_size <= 0 or not math.isfinite(chunk_size):
        raise ValueError(f"chunk size must be positive and finite, got {chunk_size}")
    sliver = chunk_size * _SLIVER_REL_TOL
    chunks: List[Chunk] = []
    index = 0
    while True:
        start = index * chunk_size
        remaining = total - start
        if remaining <= sliver:  # done, or the residue is rounding noise
            break
        size = min(chunk_size, remaining)
        residue_after = total - (index + 1) * chunk_size
        if 0.0 < residue_after <= sliver:
            size = remaining  # absorb the float sliver into this chunk
        chunks.append(Chunk(index=index, start=start, size=size))
        index += 1
    return chunks


def default_worker_count(n_chunks: int) -> int:
    """All available cores, capped by the number of chunks."""
    cpus = os.cpu_count() or 1
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    return max(1, min(cpus, n_chunks))


def _chunk_seeds(seed: int, n_chunks: int) -> List[np.random.SeedSequence]:
    """One independent child ``SeedSequence`` per chunk.

    ``SeedSequence.spawn`` is numpy's sanctioned way to mint
    non-overlapping streams; because the spawn count equals the chunk
    count (never the worker count), the streams are identical whatever
    the pool size.  On a resume the spawn still covers *every* chunk —
    restored chunks simply skip execution — so the missing chunks draw
    from exactly the streams an uninterrupted run would have used.
    """
    return list(np.random.SeedSequence(seed).spawn(n_chunks))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly tear down a pool whose workers may be hung.

    ``shutdown(cancel_futures=True)`` alone never preempts a *running*
    worker, so a hung chunk would wedge the campaign forever; SIGTERM to
    the worker processes is the only reclamation path.  Reaching for the
    private ``_processes`` map is deliberate and guarded — if the
    attribute moves, we degrade to a plain shutdown (and the per-chunk
    deadline still fires on the rebuilt pool's chunks).
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - best-effort teardown
        pass


class _ResilientRun:
    """State machine for the fault-tolerant execution path.

    One instance per :func:`run_chunked` call.  The determinism story is
    carried entirely by what this class does *not* do: it never touches
    the per-chunk seed list, commits each chunk exactly once (first
    validated result wins; a result harvested after its chunk was
    already failed-and-requeued is discarded), and merges nothing itself
    — the ordered ``results`` list is the only output.
    """

    def __init__(self, *, worker: Callable[[Chunk, np.random.SeedSequence], Any],
                 chunks: Sequence[Chunk],
                 seeds: Sequence[np.random.SeedSequence],
                 seed: int,
                 workers: int,
                 retry: RetryPolicy,
                 validator: Optional[Callable[[Chunk, Any], Optional[str]]],
                 on_commit: Optional[Callable[[Chunk, Any], None]],
                 report: Callable[[Chunk, Any], None],
                 completed: Mapping[int, Any],
                 failure_sink: Optional[List[ChunkFailure]],
                 unpack: Optional[Callable[[Any], Any]] = None):
        self.worker = worker
        self.chunks = list(chunks)
        self.seeds = list(seeds)
        self.workers = workers
        self.retry = retry
        self.validator = validator
        self.on_commit = on_commit
        self.report = report
        self.failure_sink = failure_sink
        self.unpack = unpack
        self.backoff_rng = retry.rng(seed)

        self.results: List[Any] = [None] * len(self.chunks)
        self.committed: Dict[int, bool] = {}
        for index, value in completed.items():
            self.results[index] = value
            self.committed[index] = True
        self.todo: List[Chunk] = [c for c in self.chunks
                                  if c.index not in self.committed]
        self.delayed: List[Tuple[float, Chunk]] = []
        self.failures: List[ChunkFailure] = []
        self.failure_counts: Dict[int, int] = {}
        self.quarantined: List[int] = []
        self.pool_rebuilds = 0
        self.degraded = False

    # -- bookkeeping ------------------------------------------------------

    def _metrics(self):
        session = active_session()
        return None if session is None else session.metrics

    def _commit(self, chunk: Chunk, result: Any) -> None:
        self.results[chunk.index] = result
        self.committed[chunk.index] = True
        # Persist before reporting: a KeyboardInterrupt raised from the
        # progress callback (or a kill landing between the two) must
        # leave this chunk banked in the checkpoint.
        if self.on_commit is not None:
            try:
                self.on_commit(chunk, result)
            except Exception as exc:  # noqa: BLE001 - persistence is best-effort
                warnings.warn(
                    f"on_commit callback raised {type(exc).__name__}: {exc}; "
                    f"continuing (results are unaffected, but the "
                    f"checkpoint may be stale)",
                    RuntimeWarning, stacklevel=4)
        self.report(chunk, result)

    def _record_failure(self, chunk: Chunk, kind: str, message: str,
                        ) -> Optional[float]:
        """Log one failure; return the retry backoff delay, or ``None``
        if the chunk just exhausted its attempts and was quarantined."""
        count = self.failure_counts.get(chunk.index, 0) + 1
        self.failure_counts[chunk.index] = count
        failure = ChunkFailure(chunk_index=chunk.index, attempt=count,
                               kind=kind, message=message)
        self.failures.append(failure)
        if self.failure_sink is not None:
            self.failure_sink.append(failure)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("parallel.failures").inc()
            if kind == "timeout":
                metrics.counter("parallel.timeouts").inc()
            elif kind == "invalid":
                metrics.counter("parallel.validation_failures").inc()
        warnings.warn(
            f"chunk {chunk.index} failed (attempt {count}/"
            f"{self.retry.max_attempts}, kind={kind}): {message}",
            RuntimeWarning, stacklevel=5)
        if count >= self.retry.max_attempts:
            self.quarantined.append(chunk.index)
            if metrics is not None:
                metrics.counter("parallel.quarantined").inc()
            journal_chunk_failure(failure, quarantined=True)
            return None
        if metrics is not None:
            metrics.counter("parallel.retries").inc()
        backoff = self.retry.backoff_s(count, self.backoff_rng)
        journal_chunk_failure(failure, quarantined=False, backoff_s=backoff)
        return backoff

    def _schedule_retry(self, chunk: Chunk, delay: float) -> None:
        self.delayed.append((time.monotonic() + delay, chunk))

    def _unpack(self, result: Any) -> Any:
        """Rehydrate one raw worker output on the coordinator.

        The transport seam: a caller-supplied ``unpack`` converts what
        actually crossed the process boundary (e.g. a shared-memory
        block handle) back into the domain result *before* validation
        and commit.  It runs inside the same try as the worker call, so
        a failing unpack is an ordinary chunk failure (retried), never
        a crash.
        """
        if self.unpack is None:
            return result
        return self.unpack(result)

    def _drain_discarded(self, future: Any) -> None:
        """Release transport resources of a result we will not use.

        A future that completed after its chunk was already timed out
        still holds the worker's transport payload (e.g. a shm segment
        nobody will ever attach).  Unpacking and dropping the result
        frees those OS resources; the chunk re-runs from its own seed,
        so discarding is free for determinism.
        """
        if self.unpack is None or not future.done():
            return
        try:
            self.unpack(future.result())
        except Exception:  # noqa: BLE001 - best-effort resource release
            pass

    def _validate(self, chunk: Chunk, result: Any) -> Optional[str]:
        if self.validator is None:
            return None
        try:
            return self.validator(chunk, result)
        except Exception as exc:  # noqa: BLE001 - a raising validator rejects
            return (f"validator raised {type(exc).__name__}: {exc}")

    def _handle_outcome(self, chunk: Chunk, result: Any) -> None:
        """Validate-then-commit; a rejected result goes to the retry path."""
        error = self._validate(chunk, result)
        if error is None:
            self._commit(chunk, result)
            return
        delay = self._record_failure(chunk, "invalid", error)
        if delay is not None:
            self._schedule_retry(chunk, delay)

    # -- inline execution -------------------------------------------------

    def _pristine_seed(self, chunk: Chunk) -> np.random.SeedSequence:
        """A fresh copy of the chunk's seed for one execution.

        ``SeedSequence.spawn`` is stateful (``n_children_spawned``
        advances), and workers legitimately spawn sub-streams from their
        chunk seed.  Pool executions are immune because pickling hands
        the worker process a copy; an in-process re-execution after a
        fault would see the advanced state and draw *differently*.
        Copying per execution keeps the stored seed pristine, so a
        retried chunk reproduces the fault-free draws exactly.
        """
        return copy.deepcopy(self.seeds[chunk.index])

    def _run_inline(self, chunk: Chunk) -> None:
        """Execute one chunk to commitment or quarantine, inline.

        Used by the ``workers=1`` path and by degraded mode.  Timeouts
        are not enforceable here (there is no second process to preempt
        a hung call from) — documented in DESIGN §9.
        """
        while True:
            try:
                result = self._unpack(
                    self.worker(chunk, self._pristine_seed(chunk)))
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - retried/quarantined
                delay = self._record_failure(
                    chunk, "exception", f"{type(exc).__name__}: {exc}")
            else:
                error = self._validate(chunk, result)
                if error is None:
                    self._commit(chunk, result)
                    return
                delay = self._record_failure(chunk, "invalid", error)
            if delay is None:
                return  # quarantined
            if delay > 0:
                time.sleep(delay)

    def _execute_inline(self) -> None:
        for chunk in self.todo:
            self._run_inline(chunk)
        self.todo = []

    # -- pool execution ---------------------------------------------------

    def _degrade(self) -> None:
        self.degraded = True
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("parallel.degraded_inline").inc()
        journal_event("pool.degraded", rebuilds=self.pool_rebuilds,
                      max_pool_rebuilds=self.retry.max_pool_rebuilds)
        warnings.warn(
            f"process pool broke {self.pool_rebuilds} time(s), exceeding "
            f"max_pool_rebuilds={self.retry.max_pool_rebuilds}; degrading "
            f"to inline execution for the remaining chunks (results are "
            f"unaffected — same chunk seeds)",
            RuntimeWarning, stacklevel=4)

    def _rebuild_or_degrade(self, pool: ProcessPoolExecutor,
                            max_workers: int) -> Optional[ProcessPoolExecutor]:
        _kill_pool(pool)
        self.pool_rebuilds += 1
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("parallel.pool_rebuilds").inc()
        if self.pool_rebuilds > self.retry.max_pool_rebuilds:
            self._degrade()
            return None
        journal_event("pool.rebuilt", rebuilds=self.pool_rebuilds,
                      max_workers=max_workers)
        return ProcessPoolExecutor(max_workers=max_workers)

    def _execute_pool(self) -> None:
        max_workers = min(self.workers, max(len(self.todo), 1))
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=max_workers)
        # future -> (chunk, deadline | None).  Submission is windowed to
        # at most max_workers in flight so a submitted chunk starts
        # (approximately) immediately and the per-chunk deadline measures
        # execution, not queueing.
        in_flight: Dict[Any, Tuple[Chunk, Optional[float]]] = {}
        try:
            while True:
                if self.degraded:
                    # Remaining work (todo + backoff queue) runs inline.
                    self.todo.extend(chunk for _, chunk in self.delayed)
                    self.delayed = []
                    self.todo.sort(key=lambda c: c.index)
                    self._execute_inline()
                    return
                now = time.monotonic()
                ready = [item for item in self.delayed if item[0] <= now]
                if ready:
                    self.delayed = [item for item in self.delayed
                                    if item[0] > now]
                    self.todo.extend(chunk for _, chunk in ready)
                    self.todo.sort(key=lambda c: c.index)
                while self.todo and len(in_flight) < max_workers:
                    chunk = self.todo.pop(0)
                    deadline = (None if self.retry.timeout_s is None
                                else time.monotonic() + self.retry.timeout_s)
                    try:
                        future = pool.submit(self.worker, chunk,
                                             self._pristine_seed(chunk))
                    except BrokenProcessPool:
                        self.todo.insert(0, chunk)
                        pool = self._handle_pool_breakage(
                            pool, in_flight, max_workers, charge=[])
                        break
                    in_flight[future] = (chunk, deadline)
                if not in_flight:
                    if self.todo:
                        continue  # a submit failed and the pool was rebuilt
                    if self.delayed:
                        next_ready = min(item[0] for item in self.delayed)
                        time.sleep(max(next_ready - time.monotonic(), 0.0))
                        continue
                    return  # everything committed or quarantined
                timeout = None
                deadlines = [dl for _, dl in in_flight.values()
                             if dl is not None]
                if deadlines:
                    timeout = min(deadlines) - time.monotonic()
                if self.delayed:
                    next_ready = min(item[0] for item in self.delayed)
                    until_ready = next_ready - time.monotonic()
                    timeout = (until_ready if timeout is None
                               else min(timeout, until_ready))
                if timeout is not None:
                    timeout = max(timeout, _MIN_POLL_S)
                finished, _ = wait(set(in_flight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                broken: List[Chunk] = []
                for future in finished:
                    chunk, _deadline = in_flight.pop(future)
                    try:
                        result = self._unpack(future.result())
                    except KeyboardInterrupt:  # pragma: no cover - defensive
                        raise
                    except BrokenProcessPool:
                        broken.append(chunk)
                    except Exception as exc:  # noqa: BLE001 - retried
                        delay = self._record_failure(
                            chunk, "exception",
                            f"{type(exc).__name__}: {exc}")
                        if delay is not None:
                            self._schedule_retry(chunk, delay)
                    else:
                        self._handle_outcome(chunk, result)
                if broken:
                    pool = self._handle_pool_breakage(
                        pool, in_flight, max_workers, charge=broken)
                    if pool is None and not self.degraded:
                        return
                    continue
                if self.retry.timeout_s is not None and in_flight:
                    now = time.monotonic()
                    overdue = [(future, chunk)
                               for future, (chunk, deadline)
                               in in_flight.items()
                               if deadline is not None and now >= deadline]
                    if overdue:
                        pool = self._handle_timeouts(
                            pool, in_flight, max_workers, overdue)
        except KeyboardInterrupt:
            # Cancel what never started, kill what is running, and let
            # the caller (CLI) report the checkpoint state — committed
            # chunks were already persisted via on_commit.
            if pool is not None:
                _kill_pool(pool)
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _handle_pool_breakage(self, pool: ProcessPoolExecutor,
                              in_flight: Dict[Any, Tuple[Chunk, Optional[float]]],
                              max_workers: int,
                              charge: Sequence[Chunk],
                              ) -> Optional[ProcessPoolExecutor]:
        """A worker process died.  Charge the chunks whose futures raised
        ``BrokenProcessPool`` one failure each (the dead process cannot be
        attributed more precisely), requeue every other in-flight chunk
        for free, and rebuild the pool — or degrade to inline."""
        for chunk in charge:
            delay = self._record_failure(
                chunk, "pool_broken",
                "process pool broke while this chunk was in flight")
            if delay is not None:
                self._schedule_retry(chunk, delay)
        survivors = [chunk for chunk, _ in in_flight.values()]
        in_flight.clear()
        self.todo.extend(survivors)
        self.todo.sort(key=lambda c: c.index)
        return self._rebuild_or_degrade(pool, max_workers)

    def _handle_timeouts(self, pool: ProcessPoolExecutor,
                         in_flight: Dict[Any, Tuple[Chunk, Optional[float]]],
                         max_workers: int,
                         overdue: Sequence[Tuple[Any, Chunk]],
                         ) -> Optional[ProcessPoolExecutor]:
        """Chunks blew their deadline: the pool is presumed hung.

        Overdue chunks are charged a ``timeout`` failure; other in-flight
        chunks are collateral of the pool teardown and requeue for free
        (no attempt consumed).  A result that raced past the deadline is
        discarded — its chunk re-runs from the same seed, so the merged
        result is unchanged either way."""
        overdue_futures = {future for future, _ in overdue}
        for future, chunk in overdue:
            in_flight.pop(future, None)
            self._drain_discarded(future)
            delay = self._record_failure(
                chunk, "timeout",
                f"chunk exceeded timeout_s={self.retry.timeout_s:g}s; "
                f"its pool was torn down")
            if delay is not None:
                self._schedule_retry(chunk, delay)
        survivors = [chunk for future, (chunk, _) in list(in_flight.items())
                     if future not in overdue_futures]
        in_flight.clear()
        self.todo.extend(survivors)
        self.todo.sort(key=lambda c: c.index)
        return self._rebuild_or_degrade(pool, max_workers)

    # -- entry point ------------------------------------------------------

    def execute(self) -> List[Any]:
        if self.workers == 1:
            self._execute_inline()
        else:
            self._execute_pool()
        if self.quarantined:
            raise CampaignPartialFailure(
                completed={index: self.results[index]
                           for index in sorted(self.committed)},
                failures=self.failures,
                quarantined=tuple(self.quarantined),
                chunks_total=len(self.chunks))
        return self.results


def run_chunked(worker: Callable[[Chunk, np.random.SeedSequence], Any],
                chunks: Sequence[Chunk],
                seed: int,
                *,
                workers: Optional[int] = None,
                progress: Optional[Callable[[ChunkProgress], None]] = None,
                retry: Optional[RetryPolicy] = None,
                validator: Optional[Callable[[Chunk, Any],
                                             Optional[str]]] = None,
                completed: Optional[Mapping[int, Any]] = None,
                on_commit: Optional[Callable[[Chunk, Any], None]] = None,
                failure_sink: Optional[List[ChunkFailure]] = None,
                unpack: Optional[Callable[[Any], Any]] = None,
                ) -> List[Any]:
    """Run ``worker(chunk, seed_sequence)`` for every chunk; results in chunk order.

    ``workers=None`` uses every available core (capped at the chunk
    count); ``workers=1`` runs inline with no executor, but through the
    *same* chunk plan and per-chunk seeding, which is what makes the
    serial and parallel paths bit-for-bit comparable.  ``worker`` must be
    picklable for ``workers > 1`` (a module-level function, optionally
    wrapped in :func:`functools.partial` with picklable arguments).

    The returned list is ordered by ``chunk.index`` no matter which
    worker finished first, so a deterministic merge is simply a fold over
    the return value.

    Fault tolerance (all optional; supplying any of them enables the
    resilient path, with ``retry`` defaulting to ``RetryPolicy()``):

    * ``retry`` — a :class:`~repro.stats.fault_tolerance.RetryPolicy`:
      bounded per-chunk retries with backoff+jitter from a dedicated
      non-result RNG, per-chunk ``timeout_s`` (pool path only),
      ``BrokenProcessPool`` recovery and degradation to inline execution
      after ``max_pool_rebuilds`` pool breakages.  Chunks that exhaust
      their attempts are quarantined and the run raises
      :class:`~repro.stats.fault_tolerance.CampaignPartialFailure`
      carrying every completed result and the failure log.
    * ``validator`` — ``validator(chunk, result)`` returns an error
      string to *reject* the result (``None`` accepts).  Rejected
      results are failures of kind ``invalid`` and go through the retry
      path; only validated results are committed (merged, reported,
      checkpointed).
    * ``completed`` — ``{chunk_index: result}`` restored from a
      checkpoint: those chunks are not re-executed, but still occupy
      their slot in the ordered return value, and progress totals start
      from them.
    * ``on_commit`` — called ``(chunk, result)`` once per *committed*
      chunk (checkpoint persistence hook); exceptions are downgraded to
      :class:`RuntimeWarning`.
    * ``failure_sink`` — a caller-owned list every
      :class:`~repro.stats.fault_tolerance.ChunkFailure` is appended to,
      so recovered (non-fatal) faults remain auditable in manifests.

    ``unpack`` is orthogonal to fault tolerance (supplying it alone does
    *not* enable the resilient path): ``unpack(raw)`` runs on the
    coordinator for every harvested worker output, before validation and
    commit, converting the transport form (e.g. a shared-memory block
    handle) into the domain result.  On the fault-tolerant path a
    failing ``unpack`` is an ordinary retried chunk failure, and
    transport payloads of discarded (timed-out) results are drained so
    their OS resources are released.

    Without any of these the legacy strict path runs: the first worker
    exception propagates and tears the pool down.  Either way the
    determinism contract holds — a retried chunk re-runs from the same
    ``SeedSequence`` child, and results commit exactly once.

    A raising ``progress`` callback **cannot** corrupt the result: the
    exception is downgraded to a :class:`RuntimeWarning` and execution
    continues — observability failures must never abort a campaign
    (DESIGN §8).  (``KeyboardInterrupt`` is deliberately *not* swallowed
    anywhere: it cancels pending work, tears down the pool and
    propagates, leaving any checkpoint with every committed chunk.)
    """
    chunks = list(chunks)
    if not chunks:
        raise ValueError("run_chunked needs at least one chunk")
    indices = [c.index for c in chunks]
    if sorted(indices) != list(range(len(chunks))):
        raise ValueError(f"chunk indices must be 0..n-1, got {sorted(indices)}")
    completed_map: Dict[int, Any] = dict(completed) if completed else {}
    for index in completed_map:
        if not (0 <= index < len(chunks)):
            raise ValueError(
                f"completed chunk index {index} outside plan 0..{len(chunks) - 1}")
    seeds = _chunk_seeds(seed, len(chunks))
    units_total = math.fsum(c.size for c in chunks)
    if workers is None:
        workers = default_worker_count(len(chunks))
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    fault_tolerant = (retry is not None or validator is not None
                      or completed is not None or on_commit is not None
                      or failure_sink is not None)

    session = active_session()
    if session is not None:
        metrics = session.metrics
        gauge = metrics.gauge("parallel.workers")
        gauge.set(max(gauge.value, float(min(workers, len(chunks)))))
        for chunk in chunks:
            metrics.histogram("parallel.chunk_size").observe(chunk.size)
        if completed_map:
            metrics.counter("parallel.chunks_resumed").inc(len(completed_map))

    by_index = {c.index: c for c in chunks}
    chunks_resumed = len(completed_map)
    units_resumed = math.fsum(by_index[i].size for i in completed_map)
    results: List[Any] = [None] * len(chunks)
    done = chunks_resumed
    units_done = units_resumed

    def _report(chunk: Chunk, result: Any) -> None:
        nonlocal done, units_done
        done += 1
        units_done += chunk.size
        if session is not None:
            session.metrics.counter("parallel.chunks").inc()
        if progress is not None:
            try:
                progress(ChunkProgress(
                    chunk_index=chunk.index, chunks_done=done,
                    chunks_total=len(chunks), units_done=units_done,
                    units_total=units_total, result=result,
                    chunks_resumed=chunks_resumed,
                    units_resumed=units_resumed))
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - observability only
                warnings.warn(
                    f"progress callback raised {type(exc).__name__}: {exc}; "
                    f"continuing (results are unaffected)",
                    RuntimeWarning, stacklevel=3)

    with maybe_span("run_chunked"):
        if fault_tolerant:
            run = _ResilientRun(
                worker=worker, chunks=chunks, seeds=seeds, seed=seed,
                workers=workers,
                retry=retry if retry is not None else RetryPolicy(),
                validator=validator, on_commit=on_commit, report=_report,
                completed=completed_map, failure_sink=failure_sink,
                unpack=unpack)
            return run.execute()

        if workers == 1:
            for chunk in chunks:
                result = worker(chunk, seeds[chunk.index])
                if unpack is not None:
                    result = unpack(result)
                results[chunk.index] = result
                _report(chunk, result)
            return results

        with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks))) as pool:
            future_chunk = {
                pool.submit(worker, chunk, seeds[chunk.index]): chunk
                for chunk in chunks}
            pending = set(future_chunk)
            try:
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        chunk = future_chunk[future]
                        result = future.result()  # re-raises worker exceptions
                        if unpack is not None:
                            result = unpack(result)
                        results[chunk.index] = result
                        _report(chunk, result)
            except KeyboardInterrupt:
                for future in pending:
                    future.cancel()
                _kill_pool(pool)
                raise
    return results
