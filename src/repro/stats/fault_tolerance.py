"""Fault-tolerance policy types for resilient campaign execution.

The QRN's verification argument (Sec. III / Eq. 1) is only as good as
the fleet exposure actually accumulated; at production scale the
campaign engine has to survive worker crashes, hangs and corrupted
chunk outputs the way the paper's ADS is supposed to survive run-time
risk — degrade gracefully, never corrupt the result.  This module holds
the *policy* side of that story; the execution machinery lives in
:func:`repro.stats.parallel.run_chunked`.

Three guarantees frame everything here:

* **Determinism is untouched.**  A retried chunk re-runs from the same
  ``SeedSequence`` child, so any mix of faults and recoveries yields the
  bit-for-bit identical merged result.  The backoff jitter draws from a
  *dedicated* RNG root (:meth:`RetryPolicy.rng`) that shares no entropy
  path with the chunk streams.
* **Validate-then-commit.**  A chunk result only enters the merge after
  the caller's validator accepts it; rejected outputs are failures and
  go through the retry path, never silently into the statistics.
* **No silent data loss.**  When a chunk exhausts its attempts it is
  *quarantined* and the campaign raises
  :class:`CampaignPartialFailure` carrying every completed result plus
  the full failure log — the caller decides whether partial evidence is
  usable, instead of losing everything to ``future.result()`` re-raising.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "FAILURE_KINDS",
    "ChunkFailure",
    "RetryPolicy",
    "CampaignPartialFailure",
    "RETRY_STREAM_TAG",
    "journal_chunk_failure",
]


def journal_chunk_failure(failure: "ChunkFailure", *, quarantined: bool,
                          backoff_s: Optional[float] = None) -> None:
    """Journal one recorded fault into the campaign flight recorder.

    Emits ``chunk.failed`` for the fault itself, then either
    ``chunk.quarantined`` (attempts exhausted) or ``chunk.retry`` (with
    the scheduled backoff).  A no-op without an active journal — the
    same one-global-read guard as the telemetry counters next to it —
    and, like them, pure observation: journaling a fault can never
    change what gets retried.
    """
    from ..obs.events import journal_event  # lazy: keep the policy
    # module import-light (obs pulls in the artifact boundary)
    journal_event("chunk.failed", **failure.to_dict())
    if quarantined:
        journal_event("chunk.quarantined", chunk_index=failure.chunk_index,
                      attempts=failure.attempt, kind=failure.kind)
    elif backoff_s is not None:
        journal_event("chunk.retry", chunk_index=failure.chunk_index,
                      attempt=failure.attempt, backoff_s=float(backoff_s))

FAILURE_KINDS = ("exception", "timeout", "pool_broken", "invalid")
"""The fault taxonomy (DESIGN §9):

* ``exception`` — the worker raised (deterministic bug or transient
  environment error);
* ``timeout`` — the worker exceeded the per-chunk deadline and its pool
  was torn down;
* ``pool_broken`` — the process pool died while the chunk was in
  flight (worker process crash / OOM-kill);
* ``invalid`` — the worker returned, but the chunk validator rejected
  the output (corruption detected before commit).
"""

RETRY_STREAM_TAG = 0x52455452  # ASCII "RETR"
"""Entropy tag mixed into the backoff RNG root so it can never collide
with the per-chunk ``SeedSequence(seed).spawn(...)`` children."""


@dataclass(frozen=True)
class ChunkFailure:
    """One recorded fault: which chunk, which attempt, what went wrong.

    ``attempt`` is 1-based (the first execution is attempt 1), so a
    chunk quarantined under ``max_attempts=3`` logs failures with
    attempts 1, 2 and 3.
    """

    chunk_index: int
    attempt: int
    kind: str
    message: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; "
                f"choose from {FAILURE_KINDS}")
        if self.chunk_index < 0:
            raise ValueError("chunk_index must be >= 0")
        if self.attempt < 1:
            raise ValueError("attempt is 1-based")

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form for manifests' failure logs."""
        return {"chunk_index": self.chunk_index, "attempt": self.attempt,
                "kind": self.kind, "message": self.message}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter, plus pool limits.

    ``max_attempts`` counts *executions* of one chunk (first try
    included); a chunk whose ``max_attempts``-th execution fails is
    quarantined.  ``timeout_s`` is the per-chunk wall-clock deadline
    enforced on the pool path (the inline path cannot preempt a hung
    worker and documents that).  ``max_pool_rebuilds`` bounds how often a
    broken/hung pool is rebuilt before the runner degrades to inline
    execution for the remaining chunks.

    Backoff for attempt *n* (1-based failure count) is
    ``base * factor**(n-1)`` capped at ``max_backoff_s``, plus uniform
    jitter in ``[0, jitter_s)`` drawn from :meth:`rng` — a dedicated
    non-result stream, so fault handling can never perturb the simulated
    draws.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter_s: float = 0.05
    timeout_s: Optional[float] = None
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or not math.isfinite(self.backoff_base_s):
            raise ValueError("backoff_base_s must be finite and >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_s < 0:
            raise ValueError("max_backoff_s must be >= 0")
        if self.jitter_s < 0 or not math.isfinite(self.jitter_s):
            raise ValueError("jitter_s must be finite and >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def rng(self, seed: int) -> np.random.Generator:
        """The dedicated backoff/jitter stream for one campaign.

        Rooted at ``SeedSequence([seed, RETRY_STREAM_TAG])`` — a
        different entropy tuple from the chunk-seeding root
        ``SeedSequence(seed)``, hence provably disjoint from every chunk
        child stream.  Jitter timing is pure scheduling; it can never
        reach the results, but keeping it seeded makes chaos tests
        reproducible end to end.
        """
        return np.random.default_rng(
            np.random.SeedSequence([seed, RETRY_STREAM_TAG]))

    def backoff_s(self, failure_count: int,
                  rng: Optional[np.random.Generator] = None) -> float:
        """Delay before the retry following the ``failure_count``-th failure."""
        if failure_count < 1:
            raise ValueError("failure_count is 1-based")
        delay = min(self.backoff_base_s
                    * self.backoff_factor ** (failure_count - 1),
                    self.max_backoff_s)
        if rng is not None and self.jitter_s > 0:
            delay += float(rng.uniform(0.0, self.jitter_s))
        return delay


class CampaignPartialFailure(RuntimeError):
    """Raised when some chunks were quarantined: partial results survive.

    Unlike the pre-fault-tolerance behaviour (one worker exception threw
    away every completed chunk), this exception *carries* the evidence:

    * ``completed`` — ``{chunk_index: result}`` for every committed
      (validated) chunk;
    * ``failures`` — the full :class:`ChunkFailure` log, every attempt;
    * ``quarantined`` — the indices that exhausted their attempts;
    * ``chunks_total`` — the campaign's chunk count.

    Completed results are exactly what an uninterrupted run would have
    produced for those chunks (same seeds), so they can be merged,
    checkpointed, or combined with a later re-run of the quarantined
    indices.
    """

    def __init__(self, *, completed: Dict[int, Any],
                 failures: List[ChunkFailure],
                 quarantined: Tuple[int, ...],
                 chunks_total: int):
        self.completed = dict(completed)
        self.failures = list(failures)
        self.quarantined = tuple(sorted(quarantined))
        self.chunks_total = chunks_total
        kinds = sorted({f.kind for f in failures})
        super().__init__(
            f"campaign partially failed: {len(self.quarantined)} of "
            f"{chunks_total} chunks quarantined "
            f"(indices {list(self.quarantined)}) after "
            f"{len(self.failures)} recorded failure(s) of kind(s) "
            f"{kinds}; {len(self.completed)} completed chunk result(s) "
            f"are attached")

    def failure_log(self) -> List[Dict[str, object]]:
        """The failure log in plain-JSON form (manifest-ready)."""
        return [f.to_dict() for f in self.failures]
