"""Observability: metrics, spans, budgets, manifests, flight recorder.

This package is the runtime telemetry layer the QRN stack reports
through (ROADMAP: "production-scale stack needs visibility").  All of it
is deliberately RNG-free (DESIGN §8):

* :mod:`~repro.obs.metrics` — Counter / Gauge / Histogram instruments
  in a process-local :class:`MetricsRegistry`; frozen snapshots merge
  associatively across fleet workers.
* :mod:`~repro.obs.tracing` — aggregated wall-clock span trees
  (``with maybe_span("resolve_batch"): ...``), no-op when disabled.
* :mod:`~repro.obs.budget_monitor` — live utilisation of the QRN's
  ``f_I`` / ``f_v`` budgets with exact Poisson confidence intervals.
* :mod:`~repro.obs.manifest` — the :class:`RunManifest` JSON artifact
  a ``--telemetry PATH`` campaign writes.
* :mod:`~repro.obs.events` — the flight recorder's digest-chained
  event journal (``repro.event-log/v1``) and its exact replay.
* :mod:`~repro.obs.status` — the recorder itself plus the atomically
  rewritten live status file ``repro watch`` renders.
* :mod:`~repro.obs.export` — Chrome trace-event and Prometheus text
  exporters for external viewers/scrapers.
* :mod:`~repro.obs.profiling` — per-chunk wall/CPU/RSS gauges folded
  into the ordinary mergeable metrics.

Enable telemetry with :func:`telemetry_session`; hot paths guard on
:func:`active_session` returning ``None`` so the disabled path costs one
module-global read per instrumented call site.  The journal follows the
same discipline via :func:`journal_event` / :func:`active_journal`.
"""

from .budget_monitor import (BudgetMonitor, BudgetUtilisation,
                             BudgetUtilisationReport, classified_counts)
from .events import (EVENT_KINDS, EVENT_LOG_SCHEMA, EventJournal,
                     EventRecord, JournalReplay, active_journal,
                     journal_event, read_journal, recording_journal,
                     replay_journal)
from .export import (chrome_trace_events, chrome_trace_json,
                     prometheus_text, write_chrome_trace, write_prometheus)
from .manifest import (MANIFEST_SCHEMA, RunManifest, build_manifest,
                       collect_versions, git_sha)
from .metrics import (SIZE_BUCKETS, Counter, CounterSnapshot, Gauge,
                      GaugeSnapshot, Histogram, HistogramSnapshot,
                      MetricsRegistry, MetricsSnapshot, ThroughputMeter)
from .profiling import TIME_BUCKETS, profile_chunk, rss_peak_mb
from .session import (NO_OP_SPAN, TelemetrySession, TelemetrySnapshot,
                      active_session, maybe_span, telemetry_session)
from .status import (STATUS_SCHEMA, FlightRecorder, format_bytes,
                     format_duration, read_status, render_status)
from .tracing import SpanNode, Tracer

__all__ = [
    # metrics
    "SIZE_BUCKETS", "Counter", "CounterSnapshot", "Gauge", "GaugeSnapshot",
    "Histogram", "HistogramSnapshot", "MetricsRegistry", "MetricsSnapshot",
    "ThroughputMeter",
    # tracing
    "SpanNode", "Tracer",
    # session
    "NO_OP_SPAN", "TelemetrySession", "TelemetrySnapshot", "active_session",
    "maybe_span", "telemetry_session",
    # budget monitoring
    "BudgetMonitor", "BudgetUtilisation", "BudgetUtilisationReport",
    "classified_counts",
    # manifests
    "MANIFEST_SCHEMA", "RunManifest", "build_manifest", "collect_versions",
    "git_sha",
    # flight recorder: journal
    "EVENT_KINDS", "EVENT_LOG_SCHEMA", "EventJournal", "EventRecord",
    "JournalReplay", "active_journal", "journal_event", "read_journal",
    "recording_journal", "replay_journal",
    # flight recorder: live status
    "STATUS_SCHEMA", "FlightRecorder", "format_bytes", "format_duration",
    "read_status", "render_status",
    # exporters + profiling
    "chrome_trace_events", "chrome_trace_json", "prometheus_text",
    "write_chrome_trace", "write_prometheus",
    "TIME_BUCKETS", "profile_chunk", "rss_peak_mb",
]
