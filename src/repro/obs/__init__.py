"""Observability: metrics, tracing spans, budget monitoring, manifests.

This package is the runtime telemetry layer the QRN stack reports
through (ROADMAP: "production-scale stack needs visibility").  Four
pieces, all deliberately RNG-free (DESIGN §8):

* :mod:`~repro.obs.metrics` — Counter / Gauge / Histogram instruments
  in a process-local :class:`MetricsRegistry`; frozen snapshots merge
  associatively across fleet workers.
* :mod:`~repro.obs.tracing` — aggregated wall-clock span trees
  (``with maybe_span("resolve_batch"): ...``), no-op when disabled.
* :mod:`~repro.obs.budget_monitor` — live utilisation of the QRN's
  ``f_I`` / ``f_v`` budgets with exact Poisson confidence intervals.
* :mod:`~repro.obs.manifest` — the :class:`RunManifest` JSON artifact
  a ``--telemetry PATH`` campaign writes.

Enable telemetry with :func:`telemetry_session`; hot paths guard on
:func:`active_session` returning ``None`` so the disabled path costs one
module-global read per instrumented call site.
"""

from .budget_monitor import (BudgetMonitor, BudgetUtilisation,
                             BudgetUtilisationReport)
from .manifest import (MANIFEST_SCHEMA, RunManifest, build_manifest,
                       collect_versions, git_sha)
from .metrics import (SIZE_BUCKETS, Counter, CounterSnapshot, Gauge,
                      GaugeSnapshot, Histogram, HistogramSnapshot,
                      MetricsRegistry, MetricsSnapshot, ThroughputMeter)
from .session import (NO_OP_SPAN, TelemetrySession, TelemetrySnapshot,
                      active_session, maybe_span, telemetry_session)
from .tracing import SpanNode, Tracer

__all__ = [
    # metrics
    "SIZE_BUCKETS", "Counter", "CounterSnapshot", "Gauge", "GaugeSnapshot",
    "Histogram", "HistogramSnapshot", "MetricsRegistry", "MetricsSnapshot",
    "ThroughputMeter",
    # tracing
    "SpanNode", "Tracer",
    # session
    "NO_OP_SPAN", "TelemetrySession", "TelemetrySnapshot", "active_session",
    "maybe_span", "telemetry_session",
    # budget monitoring
    "BudgetMonitor", "BudgetUtilisation", "BudgetUtilisationReport",
    # manifests
    "MANIFEST_SCHEMA", "RunManifest", "build_manifest", "collect_versions",
    "git_sha",
]
