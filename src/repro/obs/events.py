"""The campaign flight recorder's structured event journal.

A fleet campaign's *final* manifest proves what the run concluded; the
QRN evidence argument (Sec. III / Eq. 1) also needs an auditable record
of how it got there — chunks committed and restored, faults retried,
pools rebuilt, checkpoints flushed, budget verdicts flipping as the CIs
tightened.  This module is that record: a typed, append-only **event
journal** written as digest-chained JSONL through the :mod:`repro.io`
boundary.

Format.  Each line of ``journal.jsonl`` is one complete
``repro.event-log/v1`` artifact envelope (schema tag + payload sha256,
exactly the DESIGN §10 discipline), serialised in canonical compact
form.  Entries are chained: entry *N*'s ``prev`` field must equal entry
*N−1*'s ``payload_sha256`` (``None`` for the genesis entry), and ``seq``
must count 0,1,2,…  Any truncation, reorder, edit, or splice therefore
fails :func:`read_journal` with a typed
:class:`~repro.errors.CorruptArtifactError` — the journal is
tamper-evident end to end, including across a kill-and-resume that
reopens the same file.

Emission.  Hot paths mirror the :mod:`~repro.obs.session` telemetry
pattern exactly: :func:`journal_event` reads one module global and
returns immediately when no journal is installed (benchmarked in
``benchmarks/bench_observer_overhead.py``), so campaigns without a
flight recorder pay one attribute load + ``None`` check per emission
site — and emission sites sit at chunk/campaign granularity, never per
encounter.  Nothing here reads or advances an RNG stream (DESIGN §8):
the golden pins run bit-for-bit with the recorder on and off.

Replay.  :func:`replay_journal` folds a verified journal back into the
campaign's counters and per-chunk classified counts; feeding those
through a fresh :class:`~repro.obs.budget_monitor.BudgetMonitor`
reproduces the run manifest's budget-utilisation table *exactly* —
integer counts sum exactly and exposure parts pool through ``math.fsum``
(order-independent correctly-rounded sums), the same discipline as
:meth:`SimulationResult.merge_many`.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import (Callable, ClassVar, Dict, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from ..errors import CorruptArtifactError
from ..io.artifact import (ARTIFACTS, DIGEST_KEY, ArtifactSchema,
                           parse_artifact_text, register_artifact)
from ..io.validate import Int, Json, MapOf, NullOr, Record, Str

__all__ = ["EVENT_LOG_SCHEMA", "EVENT_LOG_SCHEMA_NAME", "EVENT_KINDS",
           "EventRecord", "EventJournal", "read_journal",
           "read_chained_journal", "replay_journal", "JournalReplay",
           "journal_event", "active_journal", "recording_journal",
           "JournalScan", "scan_journal", "repair_journal_tail"]

EVENT_LOG_SCHEMA_NAME = "repro.event-log"
EVENT_LOG_SCHEMA = f"{EVENT_LOG_SCHEMA_NAME}/v1"

EVENT_KINDS = (
    # campaign lifecycle
    "campaign.started", "campaign.resumed", "campaign.finished",
    "campaign.failed",
    # chunk lifecycle (committed = executed this run; restored = banked
    # in a checkpoint by an earlier run and fed back on resume)
    "chunk.committed", "chunk.restored",
    # fault-tolerance path (DESIGN §9)
    "chunk.failed", "chunk.retry", "chunk.quarantined",
    "pool.rebuilt", "pool.degraded",
    # persistence + verdict evolution
    "checkpoint.committed", "budget.verdict",
    # rare-event accelerator alarms (DESIGN §11)
    "degeneracy.alarm",
)
"""The closed event taxonomy.  ``EventRecord`` rejects anything else —
an unknown kind in a journal file is corruption, not forward compat.
Chained journals with a *different* taxonomy (the campaign service's
``repro.service-journal/v1``) subclass :class:`EventRecord` and override
``KINDS`` — the chain discipline is shared, the vocabulary is not."""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat()


@dataclass(frozen=True)
class EventRecord:
    """One journal entry: position in the chain + typed event payload.

    ``seq`` is the 0-based position, ``prev`` the previous entry's
    payload digest (``None`` at genesis) — together they make the file
    an append-only hash chain.  ``data`` carries the kind-specific
    payload (chunk index, counts, failure details, …) as plain JSON.
    """

    KINDS: ClassVar[Tuple[str, ...]] = EVENT_KINDS

    seq: int
    ts_utc: str
    kind: str
    data: Dict[str, object] = field(default_factory=dict)
    prev: Optional[str] = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"event seq must be >= 0, got {self.seq}")
        if self.kind not in type(self).KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{type(self).KINDS}")

    def to_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "ts_utc": self.ts_utc, "kind": self.kind,
                "data": dict(self.data), "prev": self.prev}


# -- reading + chain verification -----------------------------------------

def _chain_error(path: object, lineno: int, message: str, *,
                 schema: str = EVENT_LOG_SCHEMA) -> CorruptArtifactError:
    return CorruptArtifactError(
        f"event journal chain broken at line {lineno}: {message}",
        source=path, schema=schema)


def _iter_journal_lines(path: Path, *,
                        schema: str = EVENT_LOG_SCHEMA,
                        ) -> Iterator[Tuple[int, str]]:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise CorruptArtifactError(
            f"cannot read event journal: {exc.strerror or exc}",
            source=path, schema=schema) from exc
    except UnicodeDecodeError as exc:
        raise CorruptArtifactError(
            f"event journal is not valid UTF-8: {exc}",
            source=path, schema=schema) from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.strip():
            yield lineno, line


def read_chained_journal(path: Union[str, Path], *,
                         schema_name: str = EVENT_LOG_SCHEMA_NAME,
                         ) -> Tuple[List[EventRecord], Optional[str]]:
    """Read + verify one digest-chained journal file end to end.

    Returns ``(records, head_digest)`` where ``head_digest`` is the last
    entry's payload sha256 (``None`` for an empty journal) — exactly
    what an appender needs to continue the chain.  Every line is loaded
    through the artifact boundary (digest + spec + typed errors) against
    ``schema_name``, then the chain itself is checked: contiguous
    ``seq`` from 0 and each ``prev`` equal to the previous entry's
    digest.  All failures are typed
    :class:`~repro.errors.ArtifactError` subclasses.
    """
    schema_tag = f"{schema_name}/v{ARTIFACTS.get(schema_name).version}"
    records: List[EventRecord] = []
    head: Optional[str] = None
    for lineno, line in _iter_journal_lines(Path(path), schema=schema_tag):
        source = f"{path}:{lineno}"
        envelope = parse_artifact_text(line, source=source)
        record = ARTIFACTS.load_dict(envelope, schema_name, source=source)
        assert isinstance(record, EventRecord)
        digest = envelope.get(DIGEST_KEY) if isinstance(envelope, dict) \
            else None
        if not isinstance(digest, str):
            raise _chain_error(path, lineno, "entry carries no payload "
                              "digest (chain link missing)",
                              schema=schema_tag)
        if record.seq != len(records):
            raise _chain_error(
                path, lineno, f"expected seq {len(records)}, found "
                f"{record.seq} (entries dropped, duplicated or reordered)",
                schema=schema_tag)
        if record.prev != head:
            raise _chain_error(
                path, lineno, f"prev digest {record.prev!r} does not match "
                f"the preceding entry's digest {head!r}", schema=schema_tag)
        records.append(record)
        head = digest
    return records, head


def read_journal(path: Union[str, Path],
                 ) -> Tuple[List[EventRecord], Optional[str]]:
    """Read + verify one flight-recorder journal (``repro.event-log/v1``).

    The event-log specialisation of :func:`read_chained_journal` — see
    there for the chain contract.
    """
    return read_chained_journal(path, schema_name=EVENT_LOG_SCHEMA_NAME)


# -- damage triage + suffix-cut repair -------------------------------------

@dataclass
class JournalScan:
    """The lenient sibling of :func:`read_chained_journal` (fsck's view).

    ``records`` is the longest valid chain prefix, ``valid_bytes`` the
    byte length of that prefix in the file (truncating to it yields a
    journal the strict reader accepts).  ``damage`` describes the first
    failure past the prefix (``None`` when the whole file verifies), and
    ``torn_tail`` says whether that damage is *provably* un-acknowledged
    residue: nothing after the valid prefix parses as a complete signed
    envelope, so the damage can only be the torn final append of a
    crashed writer — cutting it loses no committed entry.  Interior
    damage (a valid-looking envelope exists past the break) is NOT a
    torn tail: cutting there would discard committed audit data, so
    repair must quarantine instead.
    """

    path: Path
    schema_name: str
    records: List[EventRecord]
    head: Optional[str]
    valid_bytes: int
    total_bytes: int
    damage: Optional[str] = None
    damage_lineno: Optional[int] = None
    torn_tail: bool = False

    @property
    def clean(self) -> bool:
        return self.damage is None


def scan_journal(path: Union[str, Path], *,
                 schema_name: str = EVENT_LOG_SCHEMA_NAME) -> JournalScan:
    """Triage one chained journal file without raising on damage.

    Walks the file byte-accurately: each newline-terminated line (plus a
    possible unterminated final fragment) is verified exactly as
    :func:`read_chained_journal` would — envelope parse, schema load,
    digest, ``seq`` contiguity, ``prev`` linkage.  The walk stops at the
    first failure and then classifies it (see :class:`JournalScan`).
    An unreadable file reports 0 valid bytes with the read error as
    damage.
    """
    path = Path(path)
    schema_tag = f"{schema_name}/v{ARTIFACTS.get(schema_name).version}"
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return JournalScan(path=path, schema_name=schema_name, records=[],
                           head=None, valid_bytes=0, total_bytes=0,
                           damage=f"cannot read journal: "
                                  f"{exc.strerror or exc}")

    # Split into (line_bytes, end_offset) pairs; the final fragment (no
    # trailing newline) is included — a complete valid envelope there is
    # accepted, matching the strict reader's splitlines behaviour.
    pieces: List[Tuple[bytes, int]] = []
    start = 0
    while start < len(raw):
        newline = raw.find(b"\n", start)
        if newline < 0:
            pieces.append((raw[start:], len(raw)))
            break
        pieces.append((raw[start:newline], newline + 1))
        start = newline + 1

    def _verify(line: str, lineno: int, expect_seq: int,
                expect_prev: Optional[str]) -> Tuple[EventRecord, str]:
        source = f"{path}:{lineno}"
        envelope = parse_artifact_text(line, source=source)
        record = ARTIFACTS.load_dict(envelope, schema_name, source=source)
        assert isinstance(record, EventRecord)
        digest = envelope.get(DIGEST_KEY) if isinstance(envelope, dict) \
            else None
        if not isinstance(digest, str):
            raise _chain_error(path, lineno, "entry carries no payload "
                              "digest (chain link missing)",
                              schema=schema_tag)
        if record.seq != expect_seq:
            raise _chain_error(
                path, lineno, f"expected seq {expect_seq}, found "
                f"{record.seq}", schema=schema_tag)
        if record.prev != expect_prev:
            raise _chain_error(
                path, lineno, f"prev digest {record.prev!r} does not "
                f"match the preceding entry's digest {expect_prev!r}",
                schema=schema_tag)
        return record, digest

    records: List[EventRecord] = []
    head: Optional[str] = None
    valid_bytes = 0
    damage: Optional[str] = None
    damage_lineno: Optional[int] = None
    damage_index: Optional[int] = None
    for index, (line_bytes, end_offset) in enumerate(pieces):
        lineno = index + 1
        try:
            line = line_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            damage = f"line {lineno} is not valid UTF-8: {exc}"
            damage_lineno, damage_index = lineno, index
            break
        if not line.strip():
            valid_bytes = end_offset  # blank lines are chain-neutral
            continue
        try:
            record, digest = _verify(line, lineno, len(records), head)
        except (CorruptArtifactError, ValueError) as exc:
            damage = str(exc)
            damage_lineno, damage_index = lineno, index
            break
        records.append(record)
        head = digest
        valid_bytes = end_offset

    torn_tail = False
    if damage is not None:
        assert damage_index is not None
        torn_tail = not any(
            _parses_as_envelope(line_bytes, schema_name)
            for line_bytes, _ in pieces[damage_index + 1:])
    return JournalScan(path=path, schema_name=schema_name, records=records,
                       head=head, valid_bytes=valid_bytes,
                       total_bytes=len(raw), damage=damage,
                       damage_lineno=damage_lineno, torn_tail=torn_tail)


def _parses_as_envelope(line_bytes: bytes, schema_name: str) -> bool:
    """Does this line alone verify as a complete signed entry?

    Used by :func:`scan_journal` to distinguish a torn tail (nothing
    committed lies past the break) from interior damage (it does).
    Chain linkage is deliberately not checked — a committed entry past a
    garbled line still chains to the *damaged* entry's digest, which can
    no longer be verified.
    """
    try:
        line = line_bytes.decode("utf-8")
        if not line.strip():
            return False
        envelope = parse_artifact_text(line)
        ARTIFACTS.load_dict(envelope, schema_name)
        return isinstance(envelope, dict) \
            and isinstance(envelope.get(DIGEST_KEY), str)
    except (CorruptArtifactError, ValueError):
        return False


def repair_journal_tail(path: Union[str, Path], *,
                        schema_name: str = EVENT_LOG_SCHEMA_NAME,
                        ) -> JournalScan:
    """Suffix-cut a torn journal tail in place (the provably-safe repair).

    Returns the post-repair scan.  A clean journal is returned
    untouched; a torn tail (see :class:`JournalScan`) is truncated back
    to the valid prefix and fsync'd.  Interior damage raises
    :class:`~repro.errors.CorruptArtifactError` — discarding committed
    entries is never safe, the caller must quarantine the file.

    Safety argument: every entry in the valid prefix was fully written
    and verifies; everything past it parses as no complete envelope, so
    it can only be the partial final append of a writer that died
    mid-``write`` — an append whose :meth:`EventJournal.emit` never
    returned, hence was never acknowledged to any caller.
    """
    scan = scan_journal(path, schema_name=schema_name)
    if scan.clean:
        return scan
    if not scan.torn_tail:
        raise CorruptArtifactError(
            f"journal damage at line {scan.damage_lineno} is not a torn "
            f"tail (committed entries exist past the break): "
            f"{scan.damage}", source=path,
            schema=f"{schema_name}/v{ARTIFACTS.get(schema_name).version}")
    with open(scan.path, "r+b") as handle:
        handle.truncate(scan.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return scan_journal(path, schema_name=schema_name)


# -- the append-only writer ------------------------------------------------

class EventJournal:
    """Append-only, digest-chained journal writer.

    Open with :meth:`open` (``resume=True`` verifies an existing file
    and continues its chain — the same same-path discipline as
    ``--checkpoint``/``--resume``).  Every :meth:`emit` writes one fully
    signed envelope line and flushes, so a kill at any instant leaves a
    valid (merely shorter) chain.  The journal is coordinator-local:
    entries emitted from a forked worker process are refused (the pid
    guard), keeping the chain single-writer by construction.

    Subclasses may override ``SCHEMA_NAME`` and ``RECORD_TYPE`` to chain
    a different closed event taxonomy under a different artifact schema
    (the campaign service's :class:`~repro.service.journal.ServiceJournal`
    does exactly this); the append/verify machinery is shared.
    """

    SCHEMA_NAME: ClassVar[str] = EVENT_LOG_SCHEMA_NAME
    RECORD_TYPE: ClassVar[type] = EventRecord

    def __init__(self, path: Path, handle, seq: int,
                 head: Optional[str]) -> None:
        self._path = Path(path)
        self._handle = handle
        self._seq = seq
        self._head = head
        self._pid = os.getpid()
        self._poisoned = False
        self._observers: List[Callable[[EventRecord], None]] = []

    @classmethod
    def open(cls, path: Union[str, Path], *,
             resume: bool = False) -> "EventJournal":
        path = Path(path)
        seq, head = 0, None
        if path.exists():
            if not resume:
                raise FileExistsError(
                    f"event journal {path} already exists; pass "
                    f"resume=True (CLI: --resume) to continue its chain, "
                    f"or remove it to start over")
            records, head = read_chained_journal(
                path, schema_name=cls.SCHEMA_NAME)
            seq = len(records)
            # A crash can tear off the final line's newline terminator
            # while leaving the entry itself complete (the strict read
            # above accepted it).  Restore the terminator before
            # appending, or the next entry would concatenate onto the
            # last one and corrupt the chain.
            raw = path.read_bytes()
            if raw and not raw.endswith(b"\n"):
                with path.open("ab") as tail:
                    tail.write(b"\n")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("a", encoding="utf-8")
        return cls(path, handle, seq, head)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def seq(self) -> int:
        """The next entry's sequence number."""
        return self._seq

    @property
    def head(self) -> Optional[str]:
        """The last written entry's payload digest (``None`` if empty)."""
        return self._head

    @property
    def pid(self) -> int:
        return self._pid

    def add_observer(self, observer: Callable[[EventRecord], None]) -> None:
        """Call ``observer(record)`` after every successful append (the
        flight recorder's live-status hook)."""
        self._observers.append(observer)

    def emit(self, kind: str,
             data: Optional[Mapping[str, object]] = None) -> EventRecord:
        """Append one event and advance the chain.

        A failed append **poisons** the journal: the handle is closed
        and every later :meth:`emit` raises.  This is deliberate — after
        a torn or errored write the file may end in a damaged fragment,
        and appending past it would turn a provably-safe suffix cut
        (``repro fsck`` truncates the torn tail) into unrepairable
        interior damage.  The chain state (``seq``/``head``) is never
        advanced on failure.
        """
        from ..testing.chaos import fs_chaos, fs_fault

        if os.getpid() != self._pid:
            raise RuntimeError(
                f"event journal {self._path} crossed a process boundary "
                f"(opened in pid {self._pid}, emit from {os.getpid()}); "
                f"the chain is single-writer")
        if self._handle is None:
            raise ValueError(f"event journal {self._path} is closed"
                             + (" (poisoned by an earlier failed append)"
                                if self._poisoned else ""))
        record = type(self).RECORD_TYPE(
            seq=self._seq, ts_utc=_utc_now(), kind=kind,
            data=dict(data or {}), prev=self._head)
        envelope = ARTIFACTS.dump_dict(type(self).SCHEMA_NAME, record,
                                       source=self._path)
        line = json.dumps(envelope, sort_keys=True,
                          separators=(",", ":")) + "\n"
        point = f"journal-append:{type(self).SCHEMA_NAME}"
        try:
            fault = fs_chaos(point)
            if fault == "enospc":
                raise fs_fault(fault, point)
            if fault == "torn":
                # A prefix of the line lands, then the write errors —
                # the journal now ends in a genuinely torn tail.
                self._handle.write(line[:max(1, len(line) // 2)])
                self._handle.flush()
                raise fs_fault(fault, point)
            self._handle.write(line)
            self._handle.flush()
            if fault in ("eio", "shortfsync"):
                # The line is on disk but the durability step "failed":
                # for ``eio`` the chain must not advance (the caller
                # retries or degrades); the suffix-cut repair handles
                # the maybe-durable last line either way.
                raise fs_fault(fault, point)
        except OSError:
            self._poison()
            raise
        self._head = envelope[DIGEST_KEY]  # type: ignore[assignment]
        self._seq += 1
        for observer in self._observers:
            observer(record)
        return record

    def _poison(self) -> None:
        """Close the handle after a failed append (see :meth:`emit`)."""
        self._poisoned = True
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - double-fault close
                pass
            self._handle = None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# -- the no-op disabled path ----------------------------------------------

_ACTIVE_JOURNAL: Optional[EventJournal] = None


def active_journal() -> Optional[EventJournal]:
    """The installed journal, or ``None`` — the emission-site guard."""
    return _ACTIVE_JOURNAL


def journal_event(kind: str, /, **data: object) -> Optional[EventRecord]:
    """Emit one event iff a journal is installed *in this process*.

    The disabled path is one module-global read and a ``None`` check —
    the exact :func:`~repro.obs.session.active_session` discipline.  In
    a forked worker the inherited journal is silently skipped (pid
    guard), and an emission failure (disk full, closed handle) degrades
    to a ``RuntimeWarning``: observability must never abort a campaign.
    """
    journal = _ACTIVE_JOURNAL
    if journal is None:
        return None
    if os.getpid() != journal.pid:
        return None
    try:
        return journal.emit(kind, data)
    except Exception as exc:  # noqa: BLE001 - recording is best-effort
        warnings.warn(
            f"event journal emit failed ({type(exc).__name__}: {exc}); "
            f"continuing without this entry",
            RuntimeWarning, stacklevel=2)
        return None


@contextmanager
def recording_journal(journal: EventJournal) -> Iterator[EventJournal]:
    """Install ``journal`` as the process-wide emission target.

    Re-entrant like :func:`~repro.obs.session.telemetry_session`: the
    previous journal (if any) is saved and restored, so nested scopes
    compose.  Closing the journal is the caller's business — this only
    manages the module global.
    """
    global _ACTIVE_JOURNAL
    previous = _ACTIVE_JOURNAL
    _ACTIVE_JOURNAL = journal
    try:
        yield journal
    finally:
        _ACTIVE_JOURNAL = previous


# -- replay ----------------------------------------------------------------

@dataclass
class JournalReplay:
    """What a verified journal reconstructs about its campaign.

    ``chunks`` maps chunk index → the *latest* chunk event's data for
    that index (``chunk.committed`` and ``chunk.restored`` carry the
    same counter payload; on a resumed journal the restored re-emission
    simply confirms the earlier commit).  All totals derive from it in
    chunk-index order, so replay is independent of completion order —
    the same invariance the merge contract gives the real campaign.
    """

    campaign: Dict[str, object] = field(default_factory=dict)
    chunks: Dict[int, Dict[str, object]] = field(default_factory=dict)
    failures: List[Dict[str, object]] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    quarantined: List[int] = field(default_factory=list)
    pool_rebuilds: int = 0
    pool_degraded: bool = False
    checkpoint_commits: int = 0
    verdicts: Dict[str, str] = field(default_factory=dict)
    degeneracy_alarms: List[Dict[str, object]] = field(default_factory=list)
    started: int = 0
    resumed: int = 0
    finished: Optional[Dict[str, object]] = None
    failed: Optional[Dict[str, object]] = None

    def _chunk_values(self, key: str) -> List[object]:
        return [self.chunks[index][key] for index in sorted(self.chunks)]

    @property
    def hours(self) -> float:
        """fsum-pooled exposure over all chunks, in index order."""
        return math.fsum(float(v)  # type: ignore[arg-type]
                         for v in self._chunk_values("hours"))

    @property
    def encounters_resolved(self) -> int:
        return sum(int(v) for v in self._chunk_values("encounters"))  # type: ignore[call-overload]

    @property
    def incidents_found(self) -> int:
        return sum(int(v) for v in self._chunk_values("records"))  # type: ignore[call-overload]

    @property
    def collisions(self) -> int:
        return sum(int(v) for v in self._chunk_values("collisions"))  # type: ignore[call-overload]

    @property
    def hard_braking_demands(self) -> int:
        return sum(int(v)  # type: ignore[call-overload]
                   for v in self._chunk_values("hard_braking_demands"))

    def type_counts(self) -> Dict[str, int]:
        """Classified incident counts summed over chunks (exact)."""
        counts: Dict[str, int] = {}
        for index in sorted(self.chunks):
            for type_id, count in dict(
                    self.chunks[index].get("type_counts", {})).items():  # type: ignore[call-overload]
                counts[type_id] = counts.get(type_id, 0) + int(count)  # type: ignore[arg-type]
        return counts

    def budget_report(self, goals, *, confidence: float = 0.95):
        """Rebuild the budget-utilisation table from chunk events alone.

        Feeds each chunk's classified counts + exposure, in index order,
        into a fresh :class:`~repro.obs.budget_monitor.BudgetMonitor`.
        Counts sum exactly and the monitor fsum-pools exposure parts, so
        the result is *bit-for-bit* the table a monitor fed the merged
        campaign in one observation produces — the replay ≡ manifest
        invariant the flight-recorder tests pin.
        """
        from .budget_monitor import BudgetMonitor  # lazy: avoid cycles

        monitor = BudgetMonitor(goals, confidence=confidence)
        for index in sorted(self.chunks):
            data = self.chunks[index]
            monitor.observe_counts(
                {str(k): int(v)  # type: ignore[arg-type]
                 for k, v in dict(data.get("type_counts", {})).items()},  # type: ignore[call-overload]
                float(data["hours"]))  # type: ignore[arg-type]
        return monitor.utilisation()


def replay_journal(events: Union[str, Path, Sequence[EventRecord]],
                   ) -> JournalReplay:
    """Fold a journal (path or pre-read records) into a :class:`JournalReplay`.

    A path is first verified end to end by :func:`read_journal` — a
    broken chain never replays.  Chunk events deduplicate by index with
    the latest occurrence winning, which is what makes a kill-and-resume
    journal (run 1's commits + run 2's restores + run 2's commits)
    replay to exactly one record per chunk.
    """
    if isinstance(events, (str, Path)):
        records, _ = read_journal(events)
    else:
        records = list(events)
    replay = JournalReplay()
    for record in records:
        data = dict(record.data)
        kind = record.kind
        if kind == "campaign.started":
            replay.started += 1
            replay.campaign = data
        elif kind == "campaign.resumed":
            replay.resumed += 1
        elif kind == "campaign.finished":
            replay.finished = data
        elif kind == "campaign.failed":
            replay.failed = data
        elif kind in ("chunk.committed", "chunk.restored"):
            replay.chunks[int(data["chunk_index"])] = data  # type: ignore[arg-type]
        elif kind == "chunk.failed":
            replay.failures.append(data)
            if data.get("kind") == "timeout":
                replay.timeouts += 1
        elif kind == "chunk.retry":
            replay.retries += 1
        elif kind == "chunk.quarantined":
            replay.quarantined.append(int(data["chunk_index"]))  # type: ignore[arg-type]
        elif kind == "pool.rebuilt":
            replay.pool_rebuilds += 1
        elif kind == "pool.degraded":
            replay.pool_degraded = True
        elif kind == "checkpoint.committed":
            replay.checkpoint_commits += 1
        elif kind == "budget.verdict":
            replay.verdicts[str(data["budget_id"])] = str(data["verdict"])
        elif kind == "degeneracy.alarm":
            replay.degeneracy_alarms.append(data)
    return replay


# -- artifact schema registration ------------------------------------------

def _load_event(data: Mapping[str, object]) -> EventRecord:
    return EventRecord(
        seq=int(data["seq"]),  # type: ignore[arg-type]
        ts_utc=str(data["ts_utc"]),
        kind=str(data["kind"]),
        data=dict(data["data"]),  # type: ignore[call-overload]
        prev=(None if data["prev"] is None else str(data["prev"])),
    )


def _example_event() -> EventRecord:
    """A small deterministic entry for the fuzz tier."""
    return EventRecord(
        seq=3, ts_utc="2026-01-01T00:00:00+00:00", kind="chunk.committed",
        data={"chunk_index": 3, "hours": 125.0, "encounters": 1351,
              "records": 21, "collisions": 1, "hard_braking_demands": 1,
              "type_counts": {"I3": 1, "I7": 2}},
        prev="sha256:" + "ab" * 32)


_EVENT_SPEC = Record(required={
    "seq": Int(),
    "ts_utc": Str(),
    "kind": Str(),
    "data": MapOf(Json()),
    "prev": NullOr(Str()),
})

register_artifact(ArtifactSchema(
    name=EVENT_LOG_SCHEMA_NAME,
    version=1,
    spec=_EVENT_SPEC,
    load=_load_event,
    dump=EventRecord.to_dict,
    label="event-log entry",
    example=_example_event,
))
