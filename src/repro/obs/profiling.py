"""Per-chunk resource profiling folded into the mergeable metrics.

The flight recorder's fourth leg: every chunk execution (worker process
*or* inline) records wall time, CPU time, peak RSS and worker
utilisation into its own fresh telemetry session, and the ordinary
chunk-snapshot merge carries them to the coordinator — no side channel,
no new transport.  Gauges merge by maximum (high-water marks survive
any merge order) and histograms by bucket addition, the same
associative discipline as every other instrument (DESIGN §8).

Instruments:

* ``profile.chunk_wall_s`` / ``profile.chunk_cpu_s`` — histograms over
  :data:`TIME_BUCKETS`; their ``sum``/``count`` give campaign-aggregate
  wall/CPU totals and the per-chunk distribution.
* ``profile.chunk_wall_s_max`` / ``profile.chunk_cpu_s_max`` — gauges:
  the slowest chunk's cost, the number a capacity planner wants first.
* ``profile.rss_peak_mb`` — gauge: the worker's peak resident set
  (``getrusage``; absent on platforms without :mod:`resource`).
* ``profile.worker_utilisation`` — gauge: CPU seconds / wall seconds
  for the chunk, ≈1.0 for a compute-bound worker, ≪1 when the chunk
  spent its life blocked.

Timings and memory are observability, never part of a determinism
contract, and nothing here touches an RNG stream: the golden pins hold
bit-for-bit with profiling on (it rides the telemetry flag) and off.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .metrics import MetricsRegistry
from .session import active_session

__all__ = ["TIME_BUCKETS", "profile_chunk", "rss_peak_mb"]

TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0, 600.0)
"""Histogram bounds for per-chunk timings: 1 ms … 10 min, roughly
1–2.5–5 per decade.  Chunks land mid-range on today's hardware; the
tails catch pathological chunks without unbounded buckets."""


def rss_peak_mb() -> Optional[float]:
    """This process's peak resident set size in MiB, or ``None``.

    Uses ``getrusage(RUSAGE_SELF).ru_maxrss`` — kibibytes on Linux,
    bytes on macOS, unavailable (no :mod:`resource` module) on Windows;
    callers must treat ``None`` as "platform cannot say", never 0.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _high_water(registry: MetricsRegistry, name: str, value: float) -> None:
    gauge = registry.gauge(name)
    gauge.set(max(gauge.value, value))


@contextmanager
def profile_chunk(registry: Optional[MetricsRegistry] = None,
                  ) -> Iterator[None]:
    """Record one chunk execution's resource profile.

    With no explicit ``registry`` the active session's is used, and when
    telemetry is disabled the body runs entirely unobserved — the same
    one-global-read guard as every other instrumentation site.  The
    profile is recorded even when the body raises (a chunk that died
    after 40 s of work is exactly the chunk worth profiling); the
    exception propagates untouched.
    """
    if registry is None:
        session = active_session()
        if session is None:
            yield
            return
        registry = session.metrics
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield
    finally:
        wall_s = max(time.perf_counter() - wall_start, 0.0)
        cpu_s = max(time.process_time() - cpu_start, 0.0)
        registry.histogram("profile.chunk_wall_s",
                           TIME_BUCKETS).observe(wall_s)
        registry.histogram("profile.chunk_cpu_s",
                           TIME_BUCKETS).observe(cpu_s)
        _high_water(registry, "profile.chunk_wall_s_max", wall_s)
        _high_water(registry, "profile.chunk_cpu_s_max", cpu_s)
        if wall_s > 0.0:
            _high_water(registry, "profile.worker_utilisation",
                        cpu_s / wall_s)
        peak_mb = rss_peak_mb()
        if peak_mb is not None:
            _high_water(registry, "profile.rss_peak_mb", peak_mb)
