"""The process-local telemetry session and its no-op disabled path.

One :class:`TelemetrySession` bundles a :class:`~.metrics.MetricsRegistry`
and a :class:`~.tracing.Tracer`.  Hot paths never hold a session; they
ask :func:`active_session` (a single module-global read) and skip all
instrumentation when it returns ``None``.  That makes the disabled path
a true no-op — one attribute load and a ``None`` check per instrumented
*call site*, where call sites are at batch/chunk granularity, never per
encounter (benchmarked ≤ 2 % in
``benchmarks/bench_telemetry_overhead.py``).

Usage::

    from repro.obs import telemetry_session

    with telemetry_session() as session:
        result = run_fleet(...)          # instrumented transparently
    snap = session.snapshot()            # frozen metrics + span tree

Fleet semantics: the coordinator's session is active around
``run_fleet``; every chunk (worker process *or* inline) runs under its
own fresh session, ships a frozen :class:`TelemetrySnapshot` back
alongside its :class:`~repro.traffic.simulator.SimulationResult`, and
the coordinator merges all chunk snapshots **once, in chunk-index
order** via :meth:`TelemetrySnapshot.merge_many` — so the merged
telemetry counters are identical for any worker count, mirroring the
result-determinism contract of :mod:`repro.stats.parallel`.

Hard invariant (DESIGN §8): nothing in this package reads or advances an
RNG stream.  The golden pins in ``tests/traffic/test_golden_stats.py``
run with telemetry enabled *and* disabled to enforce it bit-for-bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from .metrics import MetricsRegistry, MetricsSnapshot
from .tracing import SpanNode, Tracer

__all__ = ["TelemetrySession", "TelemetrySnapshot", "telemetry_session",
           "active_session", "maybe_span", "NO_OP_SPAN"]


class _NoOpSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NO_OP_SPAN = _NoOpSpan()
"""The singleton no-op span: ``maybe_span`` returns it whenever no
session is active, so the disabled path allocates nothing."""


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Frozen (picklable) state of one session: metrics + span tree.

    This is what a fleet worker returns alongside its chunk result and
    what a :class:`~repro.obs.manifest.RunManifest` embeds.
    """

    metrics: MetricsSnapshot
    spans: SpanNode

    def to_dict(self) -> Dict[str, object]:
        return {"metrics": self.metrics.to_dict(),
                "spans": self.spans.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TelemetrySnapshot":
        return cls(
            metrics=MetricsSnapshot.from_dict(dict(data["metrics"])),  # type: ignore[arg-type]
            spans=SpanNode.from_dict("", dict(data["spans"])),  # type: ignore[arg-type]
        )

    @classmethod
    def merge_many(cls, snapshots: Iterable["TelemetrySnapshot"],
                   ) -> "TelemetrySnapshot":
        """Merge snapshots; metric values are order-independent.

        Metrics use :meth:`MetricsSnapshot.merge_many` (fsum / exact int
        sums / bucket addition); span trees fold by name with float
        accumulation — span *timings* are observability, outside the
        determinism contract, but counts and structure merge exactly.
        """
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("merge_many needs at least one snapshot")
        spans = SpanNode("")
        for snapshot in snapshots:
            spans.merge(snapshot.spans)
        return cls(metrics=MetricsSnapshot.merge_many(
            [s.metrics for s in snapshots]), spans=spans)


class TelemetrySession:
    """Mutable per-process telemetry state: registry + tracer."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(metrics=self.metrics.snapshot(),
                                 spans=self.tracer.snapshot())

    def absorb(self, snapshot: TelemetrySnapshot,
               under: Optional[str] = None) -> None:
        """Fold a frozen snapshot into this live session.

        ``under`` optionally nests the absorbed span tree below a named
        child of the root (e.g. ``"fleet.chunks"``), keeping worker-side
        spans visually separate from the coordinator's own.
        """
        self.metrics.absorb(snapshot.metrics)
        target = self.tracer.root
        if under is not None:
            target = target.child(under)
        target.merge(snapshot.spans)


_ACTIVE: Optional[TelemetrySession] = None


def active_session() -> Optional[TelemetrySession]:
    """The process-current session, or ``None`` when telemetry is off.

    This is THE hot-path guard: instrumented code does
    ``obs = active_session()`` and skips everything on ``None``.
    """
    return _ACTIVE


def maybe_span(name: str):
    """A live span under the active session, or the shared no-op."""
    session = _ACTIVE
    if session is None:
        return NO_OP_SPAN
    return session.tracer.span(name)


@contextmanager
def telemetry_session() -> Iterator[TelemetrySession]:
    """Install a fresh session as the process-current one.

    Re-entrant: nesting replaces the active session for the inner block
    and restores the outer one afterwards — exactly how the fleet runner
    gives inline (``workers=1``) chunks their own session so the serial
    path uses the same per-chunk telemetry discipline as the pool.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = TelemetrySession()
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
