"""Live QRN budget-utilisation tracking with Poisson confidence intervals.

The QRN's frequency budgets ``f_I`` (per incident type, Sec. III-B) and
``f_v`` (per consequence class, Sec. III-A) are *quantitative contracts*:
a deployed or simulated fleet must continuously compare its observed
incident stream against them, not wait for a one-shot verification
report.  A :class:`BudgetMonitor` does exactly that:

* it accumulates streamed per-type incident counts and exposure
  (``observe_counts`` may be called once per chunk, per day, per
  campaign — accumulation is associative, exposures ``fsum``-pooled);
* :meth:`utilisation` maps the totals onto the budgets of a
  :class:`~repro.core.safety_goals.SafetyGoalSet` and reports, per
  incident type **and** per consequence class, the utilisation ratio
  ``observed rate / budget`` with exact Poisson confidence intervals
  (:mod:`repro.stats.poisson`); class rates are propagated through the
  contribution splits exactly as Eq. 1 composes them, bounds summed
  term-wise (each marginal bound holds, so the sum bounds the sum —
  the same conservative aggregation as
  :func:`repro.core.verification.verify_against_counts`).

A utilisation of 0.5 means the observed (point) rate consumes half the
budget; an *upper* utilisation above 1 means the campaign cannot yet
demonstrate the budget (cf. ``Verdict.INCONCLUSIVE``); a *point*
utilisation above 1 is a live budget violation.

The monitor is plain bookkeeping — it never touches an RNG stream and
is deliberately independent of the traffic layer: callers classify
records (e.g. via :func:`repro.traffic.incidents.type_counts`) and feed
integer counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

from ..stats.poisson import rate_confidence_interval
from .events import journal_event

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.safety_goals import SafetyGoalSet

__all__ = ["BudgetUtilisation", "BudgetUtilisationReport", "BudgetMonitor",
           "classified_counts"]


def classified_counts(result, types) -> Dict[str, int]:
    """Classify a ``SimulationResult`` into per-type incident counts.

    The single classification path shared by :meth:`BudgetMonitor.
    observe_result` and the flight recorder's journal entries — using
    one code path is what makes journal replay reproduce the monitor's
    table *exactly*.  Records matching no type are outside every budget
    and dropped (their completeness story belongs to the MECE
    certificate, not to the monitor).
    """
    if getattr(result, "has_block", False):
        # Columnar fast path: count via whole-column masks without
        # materialising IncidentRecord objects.
        from ..traffic.records import \
            classify_block_counts  # lazy: avoid cycles
        counts, _ = classify_block_counts(result.record_block, list(types))
        return counts
    from ..core.incident import classify_records  # lazy: avoid cycles

    buckets = classify_records(result.records, list(types))
    return {type_id: len(records)
            for type_id, records in buckets.items()
            if type_id != "<unclassified>"}


@dataclass(frozen=True)
class BudgetUtilisation:
    """Utilisation of one frequency budget (incident type or class).

    ``observed`` is the integer event count for incident types; for
    consequence classes it is the *expected* class load propagated
    through contribution splits (generally fractional).  Rates are per
    exposure unit; ``utilisation_*`` are the rates divided by the budget.
    """

    kind: str  # "incident_type" | "consequence_class"
    budget_id: str
    budget_rate: float
    observed: float
    exposure: float
    rate: float
    rate_lower: float
    rate_upper: float
    confidence: float

    @property
    def utilisation(self) -> float:
        return self.rate / self.budget_rate

    @property
    def utilisation_lower(self) -> float:
        return self.rate_lower / self.budget_rate

    @property
    def utilisation_upper(self) -> float:
        return self.rate_upper / self.budget_rate

    @property
    def verdict_uncertainty(self) -> float:
        """CI width while this budget's verdict is still open, else 0.

        A budget is *settled* once its confidence interval no longer
        straddles the budget line: upper utilisation ≤ 1 demonstrates
        compliance, lower utilisation > 1 demonstrates violation.  Until
        then the open question is exactly the utilisation CI width, which
        the adaptive allocation uses as its per-budget score.
        """
        if self.utilisation_upper <= 1.0 or self.utilisation_lower > 1.0:
            return 0.0
        return self.utilisation_upper - self.utilisation_lower

    @property
    def verdict(self) -> str:
        """``"demonstrated"`` / ``"violated"`` / ``"inconclusive"``.

        The same settlement rule as :attr:`verdict_uncertainty`, named:
        the whole CI below the budget line demonstrates compliance, the
        whole CI above it demonstrates violation, anything straddling is
        still open.  The flight recorder journals every transition of
        this value (``budget.verdict`` events), so a journal replay can
        reconstruct when each budget settled.
        """
        if self.utilisation_upper <= 1.0:
            return "demonstrated"
        if self.utilisation_lower > 1.0:
            return "violated"
        return "inconclusive"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "budget_id": self.budget_id,
            "budget_rate": self.budget_rate,
            "observed": self.observed,
            "exposure": self.exposure,
            "rate": self.rate,
            "rate_lower": self.rate_lower,
            "rate_upper": self.rate_upper,
            "utilisation": self.utilisation,
            "utilisation_lower": self.utilisation_lower,
            "utilisation_upper": self.utilisation_upper,
            "confidence": self.confidence,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class BudgetUtilisationReport:
    """The full per-type / per-class utilisation table at one instant."""

    rows: Tuple[BudgetUtilisation, ...]
    exposure: float
    confidence: float

    def row(self, budget_id: str) -> BudgetUtilisation:
        for row in self.rows:
            if row.budget_id == budget_id:
                return row
        raise KeyError(f"no utilisation row for {budget_id!r}")

    def type_rows(self) -> Tuple[BudgetUtilisation, ...]:
        return tuple(r for r in self.rows if r.kind == "incident_type")

    def class_rows(self) -> Tuple[BudgetUtilisation, ...]:
        return tuple(r for r in self.rows if r.kind == "consequence_class")

    def worst_utilisation(self) -> float:
        """The tightest budget's point utilisation (0 with no rows)."""
        return max((r.utilisation for r in self.rows), default=0.0)

    def verdict_uncertainty(self) -> Dict[str, float]:
        """Per-incident-type unresolved CI width (0 once settled).

        Only type rows contribute — class budgets are split-propagated
        combinations of the same counts, so steering effort by them would
        double-count the underlying types.
        """
        return {r.budget_id: r.verdict_uncertainty for r in self.type_rows()}

    def all_settled(self) -> bool:
        """True once every type budget's verdict no longer straddles 1."""
        return all(u == 0.0 for u in self.verdict_uncertainty().values())

    def to_rows(self) -> List[Dict[str, object]]:
        return [row.to_dict() for row in self.rows]

    def render(self) -> str:
        """Human-readable utilisation table for dossiers / stdout."""
        from ..reporting.tables import render_table  # lazy: avoid cycles

        def fmt(row: BudgetUtilisation) -> List[str]:
            observed = (f"{row.observed:g}" if row.kind == "incident_type"
                        else f"{row.observed:.3g}")
            return [
                row.budget_id,
                observed,
                f"{row.rate:.3g}",
                f"[{row.rate_lower:.3g}, {row.rate_upper:.3g}]",
                f"{row.budget_rate:.3g}",
                f"{row.utilisation:.2%}",
                f"{row.utilisation_upper:.2%}",
            ]

        header = ["budget", "observed", "rate /unit",
                  f"{self.confidence:.0%} CI", "budget rate",
                  "utilisation", "upper util."]
        lines = []
        type_rows = self.type_rows()
        if type_rows:
            lines.append(render_table(
                header, [fmt(r) for r in type_rows],
                title=f"Incident-type budget utilisation (f_I) over "
                      f"{self.exposure:g} exposure units"))
        class_rows = self.class_rows()
        if class_rows:
            lines.append(render_table(
                header, [fmt(r) for r in class_rows],
                title="Consequence-class budget utilisation (f_v, "
                      "split-propagated)"))
        return "\n\n".join(lines)


class BudgetMonitor:
    """Streamed incident counts → live budget utilisation.

    Construct once per campaign from the goal set whose budgets define
    "sufficiently safe", then feed ``observe_counts`` as data arrives.
    Accumulation is associative and order-independent: counts are exact
    integer sums, exposure parts are pooled with ``math.fsum`` at query
    time (the :meth:`SimulationResult.merge_many
    <repro.traffic.simulator.SimulationResult.merge_many>` discipline).
    """

    def __init__(self, goals: "SafetyGoalSet", *, confidence: float = 0.95):
        if not (0.0 < confidence < 1.0):
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self._goals = goals
        self._confidence = confidence
        self._counts: Dict[str, int] = {
            type_id: 0 for type_id in goals.allocation.type_ids}
        self._exposure_parts: List[float] = []
        # Last verdict seen per budget id, so utilisation() can journal
        # only *transitions* (budget.verdict events), not every query.
        self._verdicts: Dict[str, str] = {}

    @property
    def confidence(self) -> float:
        return self._confidence

    @property
    def exposure(self) -> float:
        """Total observed exposure so far (fsum-pooled)."""
        return math.fsum(self._exposure_parts)

    @property
    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def observe_counts(self, counts: Mapping[str, int],
                       exposure: float) -> None:
        """Accumulate one batch of classified counts over ``exposure``.

        Unknown incident-type keys are an error (classification drift
        must fail loudly, as in ``verify_against_counts``); types absent
        from ``counts`` contribute zero events but full exposure.
        """
        if exposure <= 0 or not math.isfinite(exposure):
            raise ValueError(
                f"exposure must be positive and finite, got {exposure}")
        unknown = set(counts) - set(self._counts)
        if unknown:
            raise KeyError(
                f"counts given for unknown incident types: {sorted(unknown)}")
        staged: Dict[str, int] = {}
        for type_id, count in counts.items():
            count = int(count)
            if count < 0:
                raise ValueError(
                    f"count for {type_id!r} must be >= 0, got {count}")
            staged[type_id] = count
        # Validate-then-commit, so a bad batch cannot half-apply.
        for type_id, count in staged.items():
            self._counts[type_id] += count
        self._exposure_parts.append(float(exposure))

    def observe_result(self, result, types) -> None:
        """Convenience: classify a ``SimulationResult`` and accumulate it.

        ``types`` are the incident types backing the goal set; records
        matching none are outside every budget and ignored here (their
        completeness story belongs to the MECE certificate, not to the
        monitor).
        """
        self.observe_counts(classified_counts(result, types), result.hours)

    def utilisation(self) -> BudgetUtilisationReport:
        """The utilisation table for everything observed so far."""
        exposure = self.exposure
        if exposure <= 0:
            raise ValueError("no exposure observed yet — feed "
                             "observe_counts() before asking for a report")
        confidence = self._confidence
        rows: List[BudgetUtilisation] = []
        estimates = {}
        for goal in self._goals:
            count = self._counts[goal.type_id]
            estimate = rate_confidence_interval(count, exposure, confidence)
            estimates[goal.type_id] = estimate
            rows.append(BudgetUtilisation(
                kind="incident_type", budget_id=goal.type_id,
                budget_rate=goal.max_frequency.rate,
                observed=float(count), exposure=exposure,
                rate=estimate.point, rate_lower=estimate.lower,
                rate_upper=estimate.upper, confidence=confidence))
        allocation = self._goals.allocation
        norm = self._goals.norm
        for class_id in norm.class_ids:
            budget = norm.budget(class_id).rate
            load = 0.0
            lower = 0.0
            upper = 0.0
            observed = 0.0
            for itype in allocation.types:
                fraction = itype.split.fraction(class_id)
                if fraction == 0.0:
                    continue
                estimate = estimates[itype.type_id]
                observed += fraction * estimate.count
                load += fraction * estimate.point
                lower += fraction * estimate.lower
                upper += fraction * estimate.upper
            rows.append(BudgetUtilisation(
                kind="consequence_class", budget_id=class_id,
                budget_rate=budget, observed=observed, exposure=exposure,
                rate=load, rate_lower=lower, rate_upper=upper,
                confidence=confidence))
        report = BudgetUtilisationReport(rows=tuple(rows), exposure=exposure,
                                         confidence=confidence)
        self._journal_transitions(report)
        return report

    def _journal_transitions(self, report: BudgetUtilisationReport) -> None:
        """Emit a ``budget.verdict`` journal event per verdict change.

        First sight of a budget counts as a transition from ``None`` —
        the journal then carries the complete verdict history, and a
        replay that recomputes the table sees the same transitions.
        A no-op (one global read) without an active journal.
        """
        for row in report.rows:
            previous = self._verdicts.get(row.budget_id)
            verdict = row.verdict
            if verdict == previous:
                continue
            self._verdicts[row.budget_id] = verdict
            journal_event(
                "budget.verdict", budget_id=row.budget_id, kind=row.kind,
                verdict=verdict, previous=previous,
                utilisation=row.utilisation,
                utilisation_lower=row.utilisation_lower,
                utilisation_upper=row.utilisation_upper,
                exposure=report.exposure)
