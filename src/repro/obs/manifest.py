"""Run manifests: the frozen provenance artifact of one campaign.

A :class:`RunManifest` is the JSON document a ``--telemetry PATH`` run
writes next to its results: everything needed to (a) reproduce the run
(seed, engine, policy, hours, mix, worker count, chunk plan, package
versions, git SHA) and (b) audit what happened inside it (the aggregated
span tree, the merged metrics snapshot, and — when a goal set is in
scope — the per-incident-type / per-consequence-class budget-utilisation
table with Poisson confidence intervals).

The manifest is a pure record: building one never perturbs the campaign
(no RNG access, no mutation of the session it snapshots).  ``write`` /
``read`` round-trip through the :mod:`repro.io` artifact boundary
(DESIGN §10): writes are atomic and carry an embedded payload sha256
digest, reads verify it (optional for manifests written before the
boundary existed), and a missing/unknown ``schema`` tag or corrupt
content fails fast with the typed :class:`~repro.errors.ArtifactError`
taxonomy instead of a mis-parse.  On-disk form stays sorted-key JSON so
manifests diff cleanly in review.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from ..io.artifact import ARTIFACTS, ArtifactSchema, register_artifact
from ..io.validate import (Int, Json, ListOf, MapOf, NullOr, Number, Record,
                           Str)
from .session import TelemetrySnapshot

__all__ = ["MANIFEST_SCHEMA", "MANIFEST_SCHEMA_NAME", "RunManifest",
           "build_manifest", "collect_versions", "git_sha"]

MANIFEST_SCHEMA_NAME = "repro.run-manifest"
MANIFEST_SCHEMA = f"{MANIFEST_SCHEMA_NAME}/v1"


def collect_versions() -> Dict[str, str]:
    """Best-effort version stamps for the packages that matter here."""
    versions: Dict[str, str] = {
        "python": platform.python_version(),
    }
    try:
        from .. import __version__ as repro_version
        versions["repro"] = str(repro_version)
    except Exception:  # pragma: no cover - version attr is optional
        versions["repro"] = "unknown"
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except Exception:  # pragma: no cover - optional dependency
                continue
        versions[name] = str(getattr(module, "__version__", "unknown"))
    return versions


def git_sha(cwd: Optional[Path] = None) -> str:
    """The repository HEAD SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=5, check=False)
    except Exception:  # pragma: no cover - git missing entirely
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Frozen provenance + telemetry record of one campaign run."""

    schema: str
    created_utc: str
    command: str
    seed: Optional[int]
    engine: Optional[str]
    policy: Optional[str]
    hours: Optional[float]
    mix: Optional[Dict[str, float]]
    workers: Optional[int]
    chunk_hours: Optional[float]
    n_chunks: Optional[int]
    versions: Dict[str, str]
    git_sha: str
    platform: str
    spans: Dict[str, object]
    metrics: Dict[str, object]
    budget_utilisation: Optional[List[Dict[str, object]]] = None
    summary: Dict[str, object] = field(default_factory=dict)
    failure_log: Optional[List[Dict[str, object]]] = None
    """Recovered-fault audit trail: one entry per
    :class:`~repro.stats.fault_tolerance.ChunkFailure` the campaign's
    retry layer logged (``chunk_index``/``attempt``/``kind``/``message``).
    ``None`` for fault-free runs and manifests written before the
    fault-tolerance layer existed (additive, still schema v1)."""

    event_log: Optional[str] = None
    """Pointer to the campaign's flight-recorder journal (the
    ``repro.event-log/v1`` JSONL file), when one was recorded.  ``None``
    for recorder-less runs and manifests written before the flight
    recorder existed (additive, still schema v1): replaying the pointed
    journal must reconstruct this manifest's counters and budget table
    exactly."""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": self.schema,
            "created_utc": self.created_utc,
            "command": self.command,
            "seed": self.seed,
            "engine": self.engine,
            "policy": self.policy,
            "hours": self.hours,
            "mix": self.mix,
            "workers": self.workers,
            "chunk_hours": self.chunk_hours,
            "n_chunks": self.n_chunks,
            "versions": dict(self.versions),
            "git_sha": self.git_sha,
            "platform": self.platform,
            "spans": self.spans,
            "metrics": self.metrics,
            "budget_utilisation": self.budget_utilisation,
            "summary": dict(self.summary),
            "failure_log": self.failure_log,
            "event_log": self.event_log,
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        """Validate + rebuild through the artifact boundary.

        A missing or unknown ``schema`` tag raises
        :class:`~repro.errors.SchemaMismatchError` naming the expected
        and found tags; structurally invalid content raises
        :class:`~repro.errors.ArtifactValidationError`.
        """
        manifest = ARTIFACTS.load_dict(data, MANIFEST_SCHEMA_NAME)
        assert isinstance(manifest, RunManifest)
        return manifest

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: Path) -> None:
        """Atomic, digest-signed write through the I/O boundary."""
        ARTIFACTS.save(Path(path), MANIFEST_SCHEMA_NAME, self)

    @classmethod
    def read(cls, path: Path) -> "RunManifest":
        """Load + verify one manifest file (typed errors only)."""
        manifest = ARTIFACTS.load(Path(path), MANIFEST_SCHEMA_NAME)
        assert isinstance(manifest, RunManifest)
        return manifest


def build_manifest(snapshot: TelemetrySnapshot, *, command: str,
                   seed: Optional[int] = None,
                   engine: Optional[str] = None,
                   policy: Optional[str] = None,
                   hours: Optional[float] = None,
                   mix: Optional[Mapping[str, float]] = None,
                   workers: Optional[int] = None,
                   chunk_hours: Optional[float] = None,
                   n_chunks: Optional[int] = None,
                   budget_report=None,
                   summary: Optional[Mapping[str, object]] = None,
                   failure_log: Optional[Sequence[Mapping[str, object]]] = None,
                   event_log: Optional[str] = None,
                   ) -> RunManifest:
    """Assemble a :class:`RunManifest` from a frozen telemetry snapshot.

    ``budget_report`` is an optional
    :class:`~repro.obs.budget_monitor.BudgetUtilisationReport`; its rows
    are embedded as plain dicts so the manifest stays self-contained.
    ``failure_log`` takes the plain-dict form of the campaign's recovered
    :class:`~repro.stats.fault_tolerance.ChunkFailure` entries (e.g.
    ``[f.to_dict() for f in failure_sink]``); pass ``None`` — not ``[]``
    — for a fault-free run so the manifest reads unambiguously.
    """
    budget_rows: Optional[List[Dict[str, object]]] = None
    if budget_report is not None:
        budget_rows = budget_report.to_rows()
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_utc=datetime.now(timezone.utc).isoformat(),
        command=command,
        seed=seed,
        engine=engine,
        policy=policy,
        hours=hours,
        mix=None if mix is None else dict(mix),
        workers=workers,
        chunk_hours=chunk_hours,
        n_chunks=n_chunks,
        versions=collect_versions(),
        git_sha=git_sha(),
        platform=platform.platform(),
        spans=snapshot.spans.to_dict(),
        metrics=snapshot.metrics.to_dict(),
        budget_utilisation=budget_rows,
        summary={} if summary is None else dict(summary),
        failure_log=(None if failure_log is None
                     else [dict(row) for row in failure_log]),
        event_log=None if event_log is None else str(event_log),
    )


# -- artifact schema registration ----------------------------------------

def _load_manifest(data: Mapping[str, object]) -> RunManifest:
    mix = data.get("mix")
    budget = data.get("budget_utilisation")
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_utc=str(data.get("created_utc", "")),
        command=str(data.get("command", "")),
        seed=(None if data.get("seed") is None
              else int(data["seed"])),  # type: ignore[arg-type]
        engine=(None if data.get("engine") is None
                else str(data["engine"])),
        policy=(None if data.get("policy") is None
                else str(data["policy"])),
        hours=(None if data.get("hours") is None
               else float(data["hours"])),  # type: ignore[arg-type]
        mix=(None if mix is None
             else {str(k): float(v)  # type: ignore[arg-type]
                   for k, v in dict(mix).items()}),  # type: ignore[call-overload]
        workers=(None if data.get("workers") is None
                 else int(data["workers"])),  # type: ignore[arg-type]
        chunk_hours=(None if data.get("chunk_hours") is None
                     else float(data["chunk_hours"])),  # type: ignore[arg-type]
        n_chunks=(None if data.get("n_chunks") is None
                  else int(data["n_chunks"])),  # type: ignore[arg-type]
        versions={str(k): str(v) for k, v in
                  dict(data.get("versions", {})).items()},  # type: ignore[call-overload]
        git_sha=str(data.get("git_sha", "unknown")),
        platform=str(data.get("platform", "")),
        spans=dict(data.get("spans", {})),  # type: ignore[call-overload]
        metrics=dict(data.get("metrics", {})),  # type: ignore[call-overload]
        budget_utilisation=(
            None if budget is None
            else [dict(row) for row in budget]),  # type: ignore[union-attr]
        summary=dict(data.get("summary", {})),  # type: ignore[call-overload]
        failure_log=(
            None if data.get("failure_log") is None
            else [dict(row) for row in data["failure_log"]]),  # type: ignore[union-attr]
        event_log=(None if data.get("event_log") is None
                   else str(data["event_log"])),
    )


def _example_manifest() -> RunManifest:
    """A small deterministic manifest for the fuzz tier."""
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_utc="2026-01-01T00:00:00+00:00",
        command="repro fleet",
        seed=2020,
        engine="vectorized",
        policy="nominal",
        hours=500.0,
        mix={"urban": 0.5, "highway": 0.5},
        workers=4,
        chunk_hours=125.0,
        n_chunks=4,
        versions={"python": "3.12.0", "repro": "1.0.0"},
        git_sha="0123456789abcdef0123456789abcdef01234567",
        platform="Linux-example",
        spans={"count": 0, "total_s": 0.0,
               "children": {"run_fleet": {"count": 1, "total_s": 1.25,
                                          "min_s": 1.25, "max_s": 1.25}}},
        metrics={"sim.encounters": {"kind": "counter", "value": 123}},
        budget_utilisation=[{"budget_id": "I1", "kind": "incident_type",
                             "observed": 2.0, "rate_lower": 0.0,
                             "rate_upper": 1e-05}],
        summary={"incidents": 7},
        failure_log=[{"chunk_index": 2, "attempt": 1, "kind": "exception",
                      "message": "boom"}],
        event_log="out/flight/journal.jsonl",
    )


_MANIFEST_SPEC = Record(
    required={
        "created_utc": Str(),
        "command": Str(),
        "seed": NullOr(Int()),
        "engine": NullOr(Str()),
        "policy": NullOr(Str()),
        "hours": NullOr(Number()),
        "mix": NullOr(MapOf(Number())),
        "workers": NullOr(Int()),
        "chunk_hours": NullOr(Number()),
        "n_chunks": NullOr(Int()),
        "versions": MapOf(Str()),
        "git_sha": Str(),
        "platform": Str(),
        "spans": Json(),
        "metrics": Json(),
    },
    optional={
        # Additive fields (still schema v1): absent in manifests written
        # before their layer existed, always emitted since.
        "budget_utilisation": NullOr(ListOf(Json())),
        "summary": Json(),
        "failure_log": NullOr(ListOf(Json())),
        "event_log": NullOr(Str()),
    })

register_artifact(ArtifactSchema(
    name=MANIFEST_SCHEMA_NAME,
    version=1,
    spec=_MANIFEST_SPEC,
    load=_load_manifest,
    dump=RunManifest.to_dict,
    label="manifest",
    example=_example_manifest,
))
