"""Process-local metrics registry with fleet-mergeable snapshots.

Three instrument kinds cover everything the campaign runners need to
report:

* :class:`Counter` — monotone totals (encounters resolved, incidents
  recorded, simulated hours).  Merged across workers by summation;
  float-valued counters use ``math.fsum`` so the merged value is the
  correctly rounded true sum and therefore independent of merge order —
  the same discipline as
  :meth:`repro.traffic.simulator.SimulationResult.merge_many`.
* :class:`Gauge` — level readings (worker count, chunks planned).
  Merged by **maximum** (a documented high-water-mark semantic): unlike
  "last write wins", the max over snapshots is order-independent.
* :class:`Histogram` — fixed-bucket distributions (batch sizes, chunk
  sizes).  All snapshots of one histogram share the same bucket bounds,
  so merging is element-wise count addition plus ``fsum`` of the value
  sums — again order-independent.

The registry itself is deliberately **process-local and unsynchronised**:
the fleet runner gives every worker (and every inline chunk) its own
session, snapshots it, and merges the frozen snapshots on the
coordinator in chunk-index order.  No locks, no cross-process state, no
RNG interaction — telemetry must never be able to perturb the simulated
draws (DESIGN §8).

Order-independence contract (enforced by ``tests/obs/test_metrics.py``
over shuffled chunk orders): ``MetricsSnapshot.merge_many(snaps)`` is a
pure function of the *multiset* of input snapshots.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "CounterSnapshot", "GaugeSnapshot", "HistogramSnapshot",
    "MetricsSnapshot", "ThroughputMeter", "SIZE_BUCKETS",
]

SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0)
"""Default histogram bounds: a 1-2-5 decade ladder, wide enough for both
per-class encounter batch sizes and per-chunk hour counts."""


# ---------------------------------------------------------------------------
# Snapshots — frozen, picklable, mergeable.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CounterSnapshot:
    """Frozen value of one counter (int kept exact, float fsum-merged)."""

    name: str
    value: Union[int, float]

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "counter", "value": self.value}


@dataclass(frozen=True)
class GaugeSnapshot:
    """Frozen value of one gauge (max-merged high-water mark)."""

    name: str
    value: float

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "gauge", "value": self.value}


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen state of one fixed-bucket histogram.

    ``bucket_counts`` has ``len(bounds) + 1`` entries: one per upper
    bound (``value <= bound``, cumulative-exclusive between bounds) plus
    a final overflow bucket for values above the last bound.
    """

    name: str
    bounds: Tuple[float, ...]
    bucket_counts: Tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "histogram",
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


_InstrumentSnapshot = Union[CounterSnapshot, GaugeSnapshot, HistogramSnapshot]


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable view of a whole registry.

    The object workers ship back to the coordinator.  Merging is done
    with :meth:`merge_many` over the full set of snapshots at once —
    float counter values and histogram sums go through ``math.fsum`` of
    all inputs, which makes the merged snapshot a pure function of the
    input *multiset* (shuffling chunk completion order cannot change it).
    """

    instruments: Dict[str, _InstrumentSnapshot] = field(default_factory=dict)

    def counter_value(self, name: str) -> Union[int, float]:
        snap = self.instruments[name]
        if not isinstance(snap, CounterSnapshot):
            raise TypeError(f"{name!r} is a {type(snap).__name__}, not a counter")
        return snap.value

    def counters(self) -> Dict[str, Union[int, float]]:
        return {name: snap.value for name, snap in sorted(self.instruments.items())
                if isinstance(snap, CounterSnapshot)}

    def to_dict(self) -> Dict[str, object]:
        return {name: snap.to_dict()
                for name, snap in sorted(self.instruments.items())}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, object]],
                  ) -> "MetricsSnapshot":
        instruments: Dict[str, _InstrumentSnapshot] = {}
        for name, entry in data.items():
            kind = entry["kind"]
            if kind == "counter":
                instruments[name] = CounterSnapshot(name, entry["value"])  # type: ignore[arg-type]
            elif kind == "gauge":
                instruments[name] = GaugeSnapshot(name, float(entry["value"]))  # type: ignore[arg-type]
            elif kind == "histogram":
                count = int(entry["count"])  # type: ignore[arg-type]
                instruments[name] = HistogramSnapshot(
                    name=name,
                    bounds=tuple(float(b) for b in entry["bounds"]),  # type: ignore[union-attr]
                    bucket_counts=tuple(int(c) for c in entry["bucket_counts"]),  # type: ignore[union-attr]
                    count=count,
                    sum=float(entry["sum"]),  # type: ignore[arg-type]
                    min=float(entry["min"]) if count else math.inf,  # type: ignore[arg-type]
                    max=float(entry["max"]) if count else -math.inf,  # type: ignore[arg-type]
                )
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")
        return cls(instruments)

    @classmethod
    def merge_many(cls, snapshots: Iterable["MetricsSnapshot"],
                   ) -> "MetricsSnapshot":
        """Merge snapshots order-independently (see module docstring)."""
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("merge_many needs at least one snapshot")
        by_name: Dict[str, List[_InstrumentSnapshot]] = {}
        for snapshot in snapshots:
            for name, instrument in snapshot.instruments.items():
                by_name.setdefault(name, []).append(instrument)
        merged: Dict[str, _InstrumentSnapshot] = {}
        for name in sorted(by_name):
            group = by_name[name]
            kinds = {type(snap) for snap in group}
            if len(kinds) != 1:
                raise ValueError(
                    f"instrument {name!r} has conflicting kinds across "
                    f"snapshots: {sorted(k.__name__ for k in kinds)}")
            first = group[0]
            if isinstance(first, CounterSnapshot):
                values = [snap.value for snap in group]  # type: ignore[union-attr]
                if all(isinstance(v, int) for v in values):
                    merged[name] = CounterSnapshot(name, sum(values))
                else:
                    merged[name] = CounterSnapshot(name, math.fsum(values))
            elif isinstance(first, GaugeSnapshot):
                merged[name] = GaugeSnapshot(
                    name, max(snap.value for snap in group))  # type: ignore[union-attr]
            else:
                bounds = {snap.bounds for snap in group}  # type: ignore[union-attr]
                if len(bounds) != 1:
                    raise ValueError(
                        f"histogram {name!r} has conflicting bucket bounds "
                        f"across snapshots: {sorted(bounds)}")
                counts = [0] * (len(first.bounds) + 1)
                for snap in group:
                    for i, c in enumerate(snap.bucket_counts):  # type: ignore[union-attr]
                        counts[i] += c
                merged[name] = HistogramSnapshot(
                    name=name,
                    bounds=first.bounds,
                    bucket_counts=tuple(counts),
                    count=sum(snap.count for snap in group),  # type: ignore[union-attr]
                    sum=math.fsum(snap.sum for snap in group),  # type: ignore[union-attr]
                    min=min(snap.min for snap in group),  # type: ignore[union-attr]
                    max=max(snap.max for snap in group),  # type: ignore[union-attr]
                )
        return cls(merged)


# ---------------------------------------------------------------------------
# Live instruments.
# ---------------------------------------------------------------------------

class Counter:
    """A monotone total.  ``inc`` accepts non-negative int or float."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0 or not math.isfinite(amount):
            raise ValueError(
                f"counter {self.name!r} increment must be finite and >= 0, "
                f"got {amount}")
        self._value += amount

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(self.name, self._value)


class Gauge:
    """A level reading; snapshots merge by maximum (high-water mark)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(
                f"gauge {self.name!r} value must be finite, got {value}")
        self._value = float(value)

    def snapshot(self) -> GaugeSnapshot:
        return GaugeSnapshot(self.name, self._value)


class Histogram:
    """A fixed-bucket histogram; every registration must agree on bounds."""

    __slots__ = ("name", "bounds", "_bucket_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, bounds: Tuple[float, ...] = SIZE_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram bounds must be finite "
                             "(overflow bucket is implicit)")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing, "
                             f"got {bounds}")
        self.name = name
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} value must be finite, got {value}")
        index = len(self.bounds)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self._bucket_counts[index] += 1
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            name=self.name, bounds=self.bounds,
            bucket_counts=tuple(self._bucket_counts), count=self._count,
            sum=self._sum, min=self._min, max=self._max)


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Process-local, get-or-create instrument store.

    One registry per :class:`~repro.obs.session.TelemetrySession`.  The
    name spaces the instrument kinds share one flat namespace; asking for
    an existing name with a different kind (or different histogram
    bounds) is an error — silent shadowing would corrupt merges.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory: Callable[[], _Instrument],
                       kind: type) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise ValueError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, requested {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)  # type: ignore[return-value]

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = SIZE_BUCKETS) -> Histogram:
        histogram = self._get_or_create(
            name, lambda: Histogram(name, bounds), Histogram)
        if histogram.bounds != tuple(float(b) for b in bounds):  # type: ignore[union-attr]
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{histogram.bounds}, requested {tuple(bounds)}")  # type: ignore[union-attr]
        return histogram  # type: ignore[return-value]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._instruments))

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot({name: instrument.snapshot()
                                for name, instrument
                                in self._instruments.items()})

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this live registry.

        Counters add, gauges take the maximum, histograms add bucket-wise
        — the same semantics as :meth:`MetricsSnapshot.merge_many`.  The
        fleet coordinator merges all chunk snapshots into **one** frozen
        snapshot first (order-independent) and absorbs that, so live
        absorption order never differs between worker counts.
        """
        for name, snap in snapshot.instruments.items():
            if isinstance(snap, CounterSnapshot):
                self.counter(name).inc(snap.value)
            elif isinstance(snap, GaugeSnapshot):
                gauge = self.gauge(name)
                gauge.set(max(gauge.value, snap.value))
            else:
                histogram = self.histogram(name, snap.bounds)
                histogram._bucket_counts = [
                    a + b for a, b in zip(histogram._bucket_counts,
                                          snap.bucket_counts)]
                histogram._count += snap.count
                histogram._sum += snap.sum
                histogram._min = min(histogram._min, snap.min)
                histogram._max = max(histogram._max, snap.max)


class ThroughputMeter:
    """Wall-clock rate and ETA helper for progress displays.

    Pure observation: reads ``perf_counter`` (injectable for tests),
    never any RNG.  Used by ``repro fleet --progress`` to derive
    chunks/s, encounters/s and the remaining-time estimate from the
    metrics stream instead of ad-hoc arithmetic at every call site.

    ``baseline`` handles checkpoint resume: a resumed campaign reports
    whole-campaign ``units_done`` (restored + this process), but this
    process only worked off ``units_done - baseline`` — rates and ETAs
    must be computed from *that*, or a resume would claim impossible
    throughput and a wildly optimistic ETA (the restored chunks cost
    this process zero seconds).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 baseline: float = 0.0):
        if baseline < 0 or not math.isfinite(baseline):
            raise ValueError(
                f"baseline must be finite and >= 0, got {baseline}")
        self._clock = clock
        self._t0 = clock()
        self._baseline = baseline

    @property
    def baseline(self) -> float:
        return self._baseline

    @property
    def elapsed_s(self) -> float:
        return max(self._clock() - self._t0, 0.0)

    def rate_per_s(self, units_done: float, *,
                   baseline: Optional[float] = None) -> float:
        """Average units per second since the meter started (0 if no time
        has passed).  ``units_done`` is the whole-campaign total; the
        meter's (or the override) baseline is subtracted first."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        offset = self._baseline if baseline is None else baseline
        return max(units_done - offset, 0.0) / elapsed

    def eta_s(self, units_done: float, units_total: float, *,
              baseline: Optional[float] = None) -> float:
        """Estimated seconds to finish; ``inf`` until any progress exists.

        The rate is measured over this process's own work
        (``units_done - baseline``), while the remaining work is the
        whole campaign's — which is exactly what the operator wants to
        know after a resume."""
        remaining = max(units_total - units_done, 0.0)
        if remaining == 0.0:
            return 0.0
        rate = self.rate_per_s(units_done, baseline=baseline)
        if rate <= 0.0:
            return math.inf
        return remaining / rate
