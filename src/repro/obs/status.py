"""Live campaign status: the flight recorder and its watchable artifact.

The journal (:mod:`repro.obs.events`) is the durable, replayable record;
this module is the *live* face of the same recorder.  A
:class:`FlightRecorder` owns one journal plus one atomically rewritten
``status.json`` — a small, self-contained snapshot of where the
campaign stands *right now*: progress fractions, fsum-pooled exposure,
per-budget utilisation with Poisson CIs (verdict included), throughput
and ETA from :class:`~repro.obs.metrics.ThroughputMeter`, fault and
quarantine counts, transport + bytes shipped.  ``repro watch PATH``
re-reads and re-renders that file on an interval, which is the whole
point of writing it atomically: a reader can never observe a torn
status, only the previous or the next complete one.

The recorder is pure observation.  It classifies chunk results through
:func:`~repro.obs.budget_monitor.classified_counts` — the *same* code
path the budget monitor uses — which is what makes the journal's
per-chunk ``type_counts`` replay to the manifest's budget table exactly.
Nothing here reads or advances an RNG stream, and a campaign without a
recorder never touches this module (the ``journal_event`` guard lives in
:mod:`repro.obs.events`).
"""

from __future__ import annotations

import json
import math
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..errors import CorruptArtifactError
from ..io.artifact import parse_artifact_text
from ..io.atomic import atomic_write_text
from .budget_monitor import BudgetMonitor, classified_counts
from .events import EventJournal, EventRecord, journal_event, recording_journal
from .metrics import ThroughputMeter

__all__ = ["STATUS_SCHEMA", "FlightRecorder", "read_status",
           "render_status", "format_bytes", "format_duration"]

STATUS_SCHEMA = "repro.campaign-status/v1"

JOURNAL_FILENAME = "journal.jsonl"
STATUS_FILENAME = "status.json"


def format_bytes(n: int) -> str:
    """``1234567`` → ``"1.2 MiB"`` (binary units, one decimal)."""
    n = int(n)
    if n < 1024:
        return f"{n} B"
    value = float(n)
    for unit in ("KiB", "MiB", "GiB", "TiB"):
        value /= 1024.0
        if value < 1024.0:
            return f"{value:.1f} {unit}"
    return f"{value:.1f} PiB"


def format_duration(seconds: Optional[float]) -> str:
    """Seconds → compact ``1h 02m`` / ``42s`` form (``"?"`` if unknown)."""
    if seconds is None or not math.isfinite(seconds):
        return "?"
    seconds = max(float(seconds), 0.0)
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m {secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"


def read_status(path: Union[str, Path]) -> Dict[str, object]:
    """Load + verify one ``status.json`` (typed errors only).

    The status file is a plain JSON snapshot (not a registered artifact
    schema — it is rewritten in place, never archival evidence), but it
    still rides the strict artifact parser and carries a ``schema`` tag,
    so corruption and foreign files fail with the usual typed taxonomy.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CorruptArtifactError(
            f"cannot read status file: {exc.strerror or exc}",
            source=path, schema=STATUS_SCHEMA) from exc
    doc = parse_artifact_text(text, source=path)
    if not isinstance(doc, dict):
        raise CorruptArtifactError(
            f"status file is not a JSON object but {type(doc).__name__}",
            source=path, schema=STATUS_SCHEMA)
    tag = doc.get("schema")
    if tag != STATUS_SCHEMA:
        raise CorruptArtifactError(
            f"expected schema {STATUS_SCHEMA!r}, found {tag!r}",
            source=path, schema=STATUS_SCHEMA)
    if "state" not in doc:
        raise CorruptArtifactError(
            "status file carries no 'state' field",
            source=path, schema=STATUS_SCHEMA)
    return doc


def render_status(doc: Dict[str, object]) -> str:
    """Human-readable rendering of one status snapshot (``repro watch``)."""
    from ..reporting.tables import render_table  # lazy: avoid cycles

    def num(key: str, default: float = 0.0) -> float:
        value = doc.get(key, default)
        return float(value) if isinstance(value, (int, float)) else default

    lines: List[str] = []
    lines.append(f"campaign {doc.get('state', '?')} — "
                 f"updated {doc.get('updated_utc', '?')}")
    chunks_done = int(num("chunks_done"))
    chunks_total = int(num("chunks_total"))
    resumed = int(num("chunks_resumed"))
    resumed_note = f" ({resumed} restored)" if resumed else ""
    lines.append(
        f"  chunks {chunks_done}/{chunks_total}{resumed_note}  |  "
        f"hours {num('hours_done'):g}/{num('hours_total'):g}")
    lines.append(
        f"  encounters {int(num('encounters_resolved'))}  "
        f"incidents {int(num('incidents_found'))}  "
        f"hard-braking demands {int(num('hard_braking_demands'))}")
    lines.append(
        f"  faults: {int(num('failures'))} failed, "
        f"{int(num('retries'))} retried, {int(num('timeouts'))} timed out, "
        f"{int(num('quarantined'))} quarantined; "
        f"pool rebuilds {int(num('pool_rebuilds'))}, "
        f"checkpoint commits {int(num('checkpoint_commits'))}")
    transport = doc.get("transport")
    shipped = format_bytes(int(num("bytes_shipped")))
    rate = num("rate_hours_per_s")
    eta = doc.get("eta_s")
    eta_s = float(eta) if isinstance(eta, (int, float)) else None
    lines.append(
        f"  transport {transport or '?'}, {shipped} shipped  |  "
        f"{rate:.3g} h/s  ETA {format_duration(eta_s)}")
    lines.append(
        f"  journal: {int(num('event_seq'))} events, "
        f"head {doc.get('journal_head') or '-'}")
    budget = doc.get("budget")
    if isinstance(budget, list) and budget:
        rows = []
        for row in budget:
            if not isinstance(row, dict):
                continue
            rows.append([
                row.get("budget_id", "?"),
                str(row.get("kind", "?")).replace("incident_type", "type")
                .replace("consequence_class", "class"),
                f"{float(row.get('observed', 0.0)):g}",
                f"{float(row.get('utilisation', 0.0)):.2%}",
                f"[{float(row.get('utilisation_lower', 0.0)):.2%}, "
                f"{float(row.get('utilisation_upper', 0.0)):.2%}]",
                str(row.get("verdict", "?")),
            ])
        confidence = num("confidence", 0.95)
        lines.append("")
        lines.append(render_table(
            ["budget", "kind", "observed", "utilisation",
             f"{confidence:.0%} CI", "verdict"],
            rows, title="Budget utilisation (live)"))
    return "\n".join(lines)


class FlightRecorder:
    """One campaign's journal + live status, driven by progress updates.

    Construct with the recorder *directory* (journal and status live
    side by side in it), optionally the campaign's goal set + incident
    types (without them the recorder still journals and tracks progress,
    it just cannot produce a budget table), and ``resume=True`` to
    continue an existing journal's chain — the same same-path
    discipline as ``--checkpoint``/``--resume``.  ``status_interval_s``
    throttles status rewrites (lifecycle transitions always force
    through); the journal itself is never throttled.

    Use as a context manager around the campaign::

        with FlightRecorder(out_dir, goals=goals, types=types) as rec:
            run_fleet(..., progress=rec.on_progress)

    Entering installs the journal process-wide (so the fleet runner,
    retry layer, checkpoint writer, budget monitor and accelerator
    emit into it via :func:`~repro.obs.events.journal_event`); exiting
    restores the previous journal, finalises the status state
    (``finished`` / ``interrupted`` / ``failed``) and closes the file.
    """

    def __init__(self, directory: Union[str, Path], *, goals=None,
                 types=None, confidence: float = 0.95,
                 resume: bool = False,
                 status_interval_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic):
        self._dir = Path(directory)
        self._journal = EventJournal.open(self._dir / JOURNAL_FILENAME,
                                          resume=resume)
        self._status_path = self._dir / STATUS_FILENAME
        self._types = None if types is None else list(types)
        self._monitor: Optional[BudgetMonitor] = None
        if goals is not None:
            self._monitor = BudgetMonitor(goals, confidence=confidence)
        self._confidence = confidence
        self._meter = ThroughputMeter(clock)
        self._clock = clock
        self._status_interval_s = float(status_interval_s)
        self._last_status_write: Optional[float] = None
        self._state = "running"
        self._scope = None
        self._last_budget_rows: Optional[List[Dict[str, object]]] = None
        # Progress totals (updated by on_progress / restored checkpoints).
        self._chunks_done = 0
        self._chunks_total = 0
        self._chunks_resumed = 0
        self._hours_done = 0.0
        self._hours_total = 0.0
        self._hours_resumed = 0.0
        self._encounters = 0
        self._incidents = 0
        self._hard_braking = 0
        self._transport: Optional[str] = None
        self._bytes_shipped = 0
        # Fault counters (updated by the journal observer, so emission
        # sites anywhere in the process feed the live status).
        self._failures = 0
        self._retries = 0
        self._timeouts = 0
        self._quarantined = 0
        self._pool_rebuilds = 0
        self._checkpoint_commits = 0
        self._journal.add_observer(self._observe_event)
        self._write_status(force=True)

    # -- plumbing ---------------------------------------------------------

    @property
    def journal(self) -> EventJournal:
        return self._journal

    @property
    def journal_path(self) -> Path:
        return self._journal.path

    @property
    def status_path(self) -> Path:
        return self._status_path

    @property
    def state(self) -> str:
        return self._state

    def __enter__(self) -> "FlightRecorder":
        self._scope = recording_journal(self._journal)
        self._scope.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                if self._state == "running":
                    self._state = "finished"
            elif issubclass(exc_type, KeyboardInterrupt):
                self._state = "interrupted"
            elif self._state == "running":
                self._state = "failed"
            self._write_status(force=True)
        finally:
            if self._scope is not None:
                self._scope.__exit__(exc_type, exc, tb)
                self._scope = None
            self._journal.close()
        return False

    # -- event-driven bookkeeping ----------------------------------------

    def _observe_event(self, record: EventRecord) -> None:
        # Chunk commits and budget verdicts are journalled from inside
        # :meth:`_record_chunk`, which ends with its own status write —
        # rewriting here too would turn one chunk into a dozen atomic
        # rewrites.  The observer only refreshes the status for events
        # that arrive *outside* that path (the retry layer, checkpoint
        # writer and campaign lifecycle emit directly).
        kind = record.kind
        write = True
        if kind == "chunk.failed":
            self._failures += 1
            if record.data.get("kind") == "timeout":
                self._timeouts += 1
        elif kind == "chunk.retry":
            self._retries += 1
        elif kind == "chunk.quarantined":
            self._quarantined += 1
        elif kind == "pool.rebuilt":
            self._pool_rebuilds += 1
        elif kind == "checkpoint.committed":
            self._checkpoint_commits += 1
            write = False  # the committing chunk's update writes next
        elif kind == "campaign.finished":
            self._state = "finished"
        elif kind == "campaign.failed":
            self._state = "failed"
        else:
            write = False
        if write:
            self._write_status(force=kind.startswith("campaign."))

    # -- campaign hooks ---------------------------------------------------

    def on_progress(self, update) -> None:
        """Fold one :class:`~repro.traffic.fleet.FleetProgress` update in.

        Emits ``chunk.committed`` (with the chunk's classified
        ``type_counts`` when incident types are known), feeds the budget
        monitor, and lets :meth:`BudgetMonitor.utilisation` journal any
        verdict transitions.  Safe to compose with a user progress
        callback — it only reads the update.
        """
        self._chunks_done = update.chunks_done
        self._chunks_total = update.chunks_total
        self._chunks_resumed = getattr(update, "chunks_resumed", 0)
        self._hours_done = update.hours_done
        self._hours_total = update.hours_total
        self._hours_resumed = getattr(update, "hours_resumed", 0.0)
        self._encounters = update.encounters_resolved
        self._incidents = update.incidents_found
        self._hard_braking = update.hard_braking_demands
        transport = getattr(update, "transport", None)
        if transport is not None:
            self._transport = transport
        self._bytes_shipped = getattr(update, "bytes_shipped",
                                      self._bytes_shipped)
        result = getattr(update, "result", None)
        if result is not None:
            self._record_chunk("chunk.committed", update.chunk_index, result)
        else:
            self._write_status()

    def observe_restored_checkpoint(self, path: Union[str, Path]) -> None:
        """Re-journal a restored checkpoint's banked chunks.

        On resume, a chunk may be banked in the checkpoint while its
        ``chunk.committed`` entry was lost to the kill (commit and
        journal append cannot be one atomic step).  Emitting
        ``chunk.restored`` — with the same classified counter payload —
        for *every* banked chunk closes that window: replay deduplicates
        by chunk index, so the journal always reconstructs exactly one
        record per chunk regardless of where the kill landed.
        """
        from ..traffic.checkpoint import \
            CampaignCheckpoint  # lazy: avoid cycles
        checkpoint = CampaignCheckpoint.load(Path(path))
        restored = checkpoint.completed_results()
        self._chunks_resumed = len(restored)
        self._hours_resumed = math.fsum(r.hours for r in restored.values())
        journal_event("campaign.resumed",
                      checkpoint=str(path),
                      chunk_indices=sorted(restored),
                      hours_resumed=self._hours_resumed)
        for index in sorted(restored):
            self._record_chunk("chunk.restored", index, restored[index])
        self._write_status(force=True)

    def _record_chunk(self, kind: str, index: int, result) -> None:
        data: Dict[str, object] = {
            "chunk_index": int(index),
            "hours": float(result.hours),
            "encounters": int(result.encounters_resolved),
            "records": int(result.num_records),
            "collisions": int(result.collision_count()),
            "hard_braking_demands": int(result.hard_braking_demands),
        }
        if self._types is not None:
            counts = classified_counts(result, self._types)
            data["type_counts"] = {k: int(v) for k, v in sorted(
                counts.items())}
            if self._monitor is not None:
                self._monitor.observe_counts(counts, result.hours)
        journal_event(kind, **data)
        self._write_status()

    # -- the status artifact ----------------------------------------------

    def status_document(self) -> Dict[str, object]:
        """The complete live snapshot as a plain JSON-safe dict."""
        rate = self._meter.rate_per_s(self._hours_done,
                                      baseline=self._hours_resumed)
        eta = self._meter.eta_s(self._hours_done, self._hours_total,
                                baseline=self._hours_resumed)
        return {
            "schema": STATUS_SCHEMA,
            "state": self._state,
            "updated_utc": datetime.now(timezone.utc).isoformat(),
            "chunks_done": self._chunks_done,
            "chunks_total": self._chunks_total,
            "chunks_resumed": self._chunks_resumed,
            "hours_done": self._hours_done,
            "hours_total": self._hours_total,
            "hours_resumed": self._hours_resumed,
            "encounters_resolved": self._encounters,
            "incidents_found": self._incidents,
            "hard_braking_demands": self._hard_braking,
            "failures": self._failures,
            "retries": self._retries,
            "timeouts": self._timeouts,
            "quarantined": self._quarantined,
            "pool_rebuilds": self._pool_rebuilds,
            "checkpoint_commits": self._checkpoint_commits,
            "transport": self._transport,
            "bytes_shipped": self._bytes_shipped,
            "rate_hours_per_s": rate,
            "eta_s": None if not math.isfinite(eta) else eta,
            "confidence": self._confidence,
            "event_seq": self._journal.seq,
            "journal_head": self._journal.head,
            "budget": self._last_budget_rows,
        }

    def _write_status(self, *, force: bool = False) -> None:
        # Atomic but not fsync'd: a torn status must be impossible, but
        # the status file is ephemeral — the journal is the durable leg.
        # Rewrites are throttled to one per ``status_interval_s`` (fast
        # chunk streams would otherwise spend more time rewriting status
        # than simulating); lifecycle transitions force through so the
        # final state is always on disk.
        now = self._clock()
        if not force and self._last_status_write is not None \
                and now - self._last_status_write < self._status_interval_s:
            return
        self._last_status_write = now
        if self._monitor is not None and self._monitor.exposure > 0:
            # Re-evaluating utilisation here (not per chunk) rides the
            # same throttle; it journals any budget-verdict transitions
            # as a side effect, so verdict evolution lands in the
            # journal at status cadence — and always once more at the
            # forced terminal write.
            report = self._monitor.utilisation()
            self._last_budget_rows = report.to_rows()
        atomic_write_text(
            self._status_path,
            json.dumps(self.status_document(), indent=2, sort_keys=True)
            + "\n",
            durable=False)
