"""Export telemetry to external viewer/scraper formats.

The flight recorder's outward-facing leg: anything the :mod:`repro.obs`
layer captured can leave the process in two industry formats without
adding a single dependency —

* **Chrome trace-event JSON** (``chrome://tracing``, Perfetto, speedscope):
  the aggregated :class:`~repro.obs.tracing.SpanNode` tree becomes
  nested ``"X"`` (complete) events on a synthetic timeline, and journal
  :class:`~repro.obs.events.EventRecord` entries become ``"i"``
  (instant) events on their own track with real wall-clock offsets.
  The span tree is *aggregated* (one node per name per parent, DESIGN
  §8), so the synthetic timeline shows each node once with its total
  duration — proportions and nesting are faithful, start offsets are
  reconstructed, not measured.
* **Prometheus text exposition** (version 0.0.4): every counter, gauge
  and histogram in a :class:`~repro.obs.metrics.MetricsSnapshot`,
  histograms with the conventional cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` series, instrument names sanitised to the
  Prometheus grammar.

Both writers go through :func:`~repro.io.atomic.atomic_write_text`, so
a half-written export can never be observed.  Exporting reads frozen
snapshots only — it cannot perturb a campaign, and touches no RNG.
"""

from __future__ import annotations

import json
import math
import re
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..io.atomic import atomic_write_text
from .events import EventRecord
from .metrics import (CounterSnapshot, GaugeSnapshot, HistogramSnapshot,
                      MetricsSnapshot)
from .tracing import SpanNode

__all__ = ["chrome_trace_events", "chrome_trace_json", "write_chrome_trace",
           "prometheus_text", "write_prometheus"]

_SPAN_PID = 1
_JOURNAL_PID = 2
_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _span_args(node: SpanNode) -> Dict[str, object]:
    args: Dict[str, object] = {"count": node.count,
                               "total_s": node.total_s}
    if node.count:
        args["min_s"] = node.min_s
        args["max_s"] = node.max_s
    return args


def _emit_span(node: SpanNode, start_us: float,
               out: List[Dict[str, object]]) -> None:
    out.append({
        "name": node.name or "<root>",
        "ph": "X", "cat": "span",
        "ts": round(start_us, 3),
        "dur": round(max(node.total_s, 0.0) * 1e6, 3),
        "pid": _SPAN_PID, "tid": 1,
        "args": _span_args(node),
    })
    cursor = start_us
    for name in sorted(node.children):
        child = node.children[name]
        _emit_span(child, cursor, out)
        cursor += max(child.total_s, 0.0) * 1e6


def _event_ts_s(record: EventRecord) -> Optional[float]:
    try:
        return datetime.fromisoformat(record.ts_utc).timestamp()
    except ValueError:
        return None


def chrome_trace_events(spans: Optional[SpanNode] = None,
                        events: Sequence[EventRecord] = (),
                        ) -> List[Dict[str, object]]:
    """The ``traceEvents`` list for one run.

    Spans land on pid 1 ("spans", synthetic timeline from the aggregated
    tree); journal events land on pid 2 ("journal") as instant events at
    their real wall-clock offsets from the first entry.  Either input
    may be omitted.
    """
    trace: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": _SPAN_PID, "tid": 1,
         "args": {"name": "spans (aggregated, synthetic timeline)"}},
        {"name": "process_name", "ph": "M", "pid": _JOURNAL_PID, "tid": 1,
         "args": {"name": "journal events"}},
    ]
    if spans is not None:
        cursor = 0.0
        # The root is the tracer's anonymous anchor; its children are
        # the real top-level spans, laid out sequentially from t=0.
        for name in sorted(spans.children):
            child = spans.children[name]
            _emit_span(child, cursor, trace)
            cursor += max(child.total_s, 0.0) * 1e6
    stamps = [(record, _event_ts_s(record)) for record in events]
    origin = min((ts for _, ts in stamps if ts is not None), default=None)
    for record, ts in stamps:
        offset_us = 0.0 if ts is None or origin is None \
            else (ts - origin) * 1e6
        trace.append({
            "name": record.kind,
            "ph": "i", "s": "p", "cat": "journal",
            "ts": round(offset_us, 3),
            "pid": _JOURNAL_PID, "tid": 1,
            "args": {"seq": record.seq, "ts_utc": record.ts_utc,
                     "data": dict(record.data)},
        })
    return trace


def chrome_trace_json(spans: Optional[SpanNode] = None,
                      events: Sequence[EventRecord] = ()) -> str:
    document = {"traceEvents": chrome_trace_events(spans, events),
                "displayTimeUnit": "ms"}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_chrome_trace(path: Union[str, Path],
                       spans: Optional[SpanNode] = None,
                       events: Sequence[EventRecord] = ()) -> Path:
    """Atomically write a Chrome trace-event file; returns the path."""
    path = Path(path)
    atomic_write_text(path, chrome_trace_json(spans, events))
    return path


# -- Prometheus text exposition --------------------------------------------

def _metric_name(name: str, prefix: str) -> str:
    flat = _METRIC_NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool) or isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format_value(int(bound) if float(bound).is_integer() else bound)


def prometheus_text(metrics: MetricsSnapshot, *,
                    prefix: str = "repro") -> str:
    """Render one metrics snapshot as Prometheus exposition text.

    Dotted instrument names flatten to underscores under ``prefix``
    (``sim.encounters`` → ``repro_sim_encounters``); histograms emit
    the conventional cumulative ``_bucket{le="…"}``/``_sum``/``_count``
    triple with a closing ``le="+Inf"`` bucket.
    """
    lines: List[str] = []
    for name in sorted(metrics.instruments):
        snap = metrics.instruments[name]
        flat = _metric_name(name, prefix)
        if isinstance(snap, CounterSnapshot):
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(snap.value)}")
        elif isinstance(snap, GaugeSnapshot):
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(snap.value)}")
        elif isinstance(snap, HistogramSnapshot):
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, bucket in zip(snap.bounds, snap.bucket_counts):
                cumulative += bucket
                lines.append(
                    f'{flat}_bucket{{le="{_format_bound(bound)}"}} '
                    f"{cumulative}")
            lines.append(f'{flat}_bucket{{le="+Inf"}} {snap.count}')
            lines.append(f"{flat}_sum {_format_value(snap.sum)}")
            lines.append(f"{flat}_count {snap.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: Union[str, Path], metrics: MetricsSnapshot, *,
                     prefix: str = "repro") -> Path:
    """Atomically write one Prometheus exposition file; returns the path."""
    path = Path(path)
    atomic_write_text(path, prometheus_text(metrics, prefix=prefix))
    return path
