"""Lightweight aggregated tracing spans.

``with tracer.span("resolve_batch"):`` records nested wall-clock timings
via ``time.perf_counter``.  Instead of an event list (which would grow
with the campaign), the tracer keeps an **aggregated span tree**: one
:class:`SpanNode` per distinct name *per parent*, accumulating call
count, total / min / max elapsed seconds.  That makes the tree

* bounded — a million chunk executions collapse into one node;
* mergeable — worker trees fold into the coordinator tree by summing
  counts and totals, the same associative discipline as the metrics
  snapshots (DESIGN §8);
* serialisable — ``to_dict`` emits the manifest's span-tree JSON.

When telemetry is disabled the hot paths never reach a tracer at all:
:func:`repro.obs.session.maybe_span` hands out a shared no-op context
manager whose enter/exit are empty (benchmarked in
``benchmarks/bench_telemetry_overhead.py``).

Timings are *observability*, not part of any determinism contract —
wall-clock totals differ run to run; the tree's structure and call
counts do not.  Nothing here touches an RNG stream.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = ["SpanNode", "Tracer"]


@dataclass
class SpanNode:
    """Aggregated statistics for one span name under one parent."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    children: Dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def add(self, elapsed_s: float) -> None:
        """Record one completed span of ``elapsed_s`` seconds."""
        if elapsed_s < 0.0:
            elapsed_s = 0.0  # perf_counter is monotonic; be safe anyway
        self.count += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)

    def merge(self, other: "SpanNode") -> None:
        """Fold another aggregated node (and its subtree) into this one.

        Counts and totals add; children merge recursively by name.  The
        operation is associative and commutative up to float summation,
        which is all observability needs — span *timings* are explicitly
        outside the determinism contract.
        """
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        for name, child in other.children.items():
            self.child(name).merge(child)

    def copy(self) -> "SpanNode":
        """Deep copy — snapshots must not alias the live tree."""
        return SpanNode(
            name=self.name, count=self.count, total_s=self.total_s,
            min_s=self.min_s, max_s=self.max_s,
            children={name: child.copy()
                      for name, child in self.children.items()})

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"count": self.count,
                                   "total_s": self.total_s}
        if self.count:
            data["min_s"] = self.min_s
            data["max_s"] = self.max_s
        if self.children:
            data["children"] = {name: child.to_dict()
                                for name, child in
                                sorted(self.children.items())}
        return data

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, object]) -> "SpanNode":
        count = int(data.get("count", 0))  # type: ignore[arg-type]
        node = cls(
            name=name, count=count,
            total_s=float(data.get("total_s", 0.0)),  # type: ignore[arg-type]
            min_s=float(data["min_s"]) if count else math.inf,  # type: ignore[arg-type]
            max_s=float(data["max_s"]) if count else 0.0,  # type: ignore[arg-type]
        )
        for child_name, child_data in dict(
                data.get("children", {})).items():  # type: ignore[call-overload]
            node.children[child_name] = cls.from_dict(child_name, child_data)
        return node

    def render(self, indent: int = 0) -> str:
        """Human-readable indented tree (used by the dossier summary)."""
        lines: List[str] = []
        if self.name:
            label = f"{'  ' * indent}{self.name}"
            if self.count:
                lines.append(f"{label}: {self.count} call(s), "
                             f"{self.total_s:.3f} s total")
            else:
                lines.append(label)
            indent += 1
        for name in sorted(self.children):
            lines.append(self.children[name].render(indent))
        return "\n".join(lines)


class _SpanContext:
    """The context manager a live span hands out (no-op lives elsewhere)."""

    __slots__ = ("_tracer", "_name", "_node", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._node: Optional[SpanNode] = None
        self._t0 = 0.0

    def __enter__(self) -> "_SpanContext":
        self._node = self._tracer._stack[-1].child(self._name)
        self._tracer._stack.append(self._node)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        stack = self._tracer._stack
        # Pop back to this span even if an inner span leaked (an inner
        # exception can only leave deeper nodes on the stack).
        while len(stack) > 1:
            node = stack.pop()
            if node is self._node:
                break
        assert self._node is not None
        self._node.add(elapsed)
        return False  # never swallow exceptions


class Tracer:
    """Nested wall-clock span recorder, one per telemetry session.

    The root node is anonymous (``name=""``) and never timed; spans
    attach below whatever span is currently open.  Re-entrant and
    exception-safe; **not** thread-safe — sessions are process-local by
    design, and the fleet runner gives each worker its own.
    """

    def __init__(self) -> None:
        self.root = SpanNode("")
        self._stack: List[SpanNode] = [self.root]

    def span(self, name: str) -> _SpanContext:
        """Open a named span: ``with tracer.span("resolve_batch"): ...``"""
        if not name:
            raise ValueError("span name must be non-empty")
        return _SpanContext(self, name)

    @property
    def depth(self) -> int:
        """Currently open span depth (0 when idle)."""
        return len(self._stack) - 1

    def snapshot(self) -> SpanNode:
        """Deep copy of the aggregated tree as recorded so far."""
        return self.root.copy()
