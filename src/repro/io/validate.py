"""Structural validation combinators for artifact payloads.

Every artifact schema registered with
:class:`~repro.io.artifact.ArtifactStore` declares a :class:`Spec` tree
describing the *shape* of its payload: which fields exist, their JSON
types, finiteness of numbers, nesting bounds.  The store checks the
whole tree **before any domain object is constructed**, so loaders see
only structurally sound data and corrupted artifacts surface as
:class:`~repro.errors.ArtifactValidationError` with a dotted field path
(``$.chunks.3.result.hours``) instead of a ``KeyError`` three stack
frames deep.

Two validation modes (DESIGN §10):

* **strict** — used for digest-bearing artifacts (written by the new
  boundary, therefore complete): every declared field, required *and*
  optional, must be present and no unknown fields may appear.
* **lenient** — used for legacy files written before the boundary
  existed: optional fields may be absent (loaders apply their
  documented defaults) and unknown fields are ignored.

Specs raise the internal :class:`SpecError`; the store converts it to
the public typed error with path/schema context attached.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "SpecError", "Spec", "Str", "Bool", "Int", "Number", "NullOr",
    "ListOf", "MapOf", "Record", "TaggedUnion", "Json", "validate",
]

#: JSON types a :class:`Json` subtree may contain.
_JSON_SCALARS = (str, int, float, bool, type(None))


class SpecError(ValueError):
    """Internal structural-validation failure (field path + message)."""

    def __init__(self, field: str, message: str):
        self.field = field
        self.message = message
        super().__init__(f"field {field}: {message}" if field else message)


def _type_name(value: object) -> str:
    return {
        str: "string", bool: "boolean", int: "integer", float: "number",
        list: "array", dict: "object", type(None): "null",
    }.get(type(value), type(value).__name__)


class Spec:
    """Base class: one node of a payload-shape description."""

    def check(self, value: object, field: str, strict: bool) -> None:
        raise NotImplementedError


class Str(Spec):
    """A JSON string."""

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, str):
            raise SpecError(field,
                            f"expected string, got {_type_name(value)}")


class Bool(Spec):
    """A JSON boolean."""

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, bool):
            raise SpecError(field,
                            f"expected boolean, got {_type_name(value)}")


class Int(Spec):
    """A JSON integer (bools rejected — they are a distinct type)."""

    def check(self, value: object, field: str, strict: bool) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(field,
                            f"expected integer, got {_type_name(value)}")


class Number(Spec):
    """A finite JSON number (int or float; bools and NaN/Inf rejected)."""

    def check(self, value: object, field: str, strict: bool) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(field,
                            f"expected number, got {_type_name(value)}")
        if isinstance(value, float) and not math.isfinite(value):
            raise SpecError(field, f"expected finite number, got {value!r}")


class NullOr(Spec):
    """``null`` or a value matching the wrapped spec."""

    def __init__(self, inner: Spec):
        self.inner = inner

    def check(self, value: object, field: str, strict: bool) -> None:
        if value is None:
            return
        self.inner.check(value, field, strict)


class ListOf(Spec):
    """A JSON array with homogeneous items matching the wrapped spec."""

    def __init__(self, item: Spec):
        self.item = item

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, list):
            raise SpecError(field,
                            f"expected array, got {_type_name(value)}")
        for index, item in enumerate(value):
            self.item.check(item, f"{field}[{index}]", strict)


class MapOf(Spec):
    """A JSON object with homogeneous values (and optionally keyed keys).

    ``keys`` is an optional ``(predicate, description)`` pair; keys
    failing the predicate are rejected (e.g. chunk indices must be
    decimal integer strings).
    """

    def __init__(self, value: Spec,
                 keys: Optional[Tuple[Callable[[str], bool], str]] = None):
        self.value = value
        self.keys = keys

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, dict):
            raise SpecError(field,
                            f"expected object, got {_type_name(value)}")
        for key, item in value.items():
            if not isinstance(key, str):  # pragma: no cover - JSON keys are str
                raise SpecError(field, f"non-string key {key!r}")
            if self.keys is not None and not self.keys[0](key):
                raise SpecError(f"{field}.{key}",
                                f"key {key!r} is not {self.keys[1]}")
            self.value.check(item, f"{field}.{key}", strict)


class Record(Spec):
    """A JSON object with a declared field set.

    ``required`` fields must always be present.  ``optional`` fields are
    the legacy-tolerated ones: they may be absent in lenient mode, but a
    digest-bearing (strict) artifact was written by a dumper that emits
    every field, so in strict mode they are required too and unknown
    fields are rejected.
    """

    def __init__(self, required: Mapping[str, Spec],
                 optional: Optional[Mapping[str, Spec]] = None):
        self.required: Dict[str, Spec] = dict(required)
        self.optional: Dict[str, Spec] = dict(optional or {})

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, dict):
            raise SpecError(field,
                            f"expected object, got {_type_name(value)}")
        for name in self.required:
            if name not in value:
                raise SpecError(field, f"missing required field {name!r}")
        if strict:
            for name in self.optional:
                if name not in value:
                    raise SpecError(field, f"missing field {name!r}")
            declared = self.required.keys() | self.optional.keys()
            for name in value:
                if name not in declared:
                    raise SpecError(field, f"unknown field {name!r}")
        for name, item in value.items():
            spec = self.required.get(name) or self.optional.get(name)
            if spec is not None:
                spec.check(item, f"{field}.{name}", strict)


class TaggedUnion(Spec):
    """A record whose shape is selected by a string tag field."""

    def __init__(self, tag: str, options: Mapping[str, Spec]):
        self.tag = tag
        self.options: Dict[str, Spec] = dict(options)

    def check(self, value: object, field: str, strict: bool) -> None:
        if not isinstance(value, dict):
            raise SpecError(field,
                            f"expected object, got {_type_name(value)}")
        tag = value.get(self.tag)
        if not isinstance(tag, str):
            raise SpecError(f"{field}.{self.tag}",
                            "missing or non-string tag")
        spec = self.options.get(tag)
        if spec is None:
            raise SpecError(
                f"{field}.{self.tag}",
                f"unknown {self.tag} {tag!r} (expected one of "
                f"{sorted(self.options)})")
        spec.check(value, field, strict)


class Json(Spec):
    """Any JSON value, iteratively checked for type sanity and bounded
    nesting (no ``RecursionError`` escapes from open-ended subtrees like
    span trees or metrics snapshots), with non-finite floats rejected."""

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth

    def check(self, value: object, field: str, strict: bool) -> None:
        stack = [(value, field, 0)]
        while stack:
            node, path, depth = stack.pop()
            if depth > self.max_depth:
                raise SpecError(path,
                                f"nesting deeper than {self.max_depth}")
            if isinstance(node, dict):
                for key, item in node.items():
                    if not isinstance(key, str):  # pragma: no cover
                        raise SpecError(path, f"non-string key {key!r}")
                    stack.append((item, f"{path}.{key}", depth + 1))
            elif isinstance(node, list):
                for index, item in enumerate(node):
                    stack.append((item, f"{path}[{index}]", depth + 1))
            elif isinstance(node, float) and not math.isfinite(node):
                raise SpecError(path,
                                f"expected finite number, got {node!r}")
            elif not isinstance(node, _JSON_SCALARS):
                raise SpecError(path,
                                f"non-JSON value of type "
                                f"{type(node).__name__}")


def validate(payload: object, spec: Spec, *, strict: bool = False,
             root: str = "$") -> None:
    """Check ``payload`` against ``spec``; raises :class:`SpecError`."""
    spec.check(payload, root, strict)
