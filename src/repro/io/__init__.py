"""repro.io — the hardened artifact I/O boundary (DESIGN §10).

Everything configuration-managed that this package reads from or writes
to disk (campaign checkpoints, run manifests, stored goal sets, inline
CLI JSON) goes through this package:

* :mod:`.atomic` — the single temp-file + fsync + ``os.replace``
  implementation of atomic durable writes;
* :mod:`.validate` — structural Spec combinators checked before any
  domain object is constructed;
* :mod:`.artifact` — the schema registry, sha256 payload digests
  (written on save, verified on load, optional-on-read for legacy
  files), versioned migration hooks, and the typed-error guarantee the
  ``fuzz`` test tier enforces.

``json.loads`` / ``json.load`` call sites are *forbidden* outside this
package (a guard test greps for them): raw parsing without typed error
conversion is exactly the bug class this boundary exists to remove.
"""

from ..errors import (ArtifactError, ArtifactValidationError,
                      CorruptArtifactError, ReproError,
                      SchemaMismatchError, SchemaVersionError)
from .artifact import (ARTIFACTS, DIGEST_KEY, ArtifactSchema, ArtifactStore,
                       canonical_payload_text, load_builtin_schemas,
                       parse_artifact_bytes, parse_artifact_text,
                       parse_schema_tag, payload_digest, register_artifact)
from .atomic import atomic_write_text
from .validate import (Bool, Int, Json, ListOf, MapOf, NullOr, Number,
                       Record, Spec, SpecError, Str, TaggedUnion, validate)

__all__ = [
    # errors (re-exported for convenience at the boundary)
    "ReproError", "ArtifactError", "CorruptArtifactError",
    "SchemaMismatchError", "SchemaVersionError", "ArtifactValidationError",
    # artifact store
    "ARTIFACTS", "DIGEST_KEY", "ArtifactSchema", "ArtifactStore",
    "register_artifact", "load_builtin_schemas", "canonical_payload_text",
    "payload_digest", "parse_artifact_text", "parse_artifact_bytes",
    "parse_schema_tag",
    # atomic writes
    "atomic_write_text",
    # validation combinators
    "Spec", "SpecError", "Str", "Bool", "Int", "Number", "NullOr",
    "ListOf", "MapOf", "Record", "TaggedUnion", "Json", "validate",
]
