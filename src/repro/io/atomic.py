"""Atomic, durable file writes — the single implementation.

``traffic/checkpoint.py`` and ``obs/manifest.py`` used to hand-roll
variations of the temp-file-plus-rename dance; this module is the one
place the pattern lives now (DESIGN §10).  The contract:

* the temp file is created *in the destination directory* (``os.replace``
  is only atomic within one filesystem);
* content is flushed and ``fsync``'d before the rename, so a crash at
  any point leaves either the previous complete file or the new complete
  file on disk — never a torn one;
* the temp file is unlinked on any failure, so no ``*.tmp`` residue
  accumulates next to checkpoints.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: "Path | str", text: str, *,
                      encoding: str = "utf-8", durable: bool = True) -> Path:
    """Atomically replace ``path`` with ``text``.

    Creates parent directories as needed.  With ``durable`` (the
    default) the temp file is ``fsync``'d before the rename; pass
    ``False`` only for scratch outputs where torn-write protection
    matters but durability across power loss does not.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced/removed
            pass
        raise
    return path
