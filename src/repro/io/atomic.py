"""Atomic, durable file writes — the single implementation.

``traffic/checkpoint.py`` and ``obs/manifest.py`` used to hand-roll
variations of the temp-file-plus-rename dance; this module is the one
place the pattern lives now (DESIGN §10).  The contract:

* the temp file is created *in the destination directory* (``os.replace``
  is only atomic within one filesystem);
* content is flushed and ``fsync``'d before the rename, so a crash at
  any point leaves either the previous complete file or the new complete
  file on disk — never a torn one;
* the temp file is unlinked on any failure, so no ``*.tmp`` residue
  accumulates next to checkpoints.

The one failure the unlink cannot cover is a hard crash (SIGKILL, power
loss) *between* ``mkstemp`` and ``os.replace``: the orphaned temp file
survives.  That is why every temp name starts with
:data:`ORPHAN_TMP_PREFIX` and ends with :data:`ORPHAN_TMP_SUFFIX` — the
recognizable signature ``repro fsck`` sweeps (:func:`iter_orphan_tmp`).
Sweeping is provably safe: a temp file is never referenced by anything
until the rename, and after the rename it no longer exists.

Fault injection: the write path is instrumented with the
``REPRO_FS_CHAOS`` point ``atomic-write`` (DESIGN §15), simulating
disk-full before any byte lands (``enospc``), a failed fsync after a
complete write (``eio``), a torn write that dies mid-payload and leaves
its orphan temp behind (``torn``), and the durability lie where the
rename landed but the caller is told it failed (``shortfsync``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_write_text", "iter_orphan_tmp", "sweep_orphan_tmp",
           "ORPHAN_TMP_PREFIX", "ORPHAN_TMP_SUFFIX"]

#: Every in-flight temp file is ``.repro-tmp.<destname>.<random>.tmp`` —
#: the leading dot keeps it out of artifact globs (``j-*.json`` etc.),
#: the fixed prefix/suffix pair makes orphans sweepable by signature.
ORPHAN_TMP_PREFIX = ".repro-tmp."
ORPHAN_TMP_SUFFIX = ".tmp"


def atomic_write_text(path: "Path | str", text: str, *,
                      encoding: str = "utf-8", durable: bool = True) -> Path:
    """Atomically replace ``path`` with ``text``.

    Creates parent directories as needed.  With ``durable`` (the
    default) the temp file is ``fsync``'d before the rename; pass
    ``False`` only for scratch outputs where torn-write protection
    matters but durability across power loss does not.
    """
    # Imported lazily: repro.io initialises before repro.testing can
    # (testing.fuzz needs the artifact boundary), so a module-level
    # import here would be circular.
    from ..testing.chaos import fs_chaos, fs_fault

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fault = fs_chaos("atomic-write")
    if fault == "enospc":
        raise fs_fault(fault, "atomic-write")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent),
        prefix=ORPHAN_TMP_PREFIX + path.name + ".",
        suffix=ORPHAN_TMP_SUFFIX)
    leak_tmp = False
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            if fault == "torn":
                # A prefix lands, then the process "dies" before it can
                # clean up: the orphan temp file is the crash residue
                # fsck must sweep.  The destination is untouched.
                handle.write(text[:max(1, len(text) // 2)])
                handle.flush()
                leak_tmp = True
                raise fs_fault(fault, "atomic-write")
            handle.write(text)
            handle.flush()
            if durable:
                if fault == "eio":
                    raise fs_fault(fault, "atomic-write")
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if fault == "shortfsync":
            # The rename landed; the durability step "failed".  The
            # caller sees an error while the file is complete — retries
            # must be idempotent against exactly this.
            raise fs_fault(fault, "atomic-write")
    except BaseException:
        if not leak_tmp:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already replaced/removed
                pass
        raise
    return path


def iter_orphan_tmp(root: "Path | str") -> Iterator[Path]:
    """Every orphaned atomic-write temp file under ``root``, sorted.

    Matches the :data:`ORPHAN_TMP_PREFIX`/``SUFFIX`` signature only —
    nothing else in a spool or output tree starts with ``.repro-tmp.``.
    """
    root = Path(root)
    yield from sorted(root.rglob(ORPHAN_TMP_PREFIX + "*"
                                 + ORPHAN_TMP_SUFFIX))


def sweep_orphan_tmp(root: "Path | str") -> "list[Path]":
    """Unlink every orphaned temp file under ``root``; returns them.

    Safe by construction (see module docstring): an orphan temp was
    never renamed into place, so no artifact can reference it.
    """
    swept = []
    for path in iter_orphan_tmp(root):
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced by a writer
            continue
        swept.append(path)
    return swept
