"""The hardened artifact I/O boundary: schema registry + digest-verified
loaders (DESIGN §10).

Every configuration-managed document this package reads or writes —
campaign checkpoints, run manifests, stored goal sets — crosses this
boundary.  The contract it enforces:

* **Typed failures only.**  A loader either returns a fully constructed
  object or raises a subclass of :class:`~repro.errors.ArtifactError`
  with source/schema/field context — never a bare ``KeyError`` /
  ``TypeError`` / ``JSONDecodeError`` / ``RecursionError``.  The
  ``fuzz`` test tier drives ≥500 deterministic corruptions per schema
  against exactly this promise.
* **Integrity is detected, not mis-parsed.**  ``save`` embeds a
  ``payload_sha256`` digest over the canonical payload; ``load``
  verifies it, so truncation and bit-flips surface as
  :class:`~repro.errors.CorruptArtifactError` instead of half-parsed
  campaigns.  The digest is *optional on read*: files written before
  the boundary existed (no digest field) still load, in lenient
  validation mode.
* **Structure before construction.**  The registered
  :class:`~repro.io.validate.Spec` tree is checked against the whole
  payload before the loader runs, so domain constructors only ever see
  structurally sound data.
* **Versioned schemas with migrations.**  Tags are ``name/vN``; a
  registered chain of single-step migration hooks upgrades old payloads
  (``v1 → v2 → …``) before validation, so an old
  ``repro.campaign-checkpoint/v1`` keeps loading after the schema moves
  on.  Unknown or missing tags fail fast with
  :class:`~repro.errors.SchemaMismatchError` naming expected and found;
  unreachable versions with :class:`~repro.errors.SchemaVersionError`.
* **Atomic durable writes** via :func:`~repro.io.atomic.atomic_write_text`.

Modules owning an artifact register its schema at import time against
the process-wide :data:`ARTIFACTS` store; :func:`load_builtin_schemas`
imports all of them (useful for the fuzz tier and tooling).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Mapping, Optional, Tuple)

from ..errors import (ArtifactError, ArtifactValidationError,
                      CorruptArtifactError, SchemaMismatchError,
                      SchemaVersionError)
from .atomic import atomic_write_text
from .validate import Spec, SpecError

__all__ = [
    "DIGEST_KEY", "ArtifactSchema", "ArtifactStore", "ARTIFACTS",
    "register_artifact", "canonical_payload_text", "payload_digest",
    "parse_artifact_text", "parse_artifact_bytes", "parse_schema_tag",
    "load_builtin_schemas",
]

#: Envelope key holding the sha256 digest of the canonical payload.
DIGEST_KEY = "payload_sha256"

_TAG_RE = re.compile(r"^(?P<name>[A-Za-z0-9_.\-]+)/v(?P<version>[0-9]+)$")


def parse_schema_tag(tag: str) -> Tuple[str, int]:
    """Split ``"repro.run-manifest/v1"`` into ``("repro.run-manifest", 1)``.

    Raises :class:`ValueError` on malformed tags (callers convert).
    """
    match = _TAG_RE.match(tag)
    if match is None:
        raise ValueError(f"malformed schema tag {tag!r}")
    return match.group("name"), int(match.group("version"))


def canonical_payload_text(payload: object, *,
                           source: Optional[object] = None) -> str:
    """The canonical (digest-input) JSON form of a payload.

    Sorted keys, compact separators, raw UTF-8, NaN/Infinity forbidden —
    independent of the pretty form written to disk, so re-indenting a
    file by hand does not invalidate its digest, but any value change
    does.
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=False, allow_nan=False)
    except ValueError as exc:  # non-finite float (or circular structure)
        raise ArtifactValidationError(
            f"payload is not canonical JSON: {exc}", source=source) from exc
    except RecursionError as exc:
        raise CorruptArtifactError(
            "payload nesting too deep to canonicalise",
            source=source) from exc
    except TypeError as exc:
        raise ArtifactValidationError(
            f"payload contains non-JSON values: {exc}",
            source=source) from exc


def payload_digest(payload: object, *,
                   source: Optional[object] = None) -> str:
    """``"sha256:<hex>"`` over the canonical payload text."""
    text = canonical_payload_text(payload, source=source)
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-finite number token {token!r}")


def parse_artifact_text(text: str, *,
                        source: Optional[object] = None) -> object:
    """Parse artifact JSON text; every failure is a typed artifact error.

    Rejects ``NaN`` / ``Infinity`` tokens (they silently become floats
    under stock ``json.loads`` and then poison every downstream
    comparison) and converts nesting-bomb ``RecursionError`` into
    :class:`~repro.errors.CorruptArtifactError`.
    """
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except CorruptArtifactError:
        raise
    except RecursionError as exc:
        raise CorruptArtifactError("JSON nesting too deep",
                                   source=source) from exc
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(f"invalid JSON: {exc}",
                                   source=source) from exc
    except ValueError as exc:  # _reject_constant
        raise CorruptArtifactError(f"invalid JSON: {exc}",
                                   source=source) from exc


def parse_artifact_bytes(data: bytes, *,
                         source: Optional[object] = None) -> object:
    """Decode + parse raw artifact bytes (bad encodings are typed too)."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptArtifactError(f"invalid UTF-8: {exc}",
                                   source=source) from exc
    return parse_artifact_text(text, source=source)


@dataclass(frozen=True)
class ArtifactSchema:
    """One registered artifact kind: shape, codec, migrations, identity.

    ``load`` receives a validated payload dict (``schema`` tag and
    digest already stripped) and returns the domain object; ``dump`` is
    its inverse (the ``schema`` key, if emitted, is overwritten by the
    store).  ``migrations`` maps an old version ``n`` to a hook
    upgrading a v``n`` payload to v``n+1``.  ``example`` builds a small
    deterministic instance (the fuzz tier corrupts its serialised form);
    ``equal`` compares two loaded instances (defaults to ``==``);
    ``volatile`` names top-level payload fields that legitimately change
    between dumps (e.g. an ``updated_utc`` stamp) and are excluded from
    bit-for-bit round-trip comparisons.
    """

    name: str
    version: int
    spec: Spec
    load: Callable[[Mapping[str, Any]], object]
    dump: Callable[[Any], Dict[str, object]]
    label: str = "artifact"
    migrations: Mapping[int, Callable[[Dict[str, object]],
                                      Dict[str, object]]] = \
        field(default_factory=dict)
    example: Optional[Callable[[], object]] = None
    equal: Optional[Callable[[object, object], bool]] = None
    volatile: Tuple[str, ...] = ()

    @property
    def tag(self) -> str:
        return f"{self.name}/v{self.version}"

    def instances_equal(self, a: object, b: object) -> bool:
        if self.equal is not None:
            return bool(self.equal(a, b))
        return bool(a == b)


class ArtifactStore:
    """Schema registry + digest-verified load/save for artifacts."""

    def __init__(self) -> None:
        self._schemas: Dict[str, ArtifactSchema] = {}

    # -- registry ---------------------------------------------------------

    def register(self, schema: ArtifactSchema) -> ArtifactSchema:
        existing = self._schemas.get(schema.name)
        if existing is not None and existing is not schema:
            raise ValueError(
                f"artifact schema {schema.name!r} already registered")
        self._schemas[schema.name] = schema
        return schema

    def get(self, name: str) -> ArtifactSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise ValueError(
                f"no artifact schema registered under {name!r} "
                f"(known: {sorted(self._schemas)})") from None

    def schemas(self) -> Tuple[ArtifactSchema, ...]:
        return tuple(self._schemas[name] for name in sorted(self._schemas))

    # -- loading ----------------------------------------------------------

    def load_dict(self, data: object, name: str, *,
                  require_tag: bool = True,
                  source: Optional[object] = None) -> object:
        """Validate + construct from an already-parsed document.

        Digest verification runs iff the document carries one (strict
        mode); legacy digest-free documents validate leniently.
        """
        schema = self.get(name)
        if not isinstance(data, Mapping):
            raise ArtifactValidationError(
                f"expected a JSON object at top level, got "
                f"{type(data).__name__}",
                source=source, schema=schema.tag)
        payload: Dict[str, object] = dict(data)
        strict = self._verify_digest(payload, schema, source)
        version = self._check_tag(payload, schema, require_tag, source)
        payload = self._migrate(payload, schema, version, source)
        try:
            schema.spec.check(payload, "$", strict)
        except SpecError as err:
            raise ArtifactValidationError(
                str(err), source=source, schema=schema.tag,
                field=err.field) from None
        try:
            return schema.load(payload)
        except ArtifactError:
            raise
        except RecursionError as exc:
            raise CorruptArtifactError(
                f"{schema.label} nesting too deep to load",
                source=source, schema=schema.tag) from exc
        except Exception as exc:
            raise ArtifactValidationError(
                f"invalid {schema.label} content: {exc}",
                source=source, schema=schema.tag) from exc

    def load_text(self, text: str, name: str, *,
                  require_tag: bool = True,
                  source: Optional[object] = None) -> object:
        data = parse_artifact_text(text, source=source)
        return self.load_dict(data, name, require_tag=require_tag,
                              source=source)

    def load_bytes(self, data: bytes, name: str, *,
                   require_tag: bool = True,
                   source: Optional[object] = None) -> object:
        parsed = parse_artifact_bytes(data, source=source)
        return self.load_dict(parsed, name, require_tag=require_tag,
                              source=source)

    def load(self, path: "Path | str", name: str, *,
             require_tag: bool = True) -> object:
        """Read + verify + construct one artifact file."""
        path = Path(path)
        schema = self.get(name)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CorruptArtifactError(
                f"cannot read {schema.label}: {exc.strerror or exc}",
                source=path, schema=schema.tag) from exc
        return self.load_bytes(raw, name, require_tag=require_tag,
                               source=path)

    # -- dumping ----------------------------------------------------------

    def dump_dict(self, name: str, obj: object, *,
                  source: Optional[object] = None) -> Dict[str, object]:
        """Tagged + digest-signed envelope for one object.

        The dumper's output is round-tripped through canonical JSON
        first, so tuples normalise to lists and the digest is computed
        over exactly what a reader will parse back; it is then validated
        strictly, guaranteeing everything the boundary writes reloads.
        """
        schema = self.get(name)
        payload = dict(schema.dump(obj))
        payload["schema"] = schema.tag
        text = canonical_payload_text(payload, source=source)
        payload = json.loads(text)
        body = dict(payload)
        body.pop("schema", None)
        try:
            schema.spec.check(body, "$", True)
        except SpecError as err:
            raise ArtifactValidationError(
                f"refusing to write invalid {schema.label}: {err}",
                source=source, schema=schema.tag, field=err.field) from None
        payload[DIGEST_KEY] = "sha256:" + hashlib.sha256(
            text.encode("utf-8")).hexdigest()
        return payload

    def dump_text(self, name: str, obj: object, *,
                  source: Optional[object] = None) -> str:
        """The pretty on-disk form (sorted keys, indent 2, newline)."""
        envelope = self.dump_dict(name, obj, source=source)
        return json.dumps(envelope, indent=2, sort_keys=True) + "\n"

    def save(self, path: "Path | str", name: str, obj: object) -> Path:
        """Atomically write one digest-signed artifact file."""
        path = Path(path)
        return atomic_write_text(path, self.dump_text(name, obj,
                                                      source=path))

    # -- internals --------------------------------------------------------

    def _verify_digest(self, payload: Dict[str, object],
                       schema: ArtifactSchema,
                       source: Optional[object]) -> bool:
        """Pop + verify the digest; returns True (strict) if one was
        present, False (lenient / legacy) otherwise."""
        if DIGEST_KEY not in payload:
            return False
        claimed = payload.pop(DIGEST_KEY)
        if not isinstance(claimed, str):
            raise CorruptArtifactError(
                f"{DIGEST_KEY} must be a string, got "
                f"{type(claimed).__name__}",
                source=source, schema=schema.tag)
        actual = payload_digest(payload, source=source)
        if claimed != actual:
            raise CorruptArtifactError(
                f"payload digest mismatch — {schema.label} is corrupt "
                f"(truncated or modified): file claims {claimed}, "
                f"content hashes to {actual}",
                source=source, schema=schema.tag)
        return True

    def _check_tag(self, payload: Dict[str, object],
                   schema: ArtifactSchema, require_tag: bool,
                   source: Optional[object]) -> int:
        """Pop + check the ``schema`` tag; returns the found version."""
        tag = payload.pop("schema", None)
        if tag is None:
            if require_tag:
                raise SchemaMismatchError(
                    f"missing schema tag in {schema.label} "
                    f"(expected {schema.tag!r})",
                    source=source, schema=schema.tag)
            return schema.version  # legacy tagless document
        if isinstance(tag, str):
            try:
                found_name, found_version = parse_schema_tag(tag)
            except ValueError:
                found_name = None
                found_version = None
            if found_name == schema.name:
                assert found_version is not None
                return found_version
        raise SchemaMismatchError(
            f"unsupported {schema.label} schema {tag!r} "
            f"(expected {schema.tag!r})",
            source=source, schema=schema.tag)

    def _migrate(self, payload: Dict[str, object], schema: ArtifactSchema,
                 version: int,
                 source: Optional[object]) -> Dict[str, object]:
        if version > schema.version:
            raise SchemaVersionError(
                f"{schema.label} schema {schema.name}/v{version} is newer "
                f"than this build supports ({schema.tag}); upgrade the "
                f"toolkit to read it",
                source=source, schema=schema.tag)
        while version < schema.version:
            hook = schema.migrations.get(version)
            if hook is None:
                raise SchemaVersionError(
                    f"no migration path from {schema.name}/v{version} to "
                    f"{schema.tag}",
                    source=source, schema=schema.tag)
            try:
                payload = dict(hook(payload))
            except ArtifactError:
                raise
            except Exception as exc:
                raise SchemaVersionError(
                    f"migration {schema.name}/v{version} → "
                    f"v{version + 1} failed: {exc}",
                    source=source, schema=schema.tag) from exc
            version += 1
        return payload


#: The process-wide registry every built-in artifact registers against.
ARTIFACTS = ArtifactStore()


def register_artifact(schema: ArtifactSchema) -> ArtifactSchema:
    """Register ``schema`` with the default :data:`ARTIFACTS` store."""
    return ARTIFACTS.register(schema)


def load_builtin_schemas() -> Tuple[ArtifactSchema, ...]:
    """Import every module that registers a built-in artifact schema and
    return the full registry (used by the fuzz tier and tooling)."""
    from ..core import serialize  # noqa: F401  (registers on import)
    from ..obs import events  # noqa: F401
    from ..obs import manifest  # noqa: F401
    from ..service import jobs  # noqa: F401
    from ..service import journal  # noqa: F401
    from ..service import store  # noqa: F401
    from ..traffic import checkpoint  # noqa: F401
    from ..traffic import records  # noqa: F401
    return ARTIFACTS.schemas()
