"""Reporting: plain-text tables and regenerated paper figures."""

from .dossier import build_dossier
from .figures import (figure1_waterfall, figure2_unified_axis,
                      figure3_risk_norm, figure4_tree, figure5_assignment,
                      log_bar)
from .tables import format_rate, render_bar, render_table

__all__ = [
    "render_table", "render_bar", "format_rate", "log_bar",
    "figure1_waterfall", "figure2_unified_axis", "figure3_risk_norm",
    "figure4_tree", "figure5_assignment",
    "build_dossier",
]
