"""Text renderings of the paper's figures from live library objects.

Each ``figure*`` function regenerates the *content* of the corresponding
paper figure from the data structures that now implement it, as aligned
text (log-scale bars for the frequency axes).  Benchmarks call these so
`pytest benchmarks/ --benchmark-only` output visibly reproduces the paper;
EXPERIMENTS.md embeds the same renderings.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..core.allocation import Allocation
from ..core.risk_norm import QuantitativeRiskNorm
from ..core.safety_goals import SafetyGoalSet
from ..core.severity import SeverityDomain
from ..core.taxonomy import IncidentTaxonomy
from ..hara.asil import RiskReductionWaterfall
from .tables import format_rate, render_table

__all__ = [
    "log_bar",
    "figure1_waterfall",
    "figure2_unified_axis",
    "figure3_risk_norm",
    "figure4_tree",
    "figure5_assignment",
]


def log_bar(rate: float, *, floor: float = 1e-10, ceiling: float = 1.0,
            width: int = 40) -> str:
    """A log-scale bar: longer = more frequent (the Fig. 2/3 y-axis).

    Rates at or below ``floor`` render empty; the scale spans
    ``log10(ceiling/floor)`` decades over ``width`` characters.
    """
    if floor <= 0 or ceiling <= floor:
        raise ValueError("need 0 < floor < ceiling")
    if rate <= floor:
        return "·" * width
    position = math.log10(min(rate, ceiling) / floor) / math.log10(ceiling / floor)
    filled = max(1, round(width * position))
    return "█" * filled + "·" * (width - filled)


def figure1_waterfall(waterfalls: Sequence[RiskReductionWaterfall]) -> str:
    """Fig. 1: acceptable risk vs severity with per-HE risk-reduction stacks."""
    rows = []
    for waterfall in waterfalls:
        rows.append([
            f"S{int(waterfall.severity)}",
            format_rate(waterfall.raw_frequency),
            format_rate(waterfall.acceptable_frequency),
            f"{waterfall.exposure_reduction:.1f}",
            f"{waterfall.controllability_reduction:.1f}",
            f"{waterfall.required_ee_reduction:.1f}",
            str(waterfall.asil),
        ])
    return render_table(
        ["severity", "raw f (/h)", "acceptable f (/h)",
         "exposure cut (dec)", "controllability cut (dec)",
         "E/E reduction needed (dec)", "ASIL (Table 4)"],
        rows,
        title="Fig. 1 — ISO 26262 risk model: reductions stack from raw "
              "frequency down to acceptance",
    )


def figure2_unified_axis(norm: QuantitativeRiskNorm) -> str:
    """Fig. 2: the unified quality+safety acceptance curve."""
    lines = ["Fig. 2 — acceptable frequency vs severity "
             "(quality left, safety right)", ""]
    for cls in norm.classes():
        domain = "QUALITY" if cls.domain is SeverityDomain.QUALITY else "SAFETY "
        lines.append(
            f"{cls.class_id:>4} {domain} {log_bar(cls.budget.rate)} "
            f"{format_rate(cls.budget.rate)} /h  — {cls.severity.example}")
    return "\n".join(lines)


def figure3_risk_norm(allocation: Allocation) -> str:
    """Fig. 3: per-class budgets with stacked incident-type contributions."""
    norm = allocation.norm
    lines = [f"Fig. 3 — risk norm {norm.name!r}: consequence-class budgets "
             "and incident contributions", ""]
    for class_id in norm.class_ids:
        budget = norm.budget(class_id)
        load = allocation.class_load(class_id)
        lines.append(f"{class_id}: budget {format_rate(budget.rate)} /h, "
                     f"allocated {format_rate(load.rate)} /h "
                     f"({allocation.utilisation(class_id):.0%})")
        lines.append(f"     {log_bar(budget.rate)}  (budget)")
        lines.append(f"     {log_bar(load.rate)}  (allocated)")
        for itype in allocation.types:
            contribution = allocation.contribution(class_id, itype.type_id)
            if contribution.is_zero():
                continue
            lines.append(
                f"       {itype.type_id}: {format_rate(contribution.rate)} /h "
                f"({itype.split.fraction(class_id):.0%} of f_{itype.type_id})")
        lines.append("")
    return "\n".join(lines)


def figure4_tree(taxonomy: IncidentTaxonomy) -> str:
    """Fig. 4: the MECE classification tree plus its certificate."""
    certificate = taxonomy.mece_certificate()
    return "\n".join([
        "Fig. 4 — incident classification",
        "",
        taxonomy.render(),
        "",
        certificate.summary(),
    ])


def figure5_assignment(goals: SafetyGoalSet) -> str:
    """Fig. 5: incident-frequency assignment matrix plus the SG texts."""
    allocation = goals.allocation
    matrix, class_ids, type_ids = allocation.contribution_matrix()
    rows = []
    for k, type_id in enumerate(type_ids):
        row: List[str] = [type_id,
                          format_rate(allocation.budget(type_id).rate)]
        for j in range(len(class_ids)):
            row.append(format_rate(matrix[j, k]) if matrix[j, k] > 0 else "–")
        rows.append(row)
    total_row = ["Σ (class load)", ""]
    budget_row = ["class budget", ""]
    for j, class_id in enumerate(class_ids):
        total_row.append(format_rate(allocation.class_load(class_id).rate))
        budget_row.append(format_rate(allocation.norm.budget(class_id).rate))
    rows.append(total_row)
    rows.append(budget_row)
    table = render_table(
        ["incident type", "f_I (/h)", *class_ids],
        rows,
        title="Fig. 5 — assignment of incident frequencies to consequence "
              "classes",
    )
    return table + "\n\n" + goals.render_all()
