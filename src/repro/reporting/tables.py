"""Plain-text table rendering shared by benchmarks and examples.

No third-party table dependency: benchmarks must run in a bare
environment, and the output format (GitHub-flavoured markdown pipes)
drops straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "render_bar", "format_rate"]


def format_rate(rate: float, *, digits: int = 3) -> str:
    """Scientific notation tuned for frequency budgets (1e-7-style)."""
    if rate == 0.0:
        return "0"
    return f"{rate:.{digits}g}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: Optional[str] = None) -> str:
    """A markdown pipe table with aligned columns."""
    if not headers:
        raise ValueError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells for {len(headers)} headers")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "| " + " | ".join(
        cell.ljust(width) for cell, width in zip(cells[0], widths)) + " |"
    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines.append(header_line)
    lines.append(separator)
    for row in cells[1:]:
        lines.append("| " + " | ".join(
            cell.ljust(width) for cell, width in zip(row, widths)) + " |")
    return "\n".join(lines)


def render_bar(value: float, maximum: float, *, width: int = 40,
               fill: str = "█", empty: str = "·") -> str:
    """A proportional ASCII bar (used for budget-utilisation displays)."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    if width < 1:
        raise ValueError("width must be >= 1")
    filled = round(width * min(max(value / maximum, 0.0), 1.0))
    return fill * filled + empty * (width - filled)
