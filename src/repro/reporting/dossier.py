"""The safety-case dossier: one document from all artefacts.

Assembles the complete design-time + verification story for one QRN
safety case into a single plain-text dossier — the deliverable a
confirmation review would read:

1. the risk norm with its rationale and acceptance corridors;
2. the incident classification with its MECE certificate (Fig. 4);
3. the allocation and per-class budget stacks (Figs. 3/5);
4. the safety goals in the paper's SG format;
5. the completeness & consistency argument;
6. (when verification data exists) the statistical verdicts and the
   rolled-up claim/argument/evidence tree.

Everything comes from live objects, so the dossier can never drift from
the artefacts it documents.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.safety_goals import SafetyGoalSet
from ..core.verification import VerificationReport
from .figures import figure2_unified_axis, figure3_risk_norm, \
    figure5_assignment

__all__ = ["build_dossier"]

_RULE = "=" * 72


def _section(title: str) -> List[str]:
    return ["", _RULE, title, _RULE, ""]


def build_dossier(goals: SafetyGoalSet,
                  report: Optional[VerificationReport] = None,
                  *, title: Optional[str] = None,
                  telemetry=None, budget_utilisation=None) -> str:
    """Render the full dossier for one goal set (+ optional verification).

    A design-time dossier (no ``report``) states explicitly that
    statistical verification is outstanding — silence is not evidence.

    ``telemetry`` optionally attaches a
    :class:`~repro.obs.session.TelemetrySnapshot` and
    ``budget_utilisation`` a
    :class:`~repro.obs.budget_monitor.BudgetUtilisationReport`; both are
    rendered as a "Runtime telemetry" section so the dossier documents
    *how* the evidence campaign ran, not only its verdicts.
    """
    norm = goals.norm
    lines: List[str] = [
        _RULE,
        title if title is not None else
        f"SAFETY CASE DOSSIER — {norm.name}",
        _RULE,
    ]

    lines += _section("1. Quantitative risk norm")
    if norm.rationale:
        lines.append(f"Rationale: {norm.rationale}")
        lines.append("")
    lines.append(figure2_unified_axis(norm))
    corridor_lines = []
    for class_id in norm.class_ids:
        corridor = norm.corridor(class_id)
        if corridor is not None:
            corridor_lines.append(
                f"  {class_id}: budget {norm.budget(class_id)} within "
                f"[{corridor.state_of_art_lower}, "
                f"{corridor.political_upper}]")
    if corridor_lines:
        lines.append("")
        lines.append("Acceptance corridors (state of the art … political "
                     "upper limit):")
        lines.extend(corridor_lines)

    lines += _section("2. Incident classification and completeness evidence")
    if goals.certificate is not None:
        lines.append(goals.certificate.summary())
    else:
        lines.append("NO MECE CERTIFICATE ATTACHED — completeness of the "
                     "incident classification is not established.")

    lines += _section("3. Budget allocation (Eq. 1)")
    lines.append(figure3_risk_norm(goals.allocation))

    lines += _section("4. Safety goals")
    lines.append(figure5_assignment(goals))

    lines += _section("5. Completeness & consistency argument")
    lines.append(goals.completeness_argument())

    lines += _section("6. Verification status")
    if report is None:
        lines.append("Statistical verification OUTSTANDING: no operating or "
                     "simulation campaign has been evaluated against these "
                     "goals.  The design-time argument above does not claim "
                     "achieved rates.")
    else:
        lines.append(report.summary())
        from ..assurance.safety_case import build_qrn_safety_case
        case = build_qrn_safety_case(goals, report)
        lines.append("")
        lines.append(case.render())
        lines.append("")
        verdict = ("SUPPORTED" if case.is_supported()
                   else "NOT (YET) SUPPORTED")
        lines.append(f"Top claim: {verdict}.")

    if telemetry is not None or budget_utilisation is not None:
        lines += _section("7. Runtime telemetry")
        if budget_utilisation is not None:
            lines.append(budget_utilisation.render())
            lines.append("")
        if telemetry is not None:
            counters = telemetry.metrics.counters()
            if counters:
                lines.append("Campaign counters:")
                for name, value in sorted(counters.items()):
                    lines.append(f"  {name}: {value:g}")
                lines.append("")
            span_text = telemetry.spans.render()
            if span_text:
                lines.append("Span tree (wall clock, observability only):")
                lines.append(span_text)

    lines.append("")
    lines.append(_RULE)
    return "\n".join(lines)
