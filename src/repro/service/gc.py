"""Crash-safe spool garbage collection and journal compaction.

A long-lived spool accumulates evidence: terminal job records, cached
results, resume checkpoints, runner scratch, and an ever-growing
journal chain.  This module reclaims it under an explicit
:class:`RetentionPolicy` without ever endangering the service's two
load-bearing invariants:

* **Nothing reachable from a live job is collected.**  ``queued``,
  ``leased`` and ``running`` records — and every artifact they reach
  (result, checkpoint, heartbeat, scratch) — are retained
  unconditionally; the policy only ranks *terminal* jobs.
* **A ``done`` record never outlives its result.**  The sweep deletes
  a collected job's scratch first, then its checkpoint, and its
  *record last*; unreferenced results go in a second phase.  Because
  the record is the thing the next plan is computed from, a crash at
  any unlink boundary leaves a job GC still knows about — never an
  orphaned checkpoint the sweep has forgotten, and never a completed
  record whose result is gone (that would be fsck's
  ``unreachable-result``).

The sweep is **restartable by construction**: the plan is recomputed
from the spool on every run and every deletion is idempotent, so a
``kill -9`` mid-sweep (the chaos tier's ``gc-sweep`` point) simply
means the next run finishes the job.  A dry run computes the same plan
and touches nothing.

Journal **compaction** bounds the audit chain: the current journal is
archived durably (byte-for-byte, fsynced) under
``spool/journal-archive/``, then a fresh chain is started whose
genesis ``service.compacted`` entry names the archive, its entry count
and its head digest — the old chain stays verifiable end-to-end, and
the new chain records where its history went.  Compaction refuses a
damaged journal (run ``repro fsck --repair`` first): archiving
unverifiable bytes would launder corruption into provenance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Union

from ..io.atomic import atomic_write_text
from ..testing.chaos import service_chaos
from .fsck import daemon_pid
from .jobs import JobRecord, ServiceError
from .journal import ServiceJournal, read_service_journal
from .store import JobStore

__all__ = ["ARCHIVE_DIRNAME", "GcPlan", "GcReport", "RetentionPolicy",
           "compact_journal", "plan_gc", "run_gc"]

ARCHIVE_DIRNAME = "journal-archive"


@dataclass(frozen=True)
class RetentionPolicy:
    """What terminal evidence to keep.

    ``keep_last`` terminal jobs per tenant survive (newest first, by
    ``submit_seq``); older ones — and, when ``max_age_s`` is set, any
    terminal job or unreferenced result older than that — are
    collected.  Live jobs are never ranked and never collected.
    """

    keep_last: int = 8
    max_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.keep_last < 0:
            raise ValueError("keep_last must be >= 0")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")


@dataclass
class GcPlan:
    """The computed sweep: exactly which paths go, and why the rest
    stay.  Deterministic given the spool contents and the clock."""

    jobs_collected: List[str] = field(default_factory=list)
    jobs_retained: List[str] = field(default_factory=list)
    live_jobs: List[str] = field(default_factory=list)
    record_paths: List[Path] = field(default_factory=list)
    scratch_paths: List[Path] = field(default_factory=list)
    checkpoint_paths: List[Path] = field(default_factory=list)
    result_paths: List[Path] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.record_paths or self.scratch_paths
                    or self.checkpoint_paths or self.result_paths)


@dataclass
class GcReport:
    """What one sweep actually did."""

    root: str
    dry_run: bool
    jobs_collected: int = 0
    results_collected: int = 0
    checkpoints_collected: int = 0
    scratch_collected: int = 0
    bytes_reclaimed: int = 0
    jobs_retained: int = 0
    live_jobs: int = 0
    journal_compacted: bool = False
    journal_archive: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root, "dry_run": self.dry_run,
            "jobs_collected": self.jobs_collected,
            "results_collected": self.results_collected,
            "checkpoints_collected": self.checkpoints_collected,
            "scratch_collected": self.scratch_collected,
            "bytes_reclaimed": self.bytes_reclaimed,
            "jobs_retained": self.jobs_retained,
            "live_jobs": self.live_jobs,
            "journal_compacted": self.journal_compacted,
            "journal_archive": self.journal_archive,
        }


def _age_s(path: Path, now: float) -> float:
    try:
        return max(0.0, now - path.stat().st_mtime)
    except OSError:
        return 0.0  # vanished mid-plan: someone else collected it


def plan_gc(store: JobStore, policy: RetentionPolicy, *,
            now: Optional[float] = None) -> GcPlan:
    """Compute the sweep without touching anything.

    Corrupt records are *skipped* (left for ``repro fsck``): GC never
    deletes what it cannot verify.
    """
    if now is None:
        now = datetime.now(timezone.utc).timestamp()
    plan = GcPlan()
    records: List[JobRecord] = []
    for path in store.iter_job_paths():
        try:
            record = store.load_job(path.stem)
        except (ValueError, OSError):
            continue  # fsck territory, not GC's
        records.append(record)

    terminal_by_tenant: Dict[str, List[JobRecord]] = {}
    for record in records:
        if record.terminal:
            terminal_by_tenant.setdefault(record.tenant, []).append(record)
        else:
            plan.live_jobs.append(record.job_id)

    collected: List[JobRecord] = []
    for tenant, terminals in sorted(terminal_by_tenant.items()):
        terminals.sort(key=lambda r: r.submit_seq, reverse=True)
        for rank, record in enumerate(terminals):
            too_old = (policy.max_age_s is not None and _age_s(
                store.job_path(record.job_id), now) > policy.max_age_s)
            if rank < policy.keep_last and not too_old:
                plan.jobs_retained.append(record.job_id)
            else:
                collected.append(record)

    for record in collected:
        plan.jobs_collected.append(record.job_id)
        plan.record_paths.append(store.job_path(record.job_id))
        for scratch in (store.heartbeat_path(record.job_id),
                        store.error_path(record.job_id),
                        store.log_path(record.job_id)):
            if scratch.exists():
                plan.scratch_paths.append(scratch)
        checkpoint = store.checkpoint_path(record.job_id)
        if checkpoint.exists():
            plan.checkpoint_paths.append(checkpoint)

    # Phase 2: results no *retained* record references.  Referenced-ness
    # is recomputed from the post-sweep record set, so a result shared
    # by a collected job and a retained one stays.
    keep_ids: Set[str] = set(plan.live_jobs) | set(plan.jobs_retained)
    referenced = {r.spec_digest.split(":", 1)[-1]
                  for r in records if r.job_id in keep_ids}
    for path in store.iter_result_paths():
        if path.stem in referenced:
            continue
        if policy.max_age_s is None:
            continue  # unreferenced cache is kept unless age-bounded
        if _age_s(path, now) > policy.max_age_s:
            plan.result_paths.append(path)
    return plan


def _unlink(path: Path, report: GcReport) -> int:
    """One idempotent deletion step (the crash window the chaos tier
    aims ``kill@gc-sweep`` at sits right before each unlink)."""
    service_chaos("gc-sweep")
    try:
        size = path.stat().st_size
        os.unlink(path)
    except OSError:
        return 0
    report.bytes_reclaimed += size
    return 1


def run_gc(root: Union[str, Path], policy: RetentionPolicy, *,
           compact: bool = False, dry_run: bool = False,
           now: Optional[float] = None) -> GcReport:
    """Plan and (unless ``dry_run``) execute one retention sweep.

    Refuses to run while a daemon is alive on the spool.  The deletion
    order is the crash-safety argument: scratch → checkpoints →
    records → unreferenced results (see the module doc — the record
    goes last so an interrupted sweep never orphans evidence the next
    plan cannot see).
    """
    store = JobStore(root)
    pid = daemon_pid(store)
    if pid is not None:
        raise ServiceError(
            f"refusing to collect {store.root}: daemon pid {pid} is "
            f"alive on this spool (stop it first)")
    plan = plan_gc(store, policy, now=now)
    report = GcReport(root=str(store.root), dry_run=dry_run,
                      jobs_retained=len(plan.jobs_retained),
                      live_jobs=len(plan.live_jobs))
    if dry_run:
        report.jobs_collected = len(plan.record_paths)
        report.results_collected = len(plan.result_paths)
        report.checkpoints_collected = len(plan.checkpoint_paths)
        report.scratch_collected = len(plan.scratch_paths)
        return report

    for path in plan.scratch_paths:
        report.scratch_collected += _unlink(path, report)
    for path in plan.checkpoint_paths:
        report.checkpoints_collected += _unlink(path, report)
    for path in plan.record_paths:
        report.jobs_collected += _unlink(path, report)
    for path in plan.result_paths:
        report.results_collected += _unlink(path, report)

    if compact:
        archive = compact_journal(store)
        report.journal_compacted = archive is not None
        report.journal_archive = (None if archive is None
                                  else str(archive))
    _journal_gc_summary(store, report)
    return report


def compact_journal(store: JobStore) -> Optional[Path]:
    """Archive the current chain and start a fresh one.

    Returns the archive path, or ``None`` when there is nothing to
    compact.  The order is the crash-safety argument: the archive is
    written *durably* before the live journal is removed, so no
    instant exists at which the audit history is only in memory.
    """
    path = store.journal_path
    if not path.exists():
        return None
    # Strict read: compaction must never archive an unverifiable chain.
    records, head = read_service_journal(path)
    if not records:
        return None
    archive_dir = store.root / ARCHIVE_DIRNAME
    archive_dir.mkdir(parents=True, exist_ok=True)
    index = len(list(archive_dir.glob("service-journal.*.jsonl")))
    archive = archive_dir / f"service-journal.{index:04d}.jsonl"
    atomic_write_text(archive, path.read_text(encoding="utf-8"))
    os.unlink(path)
    journal = ServiceJournal.open(path, resume=True)
    try:
        journal.emit("service.compacted", {
            "archive": archive.name,
            "entries": len(records),
            "head": head,
        })
    finally:
        journal.close()
    return archive


def _journal_gc_summary(store: JobStore, report: GcReport) -> None:
    """Best-effort ``service.gc`` audit entry (same contract as the
    fsck summary: a missing or damaged journal never fails the sweep)."""
    if not store.journal_path.exists():
        return
    try:
        journal = ServiceJournal.open(store.journal_path, resume=True)
        try:
            journal.emit("service.gc", {
                "jobs_collected": report.jobs_collected,
                "results_collected": report.results_collected,
                "checkpoints_collected": report.checkpoints_collected,
                "scratch_collected": report.scratch_collected,
                "bytes_reclaimed": report.bytes_reclaimed,
                "jobs_retained": report.jobs_retained,
                "live_jobs": report.live_jobs,
            })
        finally:
            journal.close()
    except (OSError, ValueError):
        pass
