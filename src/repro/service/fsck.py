"""``repro fsck`` — the offline spool auditor and self-healer.

The spool is a forest of independently-verifiable artifacts (every
JSON file carries its schema tag and payload sha256; the journal is a
digest chain), so an audit needs no daemon state: walk everything,
verify everything, and classify each deviation into a closed taxonomy:

``orphan``
    A file no live record reaches: a leaked ``.repro-tmp.*.tmp`` from a
    torn atomic write, runner scratch (heartbeat / error note / log)
    for a job id with no record, a checkpoint for an unknown job, or a
    stale ``endpoint.json`` whose pid is dead.
``torn-tail``
    The journal's last append was cut mid-line by a crash or a full
    disk — a valid chain prefix followed *only* by fragments that never
    parse as complete signed envelopes.
``digest-mismatch``
    An artifact (job record, result, checkpoint, or an *interior*
    journal entry) that fails verification: wrong digest, wrong schema,
    unparseable, or filed under a name that contradicts its content.
``dangling-lease``
    A job record frozen in ``leased``/``running`` with no daemon alive
    to supervise it (the lease's epoch died with its daemon).
``unreachable-result``
    A record that claims ``done`` but whose content-addressed result
    artifact is missing — the evidence leg of the promise is gone.

Repair (``--repair``) applies only *provably safe* actions, one per
kind, and quarantines everything else rather than guess:

* orphans are **swept** (scratch) or **quarantined** (checkpoints —
  they are resume evidence for a future resubmission of the same spec);
* a torn tail is **truncated** at the last valid byte — safe because a
  failed append poisons the writer, so at most one damaged fragment
  ever follows the valid prefix, and it was never acknowledged;
* digest mismatches are **quarantined** into ``spool/quarantine/`` —
  rewriting unverifiable bytes would manufacture evidence;
* a dangling lease is **completed** from the cached result if the spec
  digest already has one (determinism makes the result identical to
  what the dead runner would have produced) and **requeued** otherwise;
* an unreachable result is **requeued** — re-running the spec is
  bit-for-bit identical by the determinism contract, so recomputing
  the lost artifact is correctness-preserving.

Repair refuses to run while a daemon owns the spool (a live pid in
``endpoint.json``): two writers would race.  After a successful repair
the audit summary is appended to the (now healthy) service journal as
a ``service.fsck`` entry, so the chain itself records the surgery.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..io import ArtifactError, parse_artifact_text
from ..io.artifact import ARTIFACTS
from ..io.atomic import iter_orphan_tmp
from ..traffic.checkpoint import CHECKPOINT_SCHEMA_NAME
from .jobs import JOB_RECORD_SCHEMA_NAME, JobRecord, ServiceError
from .journal import ServiceJournal, scan_service_journal
from .store import JOB_RESULT_SCHEMA_NAME, JobStore

__all__ = ["FINDING_KINDS", "REPAIR_ACTIONS", "Finding", "FsckReport",
           "daemon_pid", "fsck_spool"]

#: The closed damage taxonomy — every finding is exactly one of these.
FINDING_KINDS = ("orphan", "torn-tail", "digest-mismatch",
                 "dangling-lease", "unreachable-result")

#: The closed repair vocabulary — every applied repair is one of these.
REPAIR_ACTIONS = ("swept", "truncated", "quarantined", "requeued",
                  "completed")


@dataclass(frozen=True)
class Finding:
    """One audit deviation: what kind, where, why, and (when the audit
    ran with ``repair=True``) which safe action resolved it."""

    kind: str
    path: str
    detail: str
    repair: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FINDING_KINDS:
            raise ValueError(f"unknown finding kind {self.kind!r}; "
                             f"expected one of {FINDING_KINDS}")
        if self.repair is not None and self.repair not in REPAIR_ACTIONS:
            raise ValueError(f"unknown repair action {self.repair!r}; "
                             f"expected one of {REPAIR_ACTIONS}")

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "path": self.path,
                "detail": self.detail, "repair": self.repair}


@dataclass
class FsckReport:
    """The complete audit outcome for one spool."""

    root: str
    repaired: bool
    findings: List[Finding] = field(default_factory=list)
    jobs_checked: int = 0
    results_checked: int = 0
    checkpoints_checked: int = 0
    journal_entries: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for finding in self.findings:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return by_kind

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "repaired": self.repaired,
            "clean": self.clean,
            "counts": self.counts(),
            "jobs_checked": self.jobs_checked,
            "results_checked": self.results_checked,
            "checkpoints_checked": self.checkpoints_checked,
            "journal_entries": self.journal_entries,
            "findings": [f.to_dict() for f in self.findings],
        }


def daemon_pid(store: JobStore) -> Optional[int]:
    """The pid of a daemon that is *actually alive* on this spool, or
    ``None`` (no endpoint file, unreadable endpoint, or dead pid)."""
    try:
        text = store.endpoint_path.read_text(encoding="utf-8")
        document = parse_artifact_text(text, source=store.endpoint_path)
        pid = int(document["pid"])  # type: ignore[arg-type, call-overload]
    except (OSError, ArtifactError, KeyError, TypeError, ValueError):
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return None
    except PermissionError:
        return pid  # alive, just not ours to signal
    except OSError:
        return None
    return pid


class _Audit:
    """One pass over the spool; accumulates findings, applies repairs."""

    def __init__(self, store: JobStore, repair: bool):
        self.store = store
        self.repair = repair
        self.report = FsckReport(root=str(store.root), repaired=repair)
        self.records: Dict[str, JobRecord] = {}

    # -- repair primitives (each provably safe, see module doc) ---------

    def _found(self, kind: str, path: Path, detail: str,
               repair: Optional[str] = None) -> None:
        self.report.findings.append(Finding(
            kind=kind, path=str(path), detail=detail,
            repair=repair if self.repair else None))

    def _sweep(self, kind: str, path: Path, detail: str) -> None:
        if self.repair:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._found(kind, path, detail, repair="swept")

    def _quarantine(self, kind: str, path: Path, detail: str) -> None:
        if self.repair:
            quarantine = self.store.quarantine_dir
            quarantine.mkdir(parents=True, exist_ok=True)
            # Prefix with the source subdirectory so results/ and jobs/
            # entries with colliding basenames cannot clobber each other.
            target = quarantine / f"{path.parent.name}-{path.name}"
            os.replace(path, target)
        self._found(kind, path, detail, repair="quarantined")

    # -- the walk -------------------------------------------------------

    def run(self) -> FsckReport:
        self._check_orphan_tmp()
        self._check_journal()
        self._check_jobs()
        self._check_results()
        self._check_checkpoints()
        self._check_job_states()
        self._check_scratch()
        self._check_endpoint()
        return self.report

    def _check_orphan_tmp(self) -> None:
        for path in iter_orphan_tmp(self.store.root):
            self._sweep("orphan", path,
                        "leaked temp file from a torn atomic write")

    def _check_journal(self) -> None:
        path = self.store.journal_path
        if not path.exists():
            return
        scan = scan_service_journal(path)
        self.report.journal_entries = len(scan.records)
        if scan.clean:
            return
        if scan.torn_tail:
            detail = (f"torn tail at byte {scan.valid_bytes} "
                      f"(line {scan.damage_lineno}): {scan.damage}")
            if self.repair:
                from .journal import repair_service_journal_tail
                repaired = repair_service_journal_tail(path)
                self.report.journal_entries = len(repaired.records)
            self._found("torn-tail", path, detail, repair="truncated")
        else:
            self._quarantine(
                "digest-mismatch", path,
                f"interior chain damage at line {scan.damage_lineno} "
                f"({scan.damage}); committed entries follow the break, "
                f"so a suffix cut would lose acknowledged history")

    def _check_jobs(self) -> None:
        for path in self.store.iter_job_paths():
            self.report.jobs_checked += 1
            try:
                record = ARTIFACTS.load(path, JOB_RECORD_SCHEMA_NAME)
            except (ArtifactError, ValueError) as exc:
                self._quarantine("digest-mismatch", path,
                                 f"job record fails verification: {exc}")
                continue
            assert isinstance(record, JobRecord)
            if path.stem != record.job_id:
                self._quarantine(
                    "digest-mismatch", path,
                    f"filed as {path.stem!r} but the record says "
                    f"{record.job_id!r}")
                continue
            self.records[record.job_id] = record

    def _check_results(self) -> None:
        for path in self.store.iter_result_paths():
            self.report.results_checked += 1
            try:
                result = ARTIFACTS.load(path, JOB_RESULT_SCHEMA_NAME)
            except (ArtifactError, ValueError) as exc:
                self._quarantine("digest-mismatch", path,
                                 f"result fails verification: {exc}")
                continue
            claimed = result.spec_digest.split(":", 1)[-1]
            if path.stem != claimed:
                self._quarantine(
                    "digest-mismatch", path,
                    f"content-addressed as {path.stem!r} but the result "
                    f"says spec digest {claimed!r}")

    def _check_checkpoints(self) -> None:
        for path in self.store.iter_checkpoint_paths():
            self.report.checkpoints_checked += 1
            try:
                ARTIFACTS.load(path, CHECKPOINT_SCHEMA_NAME)
            except (ArtifactError, ValueError) as exc:
                self._quarantine("digest-mismatch", path,
                                 f"checkpoint fails verification: {exc}")
                continue
            if path.stem not in self.records:
                self._quarantine(
                    "orphan", path,
                    f"checkpoint for unknown job {path.stem!r} (kept in "
                    f"quarantine: it is resume evidence for a future "
                    f"resubmission of the same spec)")

    def _check_job_states(self) -> None:
        for job_id, record in sorted(self.records.items()):
            path = self.store.job_path(job_id)
            if record.state in ("leased", "running"):
                if self.store.has_result(record.spec_digest):
                    if self.repair:
                        result = self.store.load_result(record.spec_digest)
                        self.store.save_job(record.advanced(
                            "done", lease=None, error=None,
                            chunks_resumed=result.chunks_resumed))
                    self._found(
                        "dangling-lease", path,
                        f"{record.state} under a dead daemon but the "
                        f"result exists; completing from cache",
                        repair="completed")
                else:
                    if self.repair:
                        self.store.save_job(record.advanced(
                            "queued", lease=None))
                        self.store.clear_runner_state(job_id)
                    self._found(
                        "dangling-lease", path,
                        f"{record.state} under a dead daemon with no "
                        f"cached result; requeueing",
                        repair="requeued")
            elif record.state == "done" and not self.store.has_result(
                    record.spec_digest):
                if self.repair:
                    self.store.save_job(record.advanced(
                        "queued", lease=None))
                self._found(
                    "unreachable-result", path,
                    f"done but result {record.spec_digest} is missing; "
                    f"requeueing (determinism makes the re-run "
                    f"bit-for-bit identical)",
                    repair="requeued")

    def _check_scratch(self) -> None:
        """Runner scratch (heartbeats, error notes, logs) for job ids
        that no verified record names is sweepable noise."""
        known: Set[str] = set(self.records)
        for path in sorted((self.store.root / "heartbeats").glob("*")):
            if path.name not in known:
                self._sweep("orphan", path,
                            f"heartbeat for unknown job {path.name!r}")
        for suffix, label in ((".error", "error note"), (".log", "log")):
            for path in sorted((self.store.root / "jobs").glob(
                    "j-*" + suffix)):
                job_id = path.name[:-len(suffix)]
                if job_id not in known:
                    self._sweep("orphan", path,
                                f"{label} for unknown job {job_id!r}")

    def _check_endpoint(self) -> None:
        path = self.store.endpoint_path
        if path.exists() and daemon_pid(self.store) is None:
            self._sweep("orphan", path,
                        "endpoint file for a dead daemon")


def fsck_spool(root: Union[str, Path], *, repair: bool = False,
               ) -> FsckReport:
    """Audit one spool directory; with ``repair=True`` also heal it.

    Returns the :class:`FsckReport`.  Raises :class:`ServiceError` if
    ``repair`` is requested while a daemon is alive on the spool.
    """
    store = JobStore(root)
    if repair:
        pid = daemon_pid(store)
        if pid is not None:
            raise ServiceError(
                f"refusing to repair {store.root}: daemon pid {pid} is "
                f"alive on this spool (stop it first)")
    report = _Audit(store, repair).run()
    if repair and report.findings:
        _journal_repair_summary(store, report)
    return report


def _journal_repair_summary(store: JobStore, report: FsckReport) -> None:
    """Record the surgery in the (now healthy) journal — best-effort:
    a spool with no journal yet, or one quarantined this very pass,
    simply starts its next chain with the daemon."""
    if not store.journal_path.exists():
        return
    try:
        journal = ServiceJournal.open(store.journal_path, resume=True)
        try:
            journal.emit("service.fsck", {
                "counts": report.counts(),
                "repairs": sorted({f.repair for f in report.findings
                                   if f.repair is not None}),
                "jobs_checked": report.jobs_checked,
                "results_checked": report.results_checked,
            })
        finally:
            journal.close()
    except (OSError, ArtifactError, ValueError):
        pass
