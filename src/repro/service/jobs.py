"""Campaign-service API types: specs, job records, typed service errors.

The service's unit of work is a :class:`CampaignSpec` — the complete,
canonical description of one fleet campaign (policy, hours, seed, chunk
plan, engine, context mix, worker count).  Everything the daemon
promises follows from treating the spec as *content-addressed data*:

* ``spec.digest`` is the sha256 of the canonical spec payload (the same
  :func:`~repro.io.artifact.payload_digest` discipline as every other
  artifact).  The job id derives from it, so submitting the same
  campaign twice — same tenant or not — lands on the same job: admission
  is idempotent, and a completed spec's result artifact is found by
  digest with zero compute (the cache-hit leg of DESIGN §14).
* A :class:`JobRecord` is the durable ground truth for one job,
  persisted as a ``repro.job-record/v1`` artifact through the
  :mod:`repro.io` boundary *before* the submission is acknowledged.
  ``kill -9`` of the daemon therefore cannot lose an accepted job: the
  record either reached the spool (and recovery re-queues it) or the
  client never got its 201.

The state machine (DESIGN §14)::

    submitted ──▶ queued ──▶ leased ──▶ running ──▶ done
                    ▲                      │  ├──▶ failed
                    └──────── requeue ─────┘  └──▶ cancelled

``submitted`` is transient (it exists only between the HTTP parse and
the first durable write, which lands the record in ``queued``), so only
the six durable states appear in ``JOB_STATES``.

Typed failures: every way the service refuses work is a
:class:`ServiceError` (a :class:`~repro.errors.ReproError`, CLI exit 4)
carrying the HTTP status and machine-readable ``kind`` the server maps
onto the wire — backpressure is :class:`QueueFullError` with a
``retry_after_s``, never a hang or an untyped 500.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ReproError
from ..io.artifact import (ArtifactSchema, payload_digest, register_artifact)
from ..io.validate import Int, MapOf, NullOr, Number, Record, Str

__all__ = [
    "JOB_RECORD_SCHEMA", "JOB_RECORD_SCHEMA_NAME", "JOB_STATES",
    "PRIORITY_CLASSES", "TERMINAL_STATES", "CampaignSpec", "JobRecord",
    "Lease", "ServiceError", "QueueFullError", "DrainingError",
    "UnknownJobError", "InvalidSubmissionError", "SpoolError",
    "JobStateError", "DiskPressureError",
]

JOB_RECORD_SCHEMA_NAME = "repro.job-record"
JOB_RECORD_SCHEMA = f"{JOB_RECORD_SCHEMA_NAME}/v1"

#: Durable job states, in lifecycle order.
JOB_STATES = ("queued", "leased", "running", "done", "failed", "cancelled")

#: States no transition leaves (except an explicit resubmission of a
#: ``failed``/``cancelled`` spec, which re-queues the same record).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Scheduling classes, strongest first — the scheduler drains a class
#: completely before touching the next.
PRIORITY_CLASSES = ("high", "normal", "low")

_POLICIES = ("cautious", "nominal", "aggressive")
_ENGINES = ("vectorized", "scalar")


# -- typed service errors --------------------------------------------------

class ServiceError(ReproError):
    """Root of the campaign service's refusal taxonomy.

    ``kind`` is the machine-readable discriminator the HTTP layer puts
    in the error envelope; ``http_status`` the response code it maps to.
    """

    kind = "service"
    http_status = 500


class InvalidSubmissionError(ServiceError):
    """The submission payload is malformed or names an unknown option."""

    kind = "invalid-submission"
    http_status = 400


class UnknownJobError(ServiceError):
    """No job record under that id."""

    kind = "unknown-job"
    http_status = 404

    def __init__(self, job_id: str):
        super().__init__(f"no job {job_id!r} in the spool")
        self.job_id = job_id


class JobStateError(ServiceError):
    """The job exists but its state forbids the request (e.g. asking
    for the result of a job that has not finished)."""

    kind = "job-state"
    http_status = 409


class QueueFullError(ServiceError):
    """Admission refused: the bounded queue is at capacity.

    The typed backpressure reject — carries ``retry_after_s`` so clients
    back off deterministically instead of hammering or hanging.
    """

    kind = "queue-full"
    http_status = 429

    def __init__(self, depth: int, limit: int, retry_after_s: float):
        super().__init__(
            f"job queue is full ({depth}/{limit}); retry in "
            f"{retry_after_s:g} s")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class DrainingError(ServiceError):
    """Admission refused: the daemon is draining for shutdown."""

    kind = "draining"
    http_status = 503

    def __init__(self) -> None:
        super().__init__("service is draining; resubmit after restart")
        self.retry_after_s = 5.0


class SpoolError(ServiceError):
    """A durable write to the spool failed (disk full, permissions) —
    the job was NOT accepted."""

    kind = "spool"
    http_status = 507


class DiskPressureError(ServiceError):
    """Admission refused *pre-emptively*: the spool's disk is under
    pressure and the daemon has degraded to read-only-for-new-work
    (``cautious``) or is draining in-flight runners (``minimal``).

    The proactive sibling of :class:`SpoolError` — same 507, but
    raised *before* any write is attempted, with a ``retry_after_s``
    so clients back off while the operator (or ``repro gc``) makes
    room.
    """

    kind = "disk-pressure"
    http_status = 507

    def __init__(self, mode: str, free_bytes: int, low_free_bytes: int,
                 retry_after_s: float = 10.0):
        super().__init__(
            f"service is in {mode} mode: {free_bytes} bytes free on the "
            f"spool filesystem (low watermark {low_free_bytes}); retry "
            f"in {retry_after_s:g} s or reclaim space with `repro gc`")
        self.mode = mode
        self.free_bytes = free_bytes
        self.low_free_bytes = low_free_bytes
        self.retry_after_s = retry_after_s


# -- the campaign spec -----------------------------------------------------

def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat()


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, completely and canonically described.

    Every field is part of the determinism contract's identity (the
    same tuple :func:`~repro.traffic.fleet.run_fleet` pins in its
    checkpoint identity block), except ``workers`` — which cannot change
    the result bit-for-bit, but *is* kept in the digest so "same spec"
    means "same resource request" too.
    """

    policy: str
    hours: float
    seed: int
    chunk_hours: float = 250.0
    engine: str = "vectorized"
    workers: int = 1
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"urban": 0.5, "suburban": 0.2,
                                 "rural": 0.2, "highway": 0.1})

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; choose "
                             f"from {_POLICIES}")
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose "
                             f"from {_ENGINES}")
        if not (isinstance(self.hours, (int, float))
                and self.hours > 0):
            raise ValueError(f"hours must be positive, got {self.hours!r}")
        if not (isinstance(self.chunk_hours, (int, float))
                and self.chunk_hours > 0):
            raise ValueError(
                f"chunk_hours must be positive, got {self.chunk_hours!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {self.workers!r}")
        if not self.mix or any(
                not isinstance(v, (int, float)) or v < 0
                for v in self.mix.values()):
            raise ValueError("mix must map contexts to non-negative "
                             "weights")
        object.__setattr__(self, "mix", dict(self.mix))

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "hours": float(self.hours),
            "seed": int(self.seed),
            "chunk_hours": float(self.chunk_hours),
            "engine": self.engine,
            "workers": int(self.workers),
            "mix": {str(k): float(v) for k, v in sorted(self.mix.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        unknown = set(data) - {"policy", "hours", "seed", "chunk_hours",
                               "engine", "workers", "mix"}
        if unknown:
            raise ValueError(f"unknown spec fields {sorted(unknown)}")
        if not {"policy", "hours", "seed"} <= set(data):
            missing = {"policy", "hours", "seed"} - set(data)
            raise ValueError(f"spec is missing {sorted(missing)}")
        kwargs: Dict[str, object] = {
            "policy": str(data["policy"]),
            "hours": float(data["hours"]),  # type: ignore[arg-type]
            "seed": data["seed"],
        }
        if "chunk_hours" in data:
            kwargs["chunk_hours"] = float(data["chunk_hours"])  # type: ignore[arg-type]
        if "engine" in data:
            kwargs["engine"] = str(data["engine"])
        if "workers" in data:
            kwargs["workers"] = data["workers"]
        if "mix" in data:
            mix = data["mix"]
            if not isinstance(mix, Mapping):
                raise ValueError("mix must be an object")
            kwargs["mix"] = {str(k): float(v)  # type: ignore[arg-type]
                             for k, v in mix.items()}
        return cls(**kwargs)  # type: ignore[arg-type]

    @property
    def digest(self) -> str:
        """``"sha256:<hex>"`` over the canonical spec payload — the
        content address of this campaign's result."""
        return payload_digest(self.to_dict())

    @property
    def job_id(self) -> str:
        """The digest-derived job id (idempotent resubmission key)."""
        return "j-" + self.digest.split(":", 1)[1][:16]


# -- leases ----------------------------------------------------------------

@dataclass(frozen=True)
class Lease:
    """One grant of a job to a runner process.

    ``epoch`` is the granting daemon's boot identity: any lease whose
    epoch is not the *current* daemon's is dead by construction (its
    runner was orphaned by a crash), which is what makes hard-kill
    recovery decidable without clocks.
    """

    lease_id: int
    epoch: str
    pid: int
    ttl_s: float

    def to_dict(self) -> Dict[str, object]:
        return {"lease_id": self.lease_id, "epoch": self.epoch,
                "pid": self.pid, "ttl_s": self.ttl_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Lease":
        return cls(lease_id=int(data["lease_id"]),  # type: ignore[arg-type]
                   epoch=str(data["epoch"]),
                   pid=int(data["pid"]),  # type: ignore[arg-type]
                   ttl_s=float(data["ttl_s"]))  # type: ignore[arg-type]


# -- the durable job record ------------------------------------------------

@dataclass(frozen=True)
class JobRecord:
    """The durable ground truth for one job (``repro.job-record/v1``).

    Immutable value object: state transitions build a new record via
    :meth:`advanced` and persist it atomically — the record on disk is
    always one consistent state, never a torn transition.
    """

    job_id: str
    spec: CampaignSpec
    spec_digest: str
    tenant: str
    priority: str
    state: str
    submit_seq: int
    attempts: int = 0
    created_utc: str = ""
    updated_utc: str = ""
    lease: Optional[Lease] = None
    error: Optional[str] = None
    chunks_resumed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}; expected "
                             f"one of {JOB_STATES}")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {self.priority!r}; expected one of "
                f"{PRIORITY_CLASSES}")
        if self.spec_digest != self.spec.digest:
            raise ValueError(
                f"spec digest mismatch: record claims {self.spec_digest}, "
                f"spec hashes to {self.spec.digest}")
        if self.submit_seq < 0:
            raise ValueError("submit_seq must be >= 0")
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")

    @classmethod
    def new(cls, spec: CampaignSpec, *, tenant: str, priority: str,
            submit_seq: int) -> "JobRecord":
        now = _utc_now()
        return cls(job_id=spec.job_id, spec=spec, spec_digest=spec.digest,
                   tenant=tenant, priority=priority, state="queued",
                   submit_seq=submit_seq, created_utc=now, updated_utc=now)

    def advanced(self, state: str, **changes: object) -> "JobRecord":
        """A copy in ``state`` with ``updated_utc`` refreshed."""
        return replace(self, state=state, updated_utc=_utc_now(),
                       **changes)  # type: ignore[arg-type]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec_digest,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "submit_seq": int(self.submit_seq),
            "attempts": int(self.attempts),
            "created_utc": self.created_utc,
            "updated_utc": self.updated_utc,
            "lease": None if self.lease is None else self.lease.to_dict(),
            "error": self.error,
            "chunks_resumed": (None if self.chunks_resumed is None
                               else int(self.chunks_resumed)),
        }


# -- artifact schema registration ------------------------------------------

def _load_job_record(data: Mapping[str, object]) -> JobRecord:
    lease = data.get("lease")
    chunks_resumed = data.get("chunks_resumed")
    return JobRecord(
        job_id=str(data["job_id"]),
        spec=CampaignSpec.from_dict(dict(data["spec"])),  # type: ignore[call-overload]
        spec_digest=str(data["spec_digest"]),
        tenant=str(data["tenant"]),
        priority=str(data["priority"]),
        state=str(data["state"]),
        submit_seq=int(data["submit_seq"]),  # type: ignore[arg-type]
        attempts=int(data["attempts"]),  # type: ignore[arg-type]
        created_utc=str(data["created_utc"]),
        updated_utc=str(data["updated_utc"]),
        lease=None if lease is None else Lease.from_dict(dict(lease)),  # type: ignore[call-overload]
        error=None if data["error"] is None else str(data["error"]),
        chunks_resumed=(None if chunks_resumed is None
                        else int(chunks_resumed)),  # type: ignore[arg-type]
    )


def _example_job_record() -> JobRecord:
    """A small deterministic record for the fuzz tier."""
    spec = CampaignSpec(policy="nominal", hours=8.0, seed=2020,
                        chunk_hours=2.0, engine="vectorized", workers=1,
                        mix={"urban": 0.75, "highway": 0.25})
    record = JobRecord.new(spec, tenant="acme", priority="normal",
                           submit_seq=3)
    record = replace(record, created_utc="2026-01-01T00:00:00+00:00",
                     updated_utc="2026-01-01T00:00:05+00:00")
    return record.advanced(
        "leased", attempts=1,
        lease=Lease(lease_id=1, epoch="boot-0001", pid=4242, ttl_s=30.0))


def _job_records_equal(a: object, b: object) -> bool:
    """Loaded-state equality (the ``updated_utc`` stamp is volatile)."""
    assert isinstance(a, JobRecord) and isinstance(b, JobRecord)
    return replace(a, updated_utc="") == replace(b, updated_utc="")


SPEC_PAYLOAD_SPEC = Record(required={
    "policy": Str(), "hours": Number(), "seed": Int(),
    "chunk_hours": Number(), "engine": Str(), "workers": Int(),
    "mix": MapOf(Number()),
})

_LEASE_SPEC = Record(required={
    "lease_id": Int(), "epoch": Str(), "pid": Int(), "ttl_s": Number(),
})

_JOB_RECORD_SPEC = Record(required={
    "job_id": Str(),
    "spec": SPEC_PAYLOAD_SPEC,
    "spec_digest": Str(),
    "tenant": Str(),
    "priority": Str(),
    "state": Str(),
    "submit_seq": Int(),
    "attempts": Int(),
    "created_utc": Str(),
    "updated_utc": Str(),
    "lease": NullOr(_LEASE_SPEC),
    "error": NullOr(Str()),
    "chunks_resumed": NullOr(Int()),
})

register_artifact(ArtifactSchema(
    name=JOB_RECORD_SCHEMA_NAME,
    version=1,
    spec=_JOB_RECORD_SPEC,
    load=_load_job_record,
    dump=JobRecord.to_dict,
    label="job record",
    example=_example_job_record,
    equal=_job_records_equal,
    volatile=("updated_utc",),
))
