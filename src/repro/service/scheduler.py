"""Admission control + deterministic fair-share scheduling.

A pure in-memory data structure (the durable truth is the job records;
the scheduler is rebuilt from them on boot), with three properties the
service tests pin:

* **Bounded.**  ``submit`` refuses beyond ``queue_limit`` with a typed
  :class:`~repro.service.jobs.QueueFullError` carrying a deterministic
  ``retry_after_s`` — backpressure is a value, not a hang.  Requeues of
  already-admitted jobs (``force=True``) bypass the bound: a job that
  survived a crash must never be bounced by its own recovery.
* **Priority classes are strict.**  ``high`` drains before ``normal``
  before ``low`` (:data:`~repro.service.jobs.PRIORITY_CLASSES`).
* **Fair-share within a class is deterministic round-robin.**  Tenants
  take turns in lexicographic rotation (the rotor remembers the last
  tenant served per class); within one tenant, jobs run in admission
  order (``submit_seq``).  Given the same submissions, the dispatch
  order is bit-for-bit reproducible — scheduling is part of the
  service's determinism story, not an implementation accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .jobs import PRIORITY_CLASSES, QueueFullError

__all__ = ["QueueEntry", "FairShareScheduler"]


@dataclass(frozen=True)
class QueueEntry:
    """One queued job's scheduling key."""

    job_id: str
    tenant: str
    priority: str
    submit_seq: int


class FairShareScheduler:
    """Bounded multi-tenant priority queue with round-robin fair share."""

    def __init__(self, queue_limit: int = 16):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = int(queue_limit)
        # priority -> tenant -> admission-ordered entries
        self._queues: Dict[str, Dict[str, List[QueueEntry]]] = {
            priority: {} for priority in PRIORITY_CLASSES}
        # priority -> last tenant served (the fair-share rotor)
        self._rotor: Dict[str, Optional[str]] = {
            priority: None for priority in PRIORITY_CLASSES}

    # -- admission --------------------------------------------------------

    def depth(self) -> int:
        return sum(len(entries) for tenants in self._queues.values()
                   for entries in tenants.values())

    def retry_after_s(self) -> float:
        """Deterministic back-off hint: scale with what is queued."""
        return 1.0 + 0.5 * self.depth()

    def submit(self, entry: QueueEntry, *, force: bool = False) -> None:
        if entry.priority not in PRIORITY_CLASSES:
            raise ValueError(f"unknown priority {entry.priority!r}")
        if not force and self.depth() >= self.queue_limit:
            raise QueueFullError(self.depth(), self.queue_limit,
                                 self.retry_after_s())
        tenant_queues = self._queues[entry.priority]
        queue = tenant_queues.setdefault(entry.tenant, [])
        queue.append(entry)
        queue.sort(key=lambda e: e.submit_seq)

    # -- dispatch ---------------------------------------------------------

    def _next_tenant(self, priority: str) -> Optional[str]:
        tenants = sorted(t for t, q in self._queues[priority].items() if q)
        if not tenants:
            return None
        last = self._rotor[priority]
        if last is not None:
            for tenant in tenants:
                if tenant > last:
                    return tenant
        return tenants[0]

    def next_job(self) -> Optional[QueueEntry]:
        """Pop the next entry to lease, or ``None`` when idle."""
        for priority in PRIORITY_CLASSES:
            tenant = self._next_tenant(priority)
            if tenant is None:
                continue
            queue = self._queues[priority][tenant]
            entry = queue.pop(0)
            self._rotor[priority] = tenant
            return entry
        return None

    # -- bookkeeping ------------------------------------------------------

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); True iff it was queued."""
        for tenants in self._queues.values():
            for queue in tenants.values():
                for index, entry in enumerate(queue):
                    if entry.job_id == job_id:
                        del queue[index]
                        return True
        return False

    def queued_ids(self) -> Tuple[str, ...]:
        """Every queued job id, in the order dispatch would serve them
        (non-destructive preview, mainly for status/tests)."""
        preview = FairShareScheduler(queue_limit=max(1, self.depth()))
        preview._queues = {
            priority: {tenant: list(queue)
                       for tenant, queue in tenants.items()}
            for priority, tenants in self._queues.items()}
        preview._rotor = dict(self._rotor)
        order: List[str] = []
        while True:
            entry = preview.next_job()
            if entry is None:
                return tuple(order)
            order.append(entry.job_id)
