"""The campaign service daemon: HTTP front, durable core, graceful exit.

:class:`CampaignService` is the in-process core — admission, the durable
job store, the fair-share scheduler, the supervisor and the service
journal behind one lock.  The HTTP layer is a deliberately thin
translation: parse JSON, call the core, map results to JSON and typed
:class:`~repro.service.jobs.ServiceError` refusals to their status codes
(429 carries ``Retry-After``).  *Every* refusal is a typed envelope
``{"error": {"kind", "message", ...}}`` — an untyped 500 is a bug the
chaos tier hunts.

Crash-safety choreography at admission: the job record is persisted to
the spool *before* the 201 goes out, so an accepted job survives
``kill -9`` of the daemon by construction.  The journal append comes
after the record write — it is the audit leg; losing the last audit
line to a kill is acceptable, losing a job is not.

Shutdown discipline (DESIGN §14):

* **SIGTERM → graceful drain.**  Stop admitting (503 + typed
  ``draining`` envelope), SIGTERM every runner so it checkpoints and
  exits 130, park in-flight jobs back in ``queued``, journal
  ``service.draining → drained → stopped``, exit 0.
* **SIGKILL → hard-kill recovery.**  Nothing to do at death; the next
  boot replays job records, completes anything whose result artifact
  already landed, and requeues the rest (dead-epoch leases) to resume
  from their checkpoints.

HTTP API (all under ``/v1``)::

    POST /v1/jobs            {"spec": {...}, "tenant"?, "priority"?}
    GET  /v1/jobs            list job records
    GET  /v1/jobs/<id>       one record + checkpoint progress
    GET  /v1/jobs/<id>/result  the repro.job-result/v1 envelope
    POST /v1/jobs/<id>/cancel
    GET  /v1/status          queue/runner/counter snapshot
    GET  /v1/metrics         Prometheus exposition text
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ArtifactError
from ..io.artifact import ARTIFACTS, parse_artifact_bytes
from ..io.atomic import atomic_write_text
from ..obs.export import prometheus_text
from ..obs.metrics import MetricsRegistry
from ..testing.chaos import service_chaos
from ..traffic.checkpoint import read_checkpoint_progress
from .jobs import (PRIORITY_CLASSES, CampaignSpec, DiskPressureError,
                   DrainingError, InvalidSubmissionError, JobRecord,
                   JobStateError, QueueFullError, ServiceError, SpoolError,
                   UnknownJobError)
from .journal import ServiceJournal
from .pressure import (DEFAULT_CRITICAL_FREE_BYTES, DEFAULT_LOW_FREE_BYTES,
                       DiskPressureWatchdog)
from .scheduler import FairShareScheduler, QueueEntry
from .store import JOB_RESULT_SCHEMA_NAME, JobStore
from .supervisor import Supervisor

__all__ = ["CampaignService", "serve", "MAX_BODY_BYTES"]

#: Submission bodies beyond this are refused with 413 before parsing.
MAX_BODY_BYTES = 1 << 20


class CampaignService:
    """The durable core of one campaign daemon."""

    def __init__(self, spool: Union[str, Path], *, queue_limit: int = 16,
                 max_runners: int = 2, lease_ttl_s: float = 30.0,
                 max_attempts: int = 3,
                 low_free_bytes: int = DEFAULT_LOW_FREE_BYTES,
                 critical_free_bytes: int = DEFAULT_CRITICAL_FREE_BYTES,
                 disk_probe=None):
        self.store = JobStore(spool)
        self.epoch = f"epoch-{os.getpid()}-{os.urandom(4).hex()}"
        self.metrics = MetricsRegistry()
        self._lock = threading.RLock()
        self.scheduler = FairShareScheduler(queue_limit=queue_limit)
        self.watchdog = DiskPressureWatchdog(
            self.store.root, low_free_bytes=low_free_bytes,
            critical_free_bytes=critical_free_bytes, probe=disk_probe)
        self.supervisor = Supervisor(
            self.store, self.scheduler, self._emit, self.metrics,
            self._lock, epoch=self.epoch, max_runners=max_runners,
            lease_ttl_s=lease_ttl_s, max_attempts=max_attempts,
            watchdog=self.watchdog)
        self._journal: Optional[ServiceJournal] = None
        self._next_seq = 0
        self.draining = False
        self._drain_announced = False

    # -- journal (audit leg; best-effort by design) -----------------------

    def _emit(self, kind: str, **data: object) -> None:
        if self._journal is not None:
            try:
                self._journal.emit(kind, data)
            except (OSError, ValueError):
                # Audit starvation must never take down the service; the
                # ValueError arm covers a journal poisoned by an earlier
                # failed append (records, not the journal, drive recovery).
                pass
        service_chaos(f"journal-append:{kind}")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Open the journal, replay the spool, start supervising."""
        self._journal = ServiceJournal.open(self.store.journal_path,
                                            resume=True)
        self._emit("service.started", epoch=self.epoch, pid=os.getpid())
        self._next_seq = self.store.max_submit_seq() + 1
        counts = self.supervisor.recover()
        self._emit("service.recovered", **counts)
        self.supervisor.start()

    def begin_drain(self) -> None:
        with self._lock:
            self.draining = True
            if self._drain_announced:
                return
            self._drain_announced = True
        self._emit("service.draining", epoch=self.epoch)

    def drain_and_stop(self, timeout_s: float = 30.0) -> None:
        self.begin_drain()
        self.supervisor.drain(timeout_s=timeout_s)
        self._emit("service.drained", epoch=self.epoch)
        self.supervisor.stop()
        self._emit("service.stopped", epoch=self.epoch)
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- admission ---------------------------------------------------------

    def submit(self, payload: Mapping[str, object], *,
               tenant: str = "default", priority: str = "normal",
               ) -> Tuple[JobRecord, bool, bool]:
        """Admit one spec; returns ``(record, created, cached)``.

        Idempotent by construction: the job id derives from the spec
        digest, so resubmitting a live or completed spec returns the
        existing record (a completed one is a cache hit — zero compute).
        """
        if not tenant or not isinstance(tenant, str):
            raise InvalidSubmissionError("tenant must be a non-empty "
                                         "string")
        if priority not in PRIORITY_CLASSES:
            raise InvalidSubmissionError(
                f"unknown priority {priority!r}; choose from "
                f"{PRIORITY_CLASSES}")
        try:
            spec = CampaignSpec.from_dict(payload)
        except (TypeError, ValueError, KeyError) as exc:
            raise InvalidSubmissionError(
                f"invalid campaign spec: {exc}") from exc
        with self._lock:
            if self.draining:
                raise DrainingError()
            # Pre-emptive 507 (DESIGN §15): under disk pressure the
            # spool is read-only for new work — refuse with a typed
            # retry hint *before* any durable write is attempted.
            if self.watchdog.poll() != "nominal":
                self.metrics.counter("service.pressure_rejections").inc()
                raise DiskPressureError(
                    self.watchdog.mode, self.watchdog.free_bytes or 0,
                    self.watchdog.low_free_bytes)
            if self.store.has_job(spec.job_id):
                return self._resubmit(self.store.load_job(spec.job_id),
                                      tenant, priority)
            record = JobRecord.new(spec, tenant=tenant, priority=priority,
                                   submit_seq=self._next_seq)
            if self.store.has_result(spec.digest):
                # The result already exists (prior spool life or another
                # tenant's identical spec): complete without queueing.
                cached = self.store.load_result(spec.digest)
                record = record.advanced(
                    "done", chunks_resumed=cached.chunks_resumed)
                self.store.save_job(record)
                self._next_seq += 1
                self._emit("job.cached", job_id=record.job_id,
                           tenant=tenant, spec_digest=record.spec_digest)
                self.metrics.counter("service.submitted").inc()
                self.metrics.counter("service.cache_hits").inc()
                return record, True, True
            self._admit(record)
            return record, True, False

    def _admit(self, record: JobRecord) -> None:
        """Queue + persist one fresh/resubmitted record (under lock)."""
        try:
            self.scheduler.submit(QueueEntry(
                job_id=record.job_id, tenant=record.tenant,
                priority=record.priority, submit_seq=record.submit_seq))
        except QueueFullError as exc:
            self.metrics.counter("service.rejected").inc()
            self._emit("job.rejected", job_id=record.job_id,
                       tenant=record.tenant, reason=exc.kind,
                       retry_after_s=exc.retry_after_s)
            raise
        try:
            self.store.save_job(record)
        except SpoolError:
            self.scheduler.remove(record.job_id)
            self.metrics.counter("service.rejected").inc()
            raise
        self._next_seq = max(self._next_seq, record.submit_seq) + 1
        self.metrics.counter("service.submitted").inc()
        self._emit("job.submitted", job_id=record.job_id,
                   tenant=record.tenant, priority=record.priority,
                   submit_seq=record.submit_seq,
                   spec_digest=record.spec_digest)

    def _resubmit(self, record: JobRecord, tenant: str, priority: str,
                  ) -> Tuple[JobRecord, bool, bool]:
        if record.state in ("failed", "cancelled"):
            # Explicit retry of a dead spec: same record, fresh admission.
            retry = record.advanced(
                "queued", lease=None, error=None, tenant=tenant,
                priority=priority, submit_seq=self._next_seq)
            self._admit(retry)
            return retry, True, False
        if (record.state == "queued"
                and record.job_id not in self.scheduler.queued_ids()):
            # A durability lie (short fsync) can persist the record
            # while the admission rolled its queue entry back — the
            # idempotent retry re-seats it instead of stranding it.
            self.supervisor._enqueue(record, force=True)
        return record, False, record.state == "done"

    # -- queries -----------------------------------------------------------

    def get_job(self, job_id: str) -> JobRecord:
        with self._lock:
            if not self.store.has_job(job_id):
                raise UnknownJobError(job_id)
            return self.store.load_job(job_id)

    def job_status(self, job_id: str) -> Dict[str, object]:
        record = self.get_job(job_id)
        return {"job": record.to_dict(),
                "checkpoint": read_checkpoint_progress(
                    self.store.checkpoint_path(job_id))}

    def list_jobs(self) -> List[JobRecord]:
        with self._lock:
            return list(self.store.iter_jobs())

    def result_envelope(self, job_id: str) -> Dict[str, object]:
        record = self.get_job(job_id)
        if record.state != "done":
            raise JobStateError(
                f"job {job_id} is {record.state}, not done; no result "
                f"to fetch")
        job_result = self.store.load_result(record.spec_digest)
        return ARTIFACTS.dump_dict(JOB_RESULT_SCHEMA_NAME, job_result)

    def status(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {}
            for record in self.store.iter_jobs():
                states[record.state] = states.get(record.state, 0) + 1
            counters = self.metrics.snapshot().counters()
            return {
                "epoch": self.epoch,
                "pid": os.getpid(),
                "draining": self.draining,
                "pressure": {
                    "mode": self.watchdog.poll(),
                    "free_bytes": self.watchdog.free_bytes,
                    "low_free_bytes": self.watchdog.low_free_bytes,
                    "critical_free_bytes":
                        self.watchdog.critical_free_bytes,
                },
                "queue_depth": self.scheduler.depth(),
                "queued": list(self.scheduler.queued_ids()),
                "running": self.supervisor.running_jobs(),
                "jobs": states,
                "counters": {k: v for k, v in sorted(counters.items())
                             if k.startswith("service.")},
            }

    def metrics_text(self) -> str:
        return prometheus_text(self.metrics.snapshot())

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self.get_job(job_id)
            if record.terminal:
                raise JobStateError(
                    f"job {job_id} is already {record.state}")
            was_queued = self.scheduler.remove(job_id)
            record = record.advanced("cancelled", lease=None)
            self.store.save_job(record)
            self._emit("job.cancelled", job_id=job_id,
                       tenant=record.tenant, was_queued=was_queued)
            self.metrics.counter("service.cancelled").inc()
            if not was_queued:
                self.supervisor.interrupt_runner(job_id)
            return record


# -- the HTTP layer --------------------------------------------------------

class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: CampaignService):
        super().__init__(address, handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the journal is the audit trail; HTTP chatter stays quiet

    def _send_json(self, status: int, document: Mapping[str, object], *,
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After",
                             str(max(1, int(round(retry_after_s)))))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, exc: ServiceError) -> None:
        payload: Dict[str, object] = {"kind": exc.kind,
                                      "message": str(exc)}
        retry_after_s = getattr(exc, "retry_after_s", None)
        if retry_after_s is not None:
            payload["retry_after_s"] = retry_after_s
        self._send_json(exc.http_status, {"error": payload},
                        retry_after_s=retry_after_s)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise InvalidSubmissionError("request body is empty; send a "
                                         "JSON document")
        try:
            document = parse_artifact_bytes(raw)
        except ArtifactError as exc:
            raise InvalidSubmissionError(
                f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise InvalidSubmissionError(
                "request body must be a JSON object")
        return document

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method)
        except ServiceError as exc:
            self._send_error_envelope(exc)
            return
        except BrokenPipeError:
            return
        except Exception as exc:  # noqa: BLE001 - typed-500 boundary
            # The catch-all that keeps "untyped 500" out of the wire
            # contract: every surprise still leaves as a typed envelope.
            self._send_json(500, {"error": {
                "kind": "internal",
                "message": f"{type(exc).__name__}: {exc}"}})
            return
        if not handled:
            self._send_json(404, {"error": {
                "kind": "unknown-route",
                "message": f"no route {method} {self.path}"}})

    # -- routing -----------------------------------------------------------

    def _route(self, method: str) -> bool:
        service = self.server.service
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts[:1] != ["v1"]:
            return False
        parts = parts[1:]
        if method == "GET":
            if parts == ["status"]:
                self._send_json(200, service.status())
                return True
            if parts == ["metrics"]:
                body = service.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return True
            if parts == ["jobs"]:
                self._send_json(200, {"jobs": [
                    r.to_dict() for r in service.list_jobs()]})
                return True
            if len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, service.job_status(parts[1]))
                return True
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                self._send_json(200, service.result_envelope(parts[1]))
                return True
            return False
        if method == "POST":
            if parts == ["jobs"]:
                document = self._read_body()
                spec = document.get("spec")
                if not isinstance(spec, dict):
                    raise InvalidSubmissionError(
                        'submission must carry a "spec" object')
                record, created, cached = service.submit(
                    spec,
                    tenant=document.get("tenant", "default"),  # type: ignore[arg-type]
                    priority=document.get("priority", "normal"))  # type: ignore[arg-type]
                self._send_json(201 if created else 200, {
                    "job": record.to_dict(), "created": created,
                    "cached": cached})
                return True
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                record = service.cancel(parts[1])
                self._send_json(200, {"job": record.to_dict()})
                return True
            return False
        return False

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class _PayloadTooLarge(ServiceError):
    kind = "payload-too-large"
    http_status = 413


# -- the daemon entry point ------------------------------------------------

def serve(spool: Union[str, Path], *, host: str = "127.0.0.1",
          port: int = 0, queue_limit: int = 16, max_runners: int = 2,
          lease_ttl_s: float = 30.0, max_attempts: int = 3,
          drain_timeout_s: float = 30.0,
          low_free_bytes: int = DEFAULT_LOW_FREE_BYTES,
          critical_free_bytes: int = DEFAULT_CRITICAL_FREE_BYTES) -> int:
    """Run the campaign daemon until SIGTERM/SIGINT; returns exit code.

    Binds (``port=0`` picks a free port), publishes the bound URL + pid
    to ``<spool>/endpoint.json`` for clients, recovers the spool, then
    serves.  SIGTERM and SIGINT both trigger the graceful drain and a
    clean exit 0.
    """
    service = CampaignService(spool, queue_limit=queue_limit,
                              max_runners=max_runners,
                              lease_ttl_s=lease_ttl_s,
                              max_attempts=max_attempts,
                              low_free_bytes=low_free_bytes,
                              critical_free_bytes=critical_free_bytes)
    service.start()
    httpd = _ServiceHTTPServer((host, port), _Handler, service)
    bound_host, bound_port = httpd.server_address[:2]
    url = f"http://{bound_host}:{bound_port}"
    atomic_write_text(service.store.endpoint_path,
                      json.dumps({"url": url, "pid": os.getpid(),
                                  "epoch": service.epoch}) + "\n")
    print(f"serving campaigns on {url} (spool: {service.store.root})",
          flush=True)

    def _begin_shutdown(signum: int, frame: object) -> None:
        # Stop admitting immediately; unwind serve_forever off-thread
        # (shutdown() must not run on the serving thread).
        service.draining = True
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _begin_shutdown)
    signal.signal(signal.SIGINT, _begin_shutdown)
    try:
        httpd.serve_forever(poll_interval=0.05)
    finally:
        httpd.server_close()
        service.drain_and_stop(timeout_s=drain_timeout_s)
        try:
            os.unlink(service.store.endpoint_path)
        except OSError:
            pass
    print("campaign service drained; all in-flight jobs checkpointed",
          flush=True)
    return 0
