"""The campaign service: a crash-safe local job daemon (DESIGN §14).

``repro serve`` turns the deterministic campaign engine into a durable
queue: submissions become content-addressed ``repro.job-record/v1``
artifacts in a spool, a fair-share scheduler leases them to supervised
runner processes, and every lifecycle step lands in a digest-chained
service journal.  ``kill -9`` at any instant loses no accepted job —
recovery replays the spool and resumes from checkpoints bit-for-bit.
"""

from .client import ServiceClient, ServiceClientError, read_endpoint
from .jobs import (JOB_RECORD_SCHEMA, JOB_RECORD_SCHEMA_NAME, JOB_STATES,
                   PRIORITY_CLASSES, TERMINAL_STATES, CampaignSpec,
                   DrainingError, InvalidSubmissionError, JobRecord,
                   JobStateError, Lease, QueueFullError, ServiceError,
                   SpoolError, UnknownJobError)
from .journal import (SERVICE_EVENT_KINDS, SERVICE_JOURNAL_SCHEMA,
                      SERVICE_JOURNAL_SCHEMA_NAME, ServiceEventRecord,
                      ServiceJournal, read_service_journal)
from .leases import LeaseTable
from .scheduler import FairShareScheduler, QueueEntry
from .server import CampaignService, serve
from .store import (JOB_RESULT_SCHEMA, JOB_RESULT_SCHEMA_NAME, JobResult,
                    JobStore)
from .supervisor import Supervisor

__all__ = [
    "JOB_RECORD_SCHEMA", "JOB_RECORD_SCHEMA_NAME", "JOB_RESULT_SCHEMA",
    "JOB_RESULT_SCHEMA_NAME", "JOB_STATES", "PRIORITY_CLASSES",
    "SERVICE_EVENT_KINDS", "SERVICE_JOURNAL_SCHEMA",
    "SERVICE_JOURNAL_SCHEMA_NAME", "TERMINAL_STATES", "CampaignService",
    "CampaignSpec", "DrainingError", "FairShareScheduler",
    "InvalidSubmissionError", "JobRecord", "JobResult", "JobStateError",
    "JobStore", "Lease", "LeaseTable", "QueueEntry", "QueueFullError",
    "ServiceClient", "ServiceClientError", "ServiceError",
    "ServiceEventRecord", "ServiceJournal", "SpoolError", "Supervisor",
    "UnknownJobError", "read_endpoint", "read_service_journal", "serve",
]
