"""The campaign service: a crash-safe local job daemon (DESIGN §14).

``repro serve`` turns the deterministic campaign engine into a durable
queue: submissions become content-addressed ``repro.job-record/v1``
artifacts in a spool, a fair-share scheduler leases them to supervised
runner processes, and every lifecycle step lands in a digest-chained
service journal.  ``kill -9`` at any instant loses no accepted job —
recovery replays the spool and resumes from checkpoints bit-for-bit.
"""

from .client import (RETRYABLE_STATUSES, ServiceClient, ServiceClientError,
                     read_endpoint)
from .fsck import (FINDING_KINDS, REPAIR_ACTIONS, Finding, FsckReport,
                   daemon_pid, fsck_spool)
from .gc import (GcPlan, GcReport, RetentionPolicy, compact_journal,
                 plan_gc, run_gc)
from .jobs import (JOB_RECORD_SCHEMA, JOB_RECORD_SCHEMA_NAME, JOB_STATES,
                   PRIORITY_CLASSES, TERMINAL_STATES, CampaignSpec,
                   DiskPressureError, DrainingError, InvalidSubmissionError,
                   JobRecord, JobStateError, Lease, QueueFullError,
                   ServiceError, SpoolError, UnknownJobError)
from .journal import (SERVICE_EVENT_KINDS, SERVICE_JOURNAL_SCHEMA,
                      SERVICE_JOURNAL_SCHEMA_NAME, ServiceEventRecord,
                      ServiceJournal, read_service_journal,
                      repair_service_journal_tail, scan_service_journal)
from .leases import LeaseTable
from .pressure import (PRESSURE_MODES, DiskPressureWatchdog)
from .scheduler import FairShareScheduler, QueueEntry
from .server import CampaignService, serve
from .store import (JOB_RESULT_SCHEMA, JOB_RESULT_SCHEMA_NAME, JobResult,
                    JobStore)
from .supervisor import Supervisor

__all__ = [
    "FINDING_KINDS", "JOB_RECORD_SCHEMA", "JOB_RECORD_SCHEMA_NAME",
    "JOB_RESULT_SCHEMA", "JOB_RESULT_SCHEMA_NAME", "JOB_STATES",
    "PRESSURE_MODES", "PRIORITY_CLASSES", "REPAIR_ACTIONS",
    "RETRYABLE_STATUSES", "SERVICE_EVENT_KINDS", "SERVICE_JOURNAL_SCHEMA",
    "SERVICE_JOURNAL_SCHEMA_NAME", "TERMINAL_STATES", "CampaignService",
    "CampaignSpec", "DiskPressureError", "DiskPressureWatchdog",
    "DrainingError", "FairShareScheduler", "Finding", "FsckReport",
    "GcPlan", "GcReport", "InvalidSubmissionError", "JobRecord",
    "JobResult", "JobStateError", "JobStore", "Lease", "LeaseTable",
    "QueueEntry", "QueueFullError", "RetentionPolicy", "ServiceClient",
    "ServiceClientError", "ServiceError", "ServiceEventRecord",
    "ServiceJournal", "SpoolError", "Supervisor", "UnknownJobError",
    "compact_journal", "daemon_pid", "fsck_spool", "plan_gc",
    "read_endpoint", "read_service_journal",
    "repair_service_journal_tail", "run_gc", "scan_service_journal",
    "serve",
]
