"""Lease-and-heartbeat supervision of runner processes.

A lease is the supervisor's claim that exactly one runner owns a job.
Two failure detectors retire a lease:

* **Epoch death.**  Every lease names the granting daemon's boot epoch.
  On restart the new daemon's epoch differs, so every persisted lease
  from the previous incarnation is *dead by construction* — hard-kill
  recovery requeues them without consulting any clock.
* **Heartbeat expiry.**  Within one daemon's lifetime, a runner proves
  liveness by bumping its heartbeat file; the :class:`LeaseTable`
  watches for progress on a ``time.monotonic`` clock (injectable for
  tests — wall-clock steps must not kill healthy runners, the same
  discipline as the flight recorder's status throttle).  A lease whose
  heartbeat has not advanced within ``ttl_s`` is expired: the runner is
  presumed hung or dead, gets killed, and the job is requeued to resume
  from its checkpoint.

Losing a heartbeat write is harmless (the next one renews); a *stale
kill* of a healthy runner is also safe — requeue resumes bit-for-bit
from the checkpoint, the same guarantee as any other crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .jobs import Lease

__all__ = ["Lease", "LeaseTable", "LeaseState"]


@dataclass
class LeaseState:
    """Supervisor-side view of one live lease."""

    lease: Lease
    job_id: str
    last_beat: Optional[int]
    last_progress: float  # monotonic time of the last observed advance


class LeaseTable:
    """Grants, renewals and expiry for one daemon epoch."""

    def __init__(self, epoch: str, *, ttl_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.epoch = epoch
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._next_lease_id = 1
        self._live: Dict[str, LeaseState] = {}

    def grant(self, job_id: str, pid: int) -> Lease:
        if job_id in self._live:
            raise ValueError(f"job {job_id} already holds a live lease")
        lease = Lease(lease_id=self._next_lease_id, epoch=self.epoch,
                      pid=pid, ttl_s=self.ttl_s)
        self._next_lease_id += 1
        self._live[job_id] = LeaseState(lease=lease, job_id=job_id,
                                        last_beat=None,
                                        last_progress=self._clock())
        return lease

    def observe_beat(self, job_id: str, beat: Optional[int]) -> None:
        """Feed the latest heartbeat counter read from the spool; any
        advance (including the first observation) renews the lease."""
        state = self._live.get(job_id)
        if state is None:
            return
        if beat is not None and beat != state.last_beat:
            state.last_beat = beat
            state.last_progress = self._clock()

    def expired(self, job_id: str) -> bool:
        """True iff the lease exists and its heartbeat has gone stale."""
        state = self._live.get(job_id)
        if state is None:
            return False
        return self._clock() - state.last_progress > self.ttl_s

    def release(self, job_id: str) -> Optional[Lease]:
        state = self._live.pop(job_id, None)
        return None if state is None else state.lease

    def live_jobs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._live))

    def get(self, job_id: str) -> Optional[Lease]:
        state = self._live.get(job_id)
        return None if state is None else state.lease
