"""The service journal: the daemon's digest-chained audit trail.

Same chain discipline as the campaign flight recorder
(:mod:`repro.obs.events` — every line a fully signed
``repro.service-journal/v1`` envelope, ``prev`` linking to the previous
entry's payload digest, ``seq`` contiguous from 0) but with the
*service* vocabulary: admissions, cache hits, rejects, leases, requeues,
completions, drains.  A kill at any instant leaves a valid (merely
shorter) chain; the daemon reopens it with ``resume=True`` on every
boot, so one spool's journal spans every daemon incarnation and tells
the whole recovery story end to end — which is exactly what the service
chaos tier replays to prove no accepted job was lost or double-run.

The journal is the *audit* leg, not the *recovery* leg: recovery reads
the job records (each one atomically holds its latest state), so a
journal-append chaos kill between a record write and its journal entry
loses an audit line, never a job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple, Union

from ..io.artifact import ArtifactSchema, register_artifact
from ..io.validate import Int, Json, MapOf, NullOr, Record, Str
from ..obs.events import (EventJournal, EventRecord, JournalScan,
                          read_chained_journal, repair_journal_tail,
                          scan_journal)

__all__ = ["SERVICE_JOURNAL_SCHEMA", "SERVICE_JOURNAL_SCHEMA_NAME",
           "SERVICE_EVENT_KINDS", "ServiceEventRecord", "ServiceJournal",
           "read_service_journal", "scan_service_journal",
           "repair_service_journal_tail"]

SERVICE_JOURNAL_SCHEMA_NAME = "repro.service-journal"
SERVICE_JOURNAL_SCHEMA = f"{SERVICE_JOURNAL_SCHEMA_NAME}/v1"

SERVICE_EVENT_KINDS = (
    # daemon lifecycle
    "service.started", "service.recovered", "service.draining",
    "service.drained", "service.stopped",
    # admission
    "job.submitted", "job.cached", "job.rejected",
    # execution lifecycle
    "job.leased", "job.requeued", "job.completed", "job.failed",
    "job.cancelled",
    # storage integrity (DESIGN §15): degradation-ladder transitions,
    # offline repair summaries, retention sweeps and chain rotations
    "service.pressure", "service.fsck", "service.gc", "service.compacted",
)
"""The closed service-event taxonomy — the service sibling of
:data:`~repro.obs.events.EVENT_KINDS`."""


@dataclass(frozen=True)
class ServiceEventRecord(EventRecord):
    """One service-journal entry (the chain shape of
    :class:`~repro.obs.events.EventRecord`, the service vocabulary)."""

    KINDS: ClassVar[Tuple[str, ...]] = SERVICE_EVENT_KINDS


class ServiceJournal(EventJournal):
    """Append-only, digest-chained writer for service events.

    All machinery — open/resume, signed append + flush, pid guard,
    observers — is inherited; only the schema and record type differ.
    """

    SCHEMA_NAME: ClassVar[str] = SERVICE_JOURNAL_SCHEMA_NAME
    RECORD_TYPE: ClassVar[type] = ServiceEventRecord


def read_service_journal(path: Union[str, "object"],
                         ) -> Tuple[List[EventRecord], Optional[str]]:
    """Read + verify one service journal end to end (chain contract of
    :func:`~repro.obs.events.read_chained_journal`)."""
    return read_chained_journal(path,  # type: ignore[arg-type]
                                schema_name=SERVICE_JOURNAL_SCHEMA_NAME)


def scan_service_journal(path) -> JournalScan:
    """Damage-triage one service journal (fsck's lenient reader — see
    :func:`~repro.obs.events.scan_journal`)."""
    return scan_journal(path, schema_name=SERVICE_JOURNAL_SCHEMA_NAME)


def repair_service_journal_tail(path) -> JournalScan:
    """Suffix-cut a torn service-journal tail in place (see
    :func:`~repro.obs.events.repair_journal_tail`)."""
    return repair_journal_tail(path,
                               schema_name=SERVICE_JOURNAL_SCHEMA_NAME)


# -- artifact schema registration ------------------------------------------

def _load_service_event(data) -> ServiceEventRecord:
    return ServiceEventRecord(
        seq=int(data["seq"]),
        ts_utc=str(data["ts_utc"]),
        kind=str(data["kind"]),
        data=dict(data["data"]),
        prev=(None if data["prev"] is None else str(data["prev"])),
    )


def _example_service_event() -> ServiceEventRecord:
    """A small deterministic entry for the fuzz tier."""
    return ServiceEventRecord(
        seq=2, ts_utc="2026-01-01T00:00:00+00:00", kind="job.leased",
        data={"job_id": "j-0123456789abcdef", "tenant": "acme",
              "attempt": 1, "lease_id": 1, "pid": 4242},
        prev="sha256:" + "cd" * 32)


_SERVICE_EVENT_SPEC = Record(required={
    "seq": Int(),
    "ts_utc": Str(),
    "kind": Str(),
    "data": MapOf(Json()),
    "prev": NullOr(Str()),
})

register_artifact(ArtifactSchema(
    name=SERVICE_JOURNAL_SCHEMA_NAME,
    version=1,
    spec=_SERVICE_EVENT_SPEC,
    load=_load_service_event,
    dump=ServiceEventRecord.to_dict,
    label="service-journal entry",
    example=_example_service_event,
))
