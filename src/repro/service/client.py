"""A stdlib HTTP client for the campaign service.

Thin on purpose: the wire contract *is* the contract, and the client's
one job is to translate it faithfully — JSON in, JSON out, and every
typed error envelope re-raised as a :class:`ServiceClientError` that
keeps the server's ``kind``, status and ``retry_after_s`` intact (a 429
reaches CLI code as a typed, retryable refusal, exit 4, never a
traceback).

``ServiceClient.from_spool`` discovers a running daemon through the
``endpoint.json`` the daemon publishes at bind time, so tests and the
CLI never have to guess a port.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

from ..errors import ReproError
from ..io import ArtifactError, parse_artifact_bytes, parse_artifact_text
from .store import ENDPOINT_FILENAME

__all__ = ["RETRYABLE_STATUSES", "ServiceClient", "ServiceClientError",
           "read_endpoint"]

#: Statuses whose typed envelopes carry an authoritative retry hint:
#: 429 queue-full, 503 draining, 507 disk-pressure.
RETRYABLE_STATUSES = (429, 503, 507)


class ServiceClientError(ReproError):
    """A refusal (or transport failure) talking to the campaign daemon.

    Carries the server's machine-readable ``kind``, the HTTP status and
    any ``retry_after_s`` hint from the typed error envelope.
    """

    def __init__(self, message: str, *, kind: str = "transport",
                 http_status: Optional[int] = None,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.kind = kind
        self.http_status = http_status
        self.retry_after_s = retry_after_s


def read_endpoint(spool: Union[str, Path]) -> Dict[str, object]:
    """The live daemon's published address, from ``endpoint.json``."""
    path = Path(spool) / ENDPOINT_FILENAME
    try:
        document = parse_artifact_text(path.read_text(encoding="utf-8"),
                                       source=path)
    except OSError as exc:
        raise ServiceClientError(
            f"no service endpoint at {path} — is `repro serve` running "
            f"against this spool?", kind="no-endpoint") from exc
    except ArtifactError as exc:
        raise ServiceClientError(
            f"endpoint file {path} is not valid JSON: {exc}",
            kind="no-endpoint") from exc
    if not isinstance(document, dict) or "url" not in document:
        raise ServiceClientError(
            f"endpoint file {path} is missing the service url",
            kind="no-endpoint")
    return document


class ServiceClient:
    """Blocking JSON client for one campaign daemon.

    With ``retries > 0`` the client honours the server's typed backoff
    hints: a refusal whose envelope carries ``retry_after_s`` and one
    of :data:`RETRYABLE_STATUSES` (429 queue-full, 503 draining, 507
    disk-pressure) is retried after a capped exponential backoff with
    *deterministic* jitter — derived from the request identity, not a
    clock or RNG, so two processes hammering the same daemon desynch
    while any single call sequence stays reproducible.  Everything
    else (400s, 404s, transport failures) is never retried.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0,
                 retries: int = 0, backoff_cap_s: float = 30.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_cap_s = float(backoff_cap_s)
        self._sleep = sleep

    @classmethod
    def from_spool(cls, spool: Union[str, Path], *,
                   timeout_s: float = 30.0,
                   retries: int = 0) -> "ServiceClient":
        endpoint = read_endpoint(spool)
        return cls(str(endpoint["url"]), timeout_s=timeout_s,
                   retries=retries)

    # -- transport ---------------------------------------------------------

    def backoff_s(self, path: str, attempt: int,
                  retry_after_s: float) -> float:
        """The delay before retry ``attempt`` (0-based) of ``path``.

        ``min(cap, retry_after * 2^attempt)`` plus up to 25% jitter
        keyed on (url, path, attempt) — deterministic, so tests can
        assert it and identical clients still fan out in time.
        """
        base = min(self.backoff_cap_s,
                   float(retry_after_s) * (2.0 ** attempt))
        seed = hashlib.sha256(
            f"{self.base_url}|{path}|{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(seed[:4], "big") / 0xFFFFFFFF
        return min(self.backoff_cap_s, base * (1.0 + 0.25 * jitter))

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, object]] = None,
                 ) -> Dict[str, object]:
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, body)
            except ServiceClientError as exc:
                retryable = (attempt < self.retries
                             and exc.retry_after_s is not None
                             and exc.http_status in RETRYABLE_STATUSES)
                if not retryable:
                    raise
                self._sleep(self.backoff_s(path, attempt,
                                           exc.retry_after_s))
        raise AssertionError("unreachable: the loop returns or raises")

    def _request_once(self, method: str, path: str,
                      body: Optional[Mapping[str, object]] = None,
                      ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                document = parse_artifact_bytes(reply.read(),
                                                source=self.base_url + path)
                assert isinstance(document, dict)
                return document
        except urllib.error.HTTPError as exc:
            raise self._translate(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}", kind="transport") from exc
        except (OSError, http.client.HTTPException) as exc:
            # e.g. RemoteDisconnected when the daemon dies mid-request —
            # urllib surfaces it raw, not as a URLError.
            raise ServiceClientError(
                f"connection to campaign service at {self.base_url} "
                f"failed: {exc}", kind="transport") from exc

    @staticmethod
    def _translate(exc: urllib.error.HTTPError) -> ServiceClientError:
        kind, message, retry_after_s = "http", f"HTTP {exc.code}", None
        try:
            envelope = parse_artifact_bytes(exc.read())
            error = envelope["error"]
            kind = str(error["kind"])
            message = str(error["message"])
            if "retry_after_s" in error:
                retry_after_s = float(error["retry_after_s"])
        except Exception:  # noqa: BLE001 - the envelope is best-effort
            pass
        return ServiceClientError(message, kind=kind,
                                  http_status=exc.code,
                                  retry_after_s=retry_after_s)

    # -- API ---------------------------------------------------------------

    def submit(self, spec: Mapping[str, object], *,
               tenant: str = "default", priority: str = "normal",
               ) -> Dict[str, object]:
        return self._request("POST", "/v1/jobs", {
            "spec": dict(spec), "tenant": tenant, "priority": priority})

    def jobs(self) -> List[Dict[str, object]]:
        reply = self._request("GET", "/v1/jobs")
        return list(reply["jobs"])  # type: ignore[arg-type]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def status(self) -> Dict[str, object]:
        return self._request("GET", "/v1/status")

    def metrics_text(self) -> str:
        request = urllib.request.Request(self.base_url + "/v1/metrics")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                return reply.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._translate(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}", kind="transport") from exc
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceClientError(
                f"connection to campaign service at {self.base_url} "
                f"failed: {exc}", kind="transport") from exc
