"""Disk-pressure degradation: detect a filling disk *before* it is full.

The spool's crash-safety story assumes writes can land; a disk that
fills mid-campaign turns every durable transition into an ``ENOSPC``
minefield.  Instead of discovering that at the worst moment (a torn
result commit), the daemon watches free space and walks a three-rung
degradation ladder — the storage mirror of the nominal → cautious →
minimal-risk mitigation strategies the paper's QRN assigns to hazard
mitigation (Gleirscher's risk-structured modes):

``nominal``
    Free space above the low watermark: full service.
``cautious``
    Below the low watermark: the daemon goes *read-only for new work*.
    Submissions are refused with a typed 507 (``disk-pressure``)
    carrying ``retry_after_s``; queued jobs stay queued (granting them
    would spend the remaining headroom on checkpoints); everything
    already running is left to finish — its space is already budgeted.
``minimal``
    Below the critical watermark: in-flight runners are drained
    (SIGTERM → checkpoint flush → exit 130 → parked back in
    ``queued``), exactly like a graceful shutdown, so the last
    megabytes go to *completing the audit trail*, not half-written
    results.

Transitions are **hysteretic**: escalation is immediate, recovery
requires free space to clear the watermark by ``recover_factor`` —
a disk oscillating around a threshold must not flap the service mode
(and journal spam) with it.  Every transition lands in the service
journal as ``service.pressure`` and the current state is exported as
gauges (``service.disk_free_bytes``, ``service.pressure_level``).

The probe is injectable for tests; the ``REPRO_DISK_FREE_OVERRIDE``
environment variable (bytes) overrides the real ``statvfs`` answer so
subprocess daemons can be put under synthetic pressure without
actually filling a disk.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = ["DEFAULT_CRITICAL_FREE_BYTES", "DEFAULT_LOW_FREE_BYTES",
           "FREE_OVERRIDE_ENV", "PRESSURE_MODES", "DiskPressureWatchdog"]

#: The degradation ladder, benign to severe (index = gauge value).
PRESSURE_MODES = ("nominal", "cautious", "minimal")

DEFAULT_LOW_FREE_BYTES = 128 * 1024 * 1024
DEFAULT_CRITICAL_FREE_BYTES = 32 * 1024 * 1024

#: Test hook: a byte count that overrides the filesystem probe.
FREE_OVERRIDE_ENV = "REPRO_DISK_FREE_OVERRIDE"


def _default_probe(root: Path) -> int:
    override = os.environ.get(FREE_OVERRIDE_ENV)
    if override:
        return int(override)
    return shutil.disk_usage(root).free


class DiskPressureWatchdog:
    """Hysteretic free-space monitor for one spool's filesystem.

    ``poll()`` is cheap (one ``statvfs``) and safe to call from both
    the supervisor tick and the admission path; it returns the current
    mode and keeps ``mode`` / ``free_bytes`` up to date.
    """

    def __init__(self, root: Union[str, Path], *,
                 low_free_bytes: int = DEFAULT_LOW_FREE_BYTES,
                 critical_free_bytes: int = DEFAULT_CRITICAL_FREE_BYTES,
                 probe: Optional[Callable[[], int]] = None,
                 recover_factor: float = 1.25):
        if critical_free_bytes < 0 or low_free_bytes < 0:
            raise ValueError("watermarks must be >= 0")
        if critical_free_bytes > low_free_bytes:
            raise ValueError(
                f"critical watermark ({critical_free_bytes}) must not "
                f"exceed the low watermark ({low_free_bytes})")
        if recover_factor < 1.0:
            raise ValueError("recover_factor must be >= 1.0 (hysteresis "
                             "cannot recover below the escalation point)")
        self.root = Path(root)
        self.low_free_bytes = int(low_free_bytes)
        self.critical_free_bytes = int(critical_free_bytes)
        self.recover_factor = float(recover_factor)
        self._probe = probe or (lambda: _default_probe(self.root))
        self.mode = "nominal"
        self.free_bytes: Optional[int] = None

    def poll(self) -> str:
        free = int(self._probe())
        self.free_bytes = free
        # Escalation is immediate; the ladder can be taken two rungs at
        # once (a sudden fill goes straight to minimal).
        if free < self.critical_free_bytes:
            self.mode = "minimal"
            return self.mode
        if free < self.low_free_bytes and self.mode != "minimal":
            self.mode = "cautious"
            return self.mode
        # Recovery needs hysteresis headroom, one rung at a time.
        if self.mode == "minimal":
            if free >= self.critical_free_bytes * self.recover_factor:
                self.mode = "cautious"
        elif self.mode == "cautious":
            if free >= self.low_free_bytes * self.recover_factor:
                self.mode = "nominal"
        return self.mode

    @property
    def level(self) -> int:
        """The gauge encoding of :attr:`mode` (0 nominal … 2 minimal)."""
        return PRESSURE_MODES.index(self.mode)
