"""The campaign runner: one job, one process, crash-safe by checkpoint.

The supervisor launches ``python -m repro.service.runner <spool>
<job_id>`` as a plain subprocess — a real OS process the lease layer can
SIGTERM (graceful drain), SIGKILL (chaos), and observe dying.  The
runner:

1. loads its :class:`~repro.service.jobs.JobRecord` from the spool (the
   spec on disk is the contract — nothing is passed on the command line
   that could drift from it);
2. installs a SIGTERM handler that raises ``KeyboardInterrupt``, so a
   drain lands between chunks exactly like a Ctrl-C: the fleet runner
   flushes its checkpoint and the process exits 130 with every
   committed chunk banked;
3. starts a daemon heartbeat thread bumping the job's heartbeat file —
   the supervisor's liveness signal for hung-runner detection;
4. runs :func:`~repro.traffic.fleet.run_fleet` with
   ``checkpoint=<spool>/checkpoints/<job_id>.json, resume=True`` under a
   telemetry session.  ``resume=True`` against a missing file is an
   empty fresh start, so first attempt and requeued attempt are the
   same code path — and a requeue re-simulates only the missing chunks,
   reading ``parallel.chunks_resumed`` from the session to *prove* it;
5. writes the ``repro.job-result/v1`` artifact (content-addressed by
   spec digest) and exits 0.  The result write precedes the supervisor's
   record flip to ``done``; a kill between the two is healed by the
   cache check on recovery.

Exit codes: 0 = result committed; 130 = interrupted (drain/cancel, the
checkpoint holds the progress); 1 = campaign error (diagnostic parked in
``jobs/<job_id>.error``).

Chaos: each committed chunk passes the ``runner-chunk`` chaos point, so
the service chaos tier can SIGKILL a runner right after the Nth
checkpoint commit — the worst instant for resume correctness.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import List, Optional, Sequence

from ..testing.chaos import service_chaos

__all__ = ["main", "HEARTBEAT_INTERVAL_FRACTION"]

#: Heartbeats per lease TTL (beat every ``ttl_s * fraction`` seconds).
HEARTBEAT_INTERVAL_FRACTION = 0.2


def _install_sigterm_as_interrupt() -> None:
    def _handler(signum, frame):  # noqa: ANN001 - signal signature
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _handler)


def _start_heartbeat(store, job_id: str, interval_s: float,
                     stop: threading.Event) -> threading.Thread:
    def _beat() -> None:
        counter = 0
        while not stop.is_set():
            counter += 1
            try:
                store.beat(job_id, counter)
            except OSError:
                pass  # liveness reporting must never kill the campaign
            stop.wait(interval_s)

    thread = threading.Thread(target=_beat, name=f"heartbeat-{job_id}",
                              daemon=True)
    thread.start()
    return thread


def run_job(spool: str, job_id: str) -> int:
    """Execute one job to completion; returns the process exit code."""
    from ..obs import telemetry_session
    from ..traffic import (BrakingSystem, EncounterGenerator,
                           default_context_profiles, default_perception,
                           policy_by_name, run_fleet)
    from .store import JobResult, JobStore

    store = JobStore(spool)
    record = store.load_job(job_id)
    spec = record.spec
    lease_ttl_s = 30.0 if record.lease is None else record.lease.ttl_s

    _install_sigterm_as_interrupt()
    stop_beats = threading.Event()
    _start_heartbeat(store, job_id,
                     lease_ttl_s * HEARTBEAT_INTERVAL_FRACTION, stop_beats)

    def _progress(update) -> None:
        service_chaos("runner-chunk")

    try:
        with telemetry_session() as session:
            result = run_fleet(
                policy_by_name(spec.policy),
                EncounterGenerator(default_context_profiles()),
                default_perception(), BrakingSystem(), spec.mix,
                spec.hours, spec.seed, workers=spec.workers,
                chunk_hours=spec.chunk_hours, engine=spec.engine,
                progress=_progress,
                checkpoint=store.checkpoint_path(job_id), resume=True)
            chunks_resumed = int(session.snapshot().metrics.counters().get(
                "parallel.chunks_resumed", 0))
        store.save_result(JobResult(
            spec_digest=spec.digest, job_id=job_id, result=result,
            attempts=record.attempts, chunks_resumed=chunks_resumed))
        return 0
    except KeyboardInterrupt:
        # Drain or cancel: every committed chunk is already in the
        # checkpoint; the supervisor decides requeue vs cancelled.
        return 130
    except BaseException as exc:  # noqa: BLE001 - boundary diagnostic
        try:
            store.write_job_error(job_id,
                                  f"{type(exc).__name__}: {exc}")
        except OSError:
            pass
        return 1
    finally:
        stop_beats.set()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print("usage: python -m repro.service.runner SPOOL JOB_ID",
              file=sys.stderr)
        return 2
    return run_job(args[0], args[1])


if __name__ == "__main__":
    raise SystemExit(main())
