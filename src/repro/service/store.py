"""The job store: a content-addressed spool of durable service state.

Layout of one spool directory::

    spool/
      service-journal.jsonl     digest-chained audit trail (ServiceJournal)
      endpoint.json             the live daemon's bound address + pid
      jobs/<job_id>.json        one repro.job-record/v1 per job (ground truth)
      results/<digest-hex>.json repro.job-result/v1, keyed by *spec* digest
      checkpoints/<job_id>.json the runner's repro.campaign-checkpoint/v1
      heartbeats/<job_id>       runner liveness counter (atomic replace)

Every JSON file crosses the :mod:`repro.io` artifact boundary: schema
tag + embedded payload sha256, atomic durable writes, typed errors.
Two consequences the service leans on:

* **Crash consistency is per-file.**  A job record is rewritten
  atomically on every state transition, so recovery reads exactly one
  consistent state per job — there is no cross-file transaction to
  repair.  Results are written *before* the owning record flips to
  ``done``; the inverse order would let a kill invent a completed job
  with no evidence.
* **Results are content-addressed by spec digest**, not job id: any
  future submission of a bit-identical spec — any tenant, any daemon
  incarnation — resolves to the cached artifact with zero compute.

``OSError`` from the underlying filesystem (and the chaos tier's
injected ``ENOSPC`` at the ``spool-write:job`` point) surfaces as a
typed :class:`~repro.service.jobs.SpoolError` so admission fails with
a 507-style refusal instead of a stack trace.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Union

from ..io.artifact import ARTIFACTS, ArtifactSchema, register_artifact
from ..io.atomic import atomic_write_text
from ..io.validate import Int, Record, Str
from ..testing.chaos import fs_chaos, fs_fault, service_chaos
from ..traffic.checkpoint import (RESULT_SPEC, result_from_dict,
                                  result_to_dict)
from ..traffic.simulator import SimulationResult
from .jobs import JobRecord, SpoolError, _utc_now

__all__ = ["JOB_RESULT_SCHEMA", "JOB_RESULT_SCHEMA_NAME", "JobResult",
           "JobStore", "JOURNAL_FILENAME", "ENDPOINT_FILENAME"]

JOB_RESULT_SCHEMA_NAME = "repro.job-result"
JOB_RESULT_SCHEMA = f"{JOB_RESULT_SCHEMA_NAME}/v1"

JOURNAL_FILENAME = "service-journal.jsonl"
ENDPOINT_FILENAME = "endpoint.json"


class JobResult:
    """One completed campaign's evidence (``repro.job-result/v1``).

    Wraps the merged :class:`~repro.traffic.simulator.SimulationResult`
    (exact-float serialised, the checkpoint codec) with its provenance:
    the producing job, the spec digest it is addressed by, how many
    runner attempts it took and how many chunks the final attempt
    restored from the checkpoint instead of re-simulating.
    """

    def __init__(self, spec_digest: str, job_id: str,
                 result: SimulationResult, *, attempts: int = 1,
                 chunks_resumed: int = 0,
                 completed_utc: Optional[str] = None):
        self.spec_digest = spec_digest
        self.job_id = job_id
        self.result = result
        self.attempts = int(attempts)
        self.chunks_resumed = int(chunks_resumed)
        self.completed_utc = completed_utc or _utc_now()

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec_digest": self.spec_digest,
            "job_id": self.job_id,
            "attempts": self.attempts,
            "chunks_resumed": self.chunks_resumed,
            "completed_utc": self.completed_utc,
            "result": result_to_dict(self.result),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobResult):
            return NotImplemented
        return (self.spec_digest == other.spec_digest
                and self.job_id == other.job_id
                and self.attempts == other.attempts
                and self.chunks_resumed == other.chunks_resumed
                and self.result == other.result)


class JobStore:
    """Typed, atomic access to one spool directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        for sub in ("jobs", "results", "checkpoints", "heartbeats"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths ------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_FILENAME

    @property
    def endpoint_path(self) -> Path:
        return self.root / ENDPOINT_FILENAME

    def job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def result_path(self, spec_digest: str) -> Path:
        return self.root / "results" / (
            spec_digest.split(":", 1)[-1] + ".json")

    def checkpoint_path(self, job_id: str) -> Path:
        return self.root / "checkpoints" / f"{job_id}.json"

    def heartbeat_path(self, job_id: str) -> Path:
        return self.root / "heartbeats" / job_id

    def error_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.error"

    def log_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.log"

    @property
    def quarantine_dir(self) -> Path:
        """Where ``repro fsck`` parks artifacts it cannot safely repair."""
        return self.root / "quarantine"

    def iter_job_paths(self) -> List[Path]:
        return sorted((self.root / "jobs").glob("j-*.json"))

    def iter_result_paths(self) -> List[Path]:
        return sorted((self.root / "results").glob("*.json"))

    def iter_checkpoint_paths(self) -> List[Path]:
        return sorted((self.root / "checkpoints").glob("*.json"))

    # -- job records ------------------------------------------------------

    def save_job(self, record: JobRecord) -> JobRecord:
        """Atomically persist one job record (the durable transition)."""
        try:
            service_chaos("spool-write:job")
            fault = fs_chaos("store.save-job")
            if fault is not None:
                raise fs_fault(fault, "store.save-job")
            ARTIFACTS.save(self.job_path(record.job_id),
                           "repro.job-record", record)
        except OSError as exc:
            raise SpoolError(
                f"cannot persist job {record.job_id}: "
                f"{exc.strerror or exc}") from exc
        return record

    def load_job(self, job_id: str) -> JobRecord:
        record = ARTIFACTS.load(self.job_path(job_id), "repro.job-record")
        assert isinstance(record, JobRecord)
        return record

    def has_job(self, job_id: str) -> bool:
        return self.job_path(job_id).exists()

    def iter_jobs(self) -> Iterator[JobRecord]:
        """Every job record in the spool, ordered by ``submit_seq`` —
        recovery preserves the original admission (fair-share) order."""
        records: List[JobRecord] = []
        for path in sorted((self.root / "jobs").glob("j-*.json")):
            record = ARTIFACTS.load(path, "repro.job-record")
            assert isinstance(record, JobRecord)
            records.append(record)
        records.sort(key=lambda r: r.submit_seq)
        return iter(records)

    def max_submit_seq(self) -> int:
        return max((r.submit_seq for r in self.iter_jobs()), default=-1)

    # -- job errors (free-text diagnostics from dead runners) -------------

    def write_job_error(self, job_id: str, message: str) -> None:
        atomic_write_text(self.error_path(job_id), message + "\n")

    def read_job_error(self, job_id: str) -> Optional[str]:
        try:
            return self.error_path(job_id).read_text(
                encoding="utf-8").strip()
        except OSError:
            return None

    # -- results (content-addressed by spec digest) -----------------------

    def save_result(self, job_result: JobResult) -> Path:
        try:
            fault = fs_chaos("store.save-result")
            if fault is not None:
                raise fs_fault(fault, "store.save-result")
            path = ARTIFACTS.save(self.result_path(job_result.spec_digest),
                                  JOB_RESULT_SCHEMA_NAME, job_result)
        except OSError as exc:
            raise SpoolError(
                f"cannot persist result for {job_result.job_id}: "
                f"{exc.strerror or exc}") from exc
        service_chaos("result-commit")
        return path

    def has_result(self, spec_digest: str) -> bool:
        return self.result_path(spec_digest).exists()

    def load_result(self, spec_digest: str) -> JobResult:
        result = ARTIFACTS.load(self.result_path(spec_digest),
                                JOB_RESULT_SCHEMA_NAME)
        assert isinstance(result, JobResult)
        return result

    # -- runner heartbeats ------------------------------------------------

    def beat(self, job_id: str, counter: int) -> None:
        """Record runner liveness (atomic replace; losing one beat is
        harmless, a torn beat is impossible)."""
        atomic_write_text(self.heartbeat_path(job_id), str(counter))

    def read_beat(self, job_id: str) -> Optional[int]:
        try:
            return int(self.heartbeat_path(job_id).read_text())
        except (OSError, ValueError):
            return None

    def clear_runner_state(self, job_id: str) -> None:
        """Drop per-attempt scratch (heartbeat + stale error note).

        The checkpoint is deliberately kept — it is the resume evidence."""
        for path in (self.heartbeat_path(job_id), self.error_path(job_id)):
            try:
                os.unlink(path)
            except OSError:
                pass


# -- artifact schema registration ------------------------------------------

def _load_job_result(data: Mapping[str, object]) -> JobResult:
    return JobResult(
        spec_digest=str(data["spec_digest"]),
        job_id=str(data["job_id"]),
        result=result_from_dict(dict(data["result"])),  # type: ignore[call-overload]
        attempts=int(data["attempts"]),  # type: ignore[arg-type]
        chunks_resumed=int(data["chunks_resumed"]),  # type: ignore[arg-type]
        completed_utc=str(data["completed_utc"]),
    )


def _example_job_result() -> JobResult:
    """A small deterministic result for the fuzz tier."""
    from ..core.incident import IncidentRecord
    from ..core.taxonomy import ActorClass

    result = SimulationResult(
        policy_name="nominal", hours=4.0,
        context_hours={"urban": 3.0, "highway": 1.0},
        records=[
            IncidentRecord(counterpart=ActorClass.VRU, is_collision=False,
                           min_distance_m=0.9, approach_speed_kmh=17.5,
                           time_h=0.5, context="urban"),
        ],
        encounters_resolved=57, hard_braking_demands=2,
        hard_braking_threshold_ms2=4.0)
    return JobResult(
        spec_digest="sha256:" + "ef" * 32,
        job_id="j-" + "ef" * 8,
        result=result, attempts=2, chunks_resumed=1,
        completed_utc="2026-01-01T00:00:00+00:00")


_JOB_RESULT_SPEC = Record(required={
    "spec_digest": Str(),
    "job_id": Str(),
    "attempts": Int(),
    "chunks_resumed": Int(),
    "completed_utc": Str(),
    # The embedded campaign result pins the same structural contract as
    # checkpoint chunks — one codec, two artifacts.
    "result": RESULT_SPEC,
})

register_artifact(ArtifactSchema(
    name=JOB_RESULT_SCHEMA_NAME,
    version=1,
    spec=_JOB_RESULT_SPEC,
    load=_load_job_result,
    dump=JobResult.to_dict,
    label="job result",
    example=_example_job_result,
    volatile=("completed_utc",),
))
